"""CI gate: the resilient sweep supervisor recovers, byte-for-byte.

Runs one small (benchmark x scheme) sweep three ways and asserts the
exported CSV is **byte-identical** every time:

1. **Baseline** — plain ``run_batch``, no faults, fresh cache.
2. **Fault recovery** — the same sweep through the supervisor under a
   deterministic fault plan (one cell crashes, one hangs into a timeout,
   one raises; each on its first attempt only), so every retry path must
   execute and still converge to the baseline results.
3. **Parent-kill resume** — the script re-invokes itself as a
   subprocess which SIGKILLs *its own supervisor process* mid-sweep
   (after two cells complete), then resumes from the checkpoint journal
   here; the resumed sweep's CSV must match the baseline.

A fourth check corrupts a cache entry via the ``corrupt`` fault and
asserts the cache quarantines it (logged miss, recompute) instead of
raising.

A fifth check runs a multi-core co-run sweep through the supervisor
twice — once under a crash+hang fault plan, once resumed purely from the
first run's checkpoint journal — and asserts both CSVs are
byte-identical to the uninterrupted ``run_batch`` baseline, so the
resilience machinery provably covers CoRunSpec cells too.

Exit status is nonzero the moment any recovered result diverges from the
uninterrupted run.

Usage::

    PYTHONPATH=src python tools/check_resilience.py
"""

import os
import signal
import subprocess
import sys
import tempfile

from repro.report.export import runs_to_csv
from repro.sim.batch import run_batch
from repro.sim.cache import ResultCache
from repro.sim.faults import FaultPlan
from repro.sim.spec import CoRunSpec, RunSpec
from repro.sim.supervisor import SweepSupervisor

REFS = 2000
SWEEP = [
    ("gzip", "none"),
    ("gzip", "stride"),
    ("gzip", "grp"),
    ("swim", "none"),
    ("swim", "srp"),
    ("swim", "grp"),
]

#: Every worker-side failure mode, each on its cell's first attempt only.
FAULT_PLAN = {
    "faults": [
        {"kind": "crash", "match": "gzip/stride", "attempts": [0]},
        {"kind": "hang", "match": "swim/srp", "attempts": [0],
         "seconds": 60.0},
        {"kind": "error", "match": "swim/grp", "attempts": [0]},
    ]
}

#: Cells completed before the self-kill subprocess dies.
KILL_AFTER = 2

#: Multi-core co-run cells: the supervisor must recover these too.
CORUN_SWEEP = [
    (["gzip", "swim"], "srp"),
    (["mcf", "vpr"], "grp"),
]

#: Crash one co-run cell and hang the other, first attempt each.
CORUN_FAULT_PLAN = {
    "faults": [
        {"kind": "crash", "match": "gzip+swim/srp", "attempts": [0]},
        {"kind": "hang", "match": "mcf+vpr/grp", "attempts": [0],
         "seconds": 60.0},
    ]
}


def fail(message):
    print("resilience check FAILED: %s" % message, file=sys.stderr)
    sys.exit(1)


def specs():
    return [RunSpec.create(bench, scheme, limit_refs=REFS)
            for bench, scheme in SWEEP]


def die_after(checkpoint, cache_dir, count):
    """Subprocess mode: SIGKILL ourselves after ``count`` cells finish.

    ``jobs=1`` means no worker is in flight at the progress callback, so
    the journal holds exactly ``count`` done cells when the process dies
    — the hard-interruption case the checkpoint exists for.
    """
    def kill_self(done, total, spec, cached):
        if done >= count:
            os.kill(os.getpid(), signal.SIGKILL)

    SweepSupervisor(specs(), jobs=1, cache=ResultCache(cache_dir),
                    checkpoint=checkpoint, progress=kill_self).run()
    fail("self-kill subprocess survived its own SIGKILL")


def check_fault_recovery(baseline_csv):
    plan = FaultPlan.from_dict(FAULT_PLAN)
    with tempfile.TemporaryDirectory() as tmp:
        supervisor = SweepSupervisor(
            specs(), jobs=2, cache=ResultCache(tmp),
            checkpoint=os.path.join(tmp, "sweep.ckpt"),
            retries=2, retry_base=0.01, timeout=20.0, fault_plan=plan)
        results = supervisor.run()
    if supervisor.failures:
        fail("faulted sweep failed permanently: %r" % supervisor.failures)
    if runs_to_csv(results) != baseline_csv:
        fail("faulted sweep's CSV diverged from the uninterrupted run")
    print("fault recovery: crash + hang + error all retried to the "
          "baseline results")


def check_parent_kill_resume(baseline_csv):
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = os.path.join(tmp, "sweep.ckpt")
        cache_dir = os.path.join(tmp, "cache")
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--die-after",
             str(KILL_AFTER), "--checkpoint", checkpoint,
             "--cache-dir", cache_dir],
            env=dict(os.environ,
                     PYTHONPATH=os.pathsep.join(sys.path)),
            capture_output=True, text=True, timeout=600)
        if proc.returncode == 0:
            fail("self-kill subprocess exited cleanly:\n%s" % proc.stderr)
        # Resume against an *empty* cache: only the journal survives the
        # kill here, which is exactly the state it must carry alone.
        supervisor = SweepSupervisor(
            specs(), jobs=2, cache=None, checkpoint=checkpoint,
            resume=True)
        results = supervisor.run()
    if runs_to_csv(results) != baseline_csv:
        fail("resumed sweep's CSV diverged from the uninterrupted run")
    print("parent-kill resume: journal restored %d cells, resumed sweep "
          "matches byte-for-byte" % KILL_AFTER)


def check_corun_recovery():
    # Pinned to the fused backend: the resume drill then also exercises
    # the skip-ahead loop's determinism through the supervisor/journal
    # (the stepped loop gets its coverage from the differential suite).
    corun_specs = [CoRunSpec.create(mix, scheme, limit_refs=REFS,
                                    backend="fused")
                   for mix, scheme in CORUN_SWEEP]
    baseline_csv = runs_to_csv(run_batch(corun_specs, jobs=1))
    plan = FaultPlan.from_dict(CORUN_FAULT_PLAN)
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = os.path.join(tmp, "corun.ckpt")
        supervisor = SweepSupervisor(
            corun_specs, jobs=2, cache=ResultCache(tmp),
            checkpoint=checkpoint, retries=2, retry_base=0.01,
            timeout=60.0, fault_plan=plan)
        results = supervisor.run()
        if supervisor.failures:
            fail("faulted co-run sweep failed permanently: %r"
                 % supervisor.failures)
        if runs_to_csv(results) != baseline_csv:
            fail("faulted co-run sweep's CSV diverged from the "
                 "uninterrupted run")
        # Resume with no cache: the journal alone must reproduce every
        # co-run result byte-for-byte.
        resumed = SweepSupervisor(
            corun_specs, jobs=1, cache=None, checkpoint=checkpoint,
            resume=True).run()
    if runs_to_csv(resumed) != baseline_csv:
        fail("resumed co-run sweep's CSV diverged from the "
             "uninterrupted run")
    print("co-run recovery: crash + hang retried, then resumed from the "
          "journal, both byte-identical to the baseline")


def check_quarantine():
    spec = specs()[0]
    plan = FaultPlan.from_dict(
        [{"kind": "corrupt", "match": spec.label()}])
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        SweepSupervisor([spec], cache=cache, fault_plan=plan).run()
        if cache.get(spec) is not None:
            fail("corrupted cache entry was served as a hit")
        if cache.quarantined != 1:
            fail("corrupted entry was not quarantined (count=%d)"
                 % cache.quarantined)
        qdir = os.path.join(tmp, "quarantine")
        if not os.listdir(qdir):
            fail("quarantine directory is empty")
    print("quarantine: corrupted cache entry moved aside and recomputable")


def main(argv=None):
    # Hidden subprocess mode used by check_parent_kill_resume.
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "--die-after":
        die_after(checkpoint=argv[3], cache_dir=argv[5],
                  count=int(argv[1]))
        return

    baseline_csv = runs_to_csv(run_batch(specs(), jobs=2))
    check_fault_recovery(baseline_csv)
    check_parent_kill_resume(baseline_csv)
    check_quarantine()
    check_corun_recovery()
    print("resilience check passed: %d-cell sweep (+%d co-runs) recovered "
          "identically from worker faults and a parent SIGKILL"
          % (len(SWEEP), len(CORUN_SWEEP)))


if __name__ == "__main__":
    main()
