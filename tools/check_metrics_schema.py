"""CI gate: a tiny --metrics sweep that fails on metric-schema drift.

Runs a handful of short simulations across the prefetch schemes, exports
them through :func:`repro.report.export.runs_to_csv`, and asserts that

* the CSV header is exactly :data:`repro.report.export.SUMMARY_COLUMNS`
  (downstream notebooks and dashboards key on those names), with a
  multi-core co-run contributing one row per core tagged in the
  ``core``/``corun`` columns,
* every run's metrics snapshot carries the expected sections and the
  timeliness classification partitions the prefetch-fill count,
* the metrics survive a JSON + result-cache round trip losslessly, and
* a miniature arena sweep exports a CSV whose header is exactly
  :data:`repro.experiments.arena.ARENA_COLUMNS`, whose cells parse
  under the declared types, and which survives a write/read round trip
  (the leaderboard docs and golden-CSV tests key on that layout).

Exit status is nonzero on any violation, so the CI step fails loudly the
moment a column is renamed, dropped, or reordered.

Usage::

    PYTHONPATH=src python tools/check_metrics_schema.py
"""

import csv
import io
import json
import sys
import tempfile

from repro.report.export import SUMMARY_COLUMNS, runs_to_csv
from repro.sim.batch import run_batch
from repro.sim.cache import ResultCache
from repro.sim.spec import CoRunSpec, RunSpec
from repro.sim.stats import result_from_dict

REFS = 3000
SWEEP = [
    ("swim", "none"),
    ("swim", "srp"),
    ("swim", "grp"),
    ("mcf", "grp"),
    ("swim", "gaze"),
    ("mcf", "chase"),
]

#: The miniature arena sweep the CSV-schema check runs (kept tiny; the
#: full 18-workload arena is an experiment, not a CI gate).
ARENA_BENCHMARKS = ["swim", "mcf"]
ARENA_SCHEMES = ["none", "grp", "gaze", "chase"]

#: One multi-core co-run rides the same sweep: its result must export,
#: round-trip, and carry per-core metrics just like single-core runs.
CORUN_SWEEP = (["swim", "mcf"], "srp")

#: Sections every metrics snapshot must carry, with their required keys.
METRIC_SECTIONS = {
    "timeliness": ("prefetch_fills", "timely", "late", "useless_evicted",
                   "never_referenced"),
    "pollution": ("pollution_misses", "prefetch_evictions"),
    "dram": ("channel_busy_cycles", "channel_utilization",
             "mean_channel_utilization"),
    "mshr": ("demand_stalls", "merges", "max_sampled_occupancy"),
    "queue": ("max_sampled_depth", "region_splits"),
    "timeseries": ("columns", "interval", "points"),
}


def fail(message):
    print("schema check FAILED: %s" % message, file=sys.stderr)
    sys.exit(1)


def check_csv(runs):
    text = runs_to_csv(runs)
    rows = list(csv.reader(io.StringIO(text)))
    if rows[0] != list(SUMMARY_COLUMNS):
        fail("CSV header drifted:\n  expected %r\n  got      %r"
             % (list(SUMMARY_COLUMNS), rows[0]))
    # A co-run result contributes one row per core, not one per run.
    expected = sum(getattr(stats, "n_cores", 1) for stats in runs)
    if len(rows) != expected + 1:
        fail("expected %d CSV data rows, got %d"
             % (expected, len(rows) - 1))
    for row in rows[1:]:
        if len(row) != len(SUMMARY_COLUMNS):
            fail("ragged CSV row: %r" % (row,))


def check_metrics(stats):
    label = "%s/%s" % (stats.workload, stats.scheme)
    for section, keys in METRIC_SECTIONS.items():
        if section not in stats.metrics:
            fail("%s: metrics missing section %r" % (label, section))
        for key in keys:
            if key not in stats.metrics[section]:
                fail("%s: metrics[%r] missing key %r"
                     % (label, section, key))
    t = stats.metrics["timeliness"]
    parts = t["timely"] + t["late"] + t["useless_evicted"] \
        + t["never_referenced"]
    if t["prefetch_fills"] != parts:
        fail("%s: timeliness classes sum to %d, prefetch_fills is %d"
             % (label, parts, t["prefetch_fills"]))
    util = stats.mean_channel_utilization
    if not 0.0 <= util <= 1.0:
        fail("%s: mean channel utilization %r out of range" % (label, util))


def check_round_trip(specs, runs):
    for spec, stats in zip(specs, runs):
        rebuilt = result_from_dict(json.loads(json.dumps(stats.to_dict())))
        if rebuilt.to_dict() != stats.to_dict():
            fail("%s: JSON round trip is lossy" % spec.label())
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        cache.put(specs[0], runs[0])
        cached = cache.get(specs[0])
        if cached is None or cached.to_dict() != runs[0].to_dict():
            fail("%s: result-cache round trip is lossy" % specs[0].label())


def check_arena_csv():
    """The arena CSV layout: header, cell types, write/read round trip."""
    import os

    from repro.experiments.arena import (
        ARENA_COLUMNS,
        arena_rows,
        read_arena_csv,
        write_arena_csv,
    )
    from repro.experiments.common import ExperimentContext

    ctx = ExperimentContext(limit_refs=REFS)
    rows = arena_rows(ctx, benchmarks=ARENA_BENCHMARKS,
                      schemes=ARENA_SCHEMES)
    expected = len(ARENA_BENCHMARKS) * len(ARENA_SCHEMES)
    if len(rows) != expected:
        fail("arena: expected %d rows, got %d" % (expected, len(rows)))
    floats = ("ipc", "cpi", "speedup", "traffic_ratio", "coverage",
              "accuracy", "pollution_per_kref", "timeliness")
    ints = ("pollution_misses", "timely", "late")
    flags = ("frontier_cov_traffic", "frontier_cpi_pollution")
    for row in rows:
        if tuple(row) != ARENA_COLUMNS:
            fail("arena row keys drifted:\n  expected %r\n  got      %r"
                 % (ARENA_COLUMNS, tuple(row)))
        label = "%s/%s" % (row["workload"], row["scheme"])
        for key in floats:
            if row[key] is not None and not isinstance(row[key], float):
                fail("arena %s: %s should be float/None, got %r"
                     % (label, key, row[key]))
        for key in ints:
            if row[key] is not None and not isinstance(row[key], int):
                fail("arena %s: %s should be int/None, got %r"
                     % (label, key, row[key]))
        for key in flags:
            if row[key] not in (0, 1):
                fail("arena %s: %s should be 0/1, got %r"
                     % (label, key, row[key]))
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "arena.csv")
        write_arena_csv(path, rows)
        back = read_arena_csv(path)
        if len(back) != len(rows):
            fail("arena CSV round trip lost rows (%d != %d)"
                 % (len(back), len(rows)))
        for row, raw in zip(rows, back):
            rebuilt = {
                key: "" if row[key] is None else str(row[key])
                for key in ARENA_COLUMNS
            }
            if rebuilt != raw:
                fail("arena CSV round trip drifted for %s/%s:\n"
                     "  wrote %r\n  read  %r"
                     % (row["workload"], row["scheme"], rebuilt, raw))
    # Per-workload, exactly the frontier rows are flagged and every
    # workload has at least one seat per pair ('none' anchors both).
    for bench in ARENA_BENCHMARKS:
        mine = [row for row in rows if row["workload"] == bench]
        for flag in flags:
            if not any(row[flag] for row in mine):
                fail("arena %s: no scheme on the %s frontier"
                     % (bench, flag))
    return len(rows)


def main():
    specs = [RunSpec.create(bench, scheme, limit_refs=REFS)
             for bench, scheme in SWEEP]
    specs.append(CoRunSpec.create(CORUN_SWEEP[0], CORUN_SWEEP[1],
                                  limit_refs=REFS))
    runs = run_batch(specs, jobs=1)
    check_csv(runs)
    for stats in runs:
        # A co-run carries one full metrics snapshot per core; each must
        # satisfy the same schema as a single-core run.
        for core_stats in getattr(stats, "cores", [stats]):
            check_metrics(core_stats)
    check_round_trip(specs, runs)
    arena_cells = check_arena_csv()
    print("metrics schema check passed: %d runs, %d columns, "
          "%d arena cells" % (len(runs), len(SUMMARY_COLUMNS), arena_cells))


if __name__ == "__main__":
    main()
