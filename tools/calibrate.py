"""Calibration helper: suggest per-workload ops_scale values so the
baseline gap versus a perfect L2 lands near the paper's Figure 1.

Usage: python tools/calibrate.py [rounds]

For each benchmark it measures gap = 1 - IPC(base)/IPC(perfect L2),
then updates ops_scale multiplicatively using the stall-fraction model
gap = S / (C + S) (S = stall cycles per ref, C ~ ops_scale).
The final scales are printed for pasting into the workload modules.
"""

import sys

from repro.sim.config import MachineConfig
from repro.sim.runner import run_workload
from repro.workloads import get_workload, workload_names

# Per-benchmark target gaps (percent), eyeballed from Figure 1 of the
# paper; geometric-mean target is 33.7%.
TARGETS = {
    "gzip": 15, "wupwise": 40, "swim": 60, "mgrid": 40, "applu": 45,
    "vpr": 35, "mesa": 12, "art": 65, "mcf": 70, "equake": 50,
    "crafty": 2, "ammp": 25, "parser": 35, "gap": 30, "bzip2": 25,
    "twolf": 30, "apsi": 30, "sphinx": 45,
}

LIMIT = 25_000


def measure_gap(workload, config):
    base = run_workload(workload, "none", config=config, limit_refs=LIMIT)
    perfect = run_workload(workload, "none", config=config,
                           mode="perfect_l2", limit_refs=LIMIT)
    if perfect.ipc == 0:
        return 0.0
    return 1.0 - base.ipc / perfect.ipc


def main(rounds=3):
    config = MachineConfig.scaled()
    scales = {}
    for name in workload_names():
        workload = get_workload(name)
        scales[name] = workload.ops_scale
    for rnd in range(rounds):
        print("--- round %d ---" % (rnd + 1))
        for name in workload_names():
            workload = get_workload(name)
            workload.ops_scale = scales[name]
            gamma = measure_gap(workload, config)
            target = TARGETS[name] / 100.0
            if gamma <= 0.005 or gamma >= 0.995:
                factor = 4.0 if gamma >= 0.995 else 0.5
            else:
                factor = (gamma / (1 - gamma)) * ((1 - target) / target)
            new = min(600.0, max(0.25, scales[name] * factor))
            print("%-8s gap=%5.1f%% target=%4.1f%% scale %6.2f -> %6.2f"
                  % (name, 100 * gamma, 100 * target, scales[name], new))
            scales[name] = new
    print("\nFinal scales:")
    for name, value in scales.items():
        print('    "%s": %.1f,' % (name, value))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
