"""Performance benchmark harness: sim-phase refs/sec per scheme and backend.

Measures the replay backends (the fused loop and, when numpy is
available, the vectorized batch-replay backend) against the
``reference=True`` slow path on a small scheme x workload matrix, plus
the multi-core co-run backends (fused skip-ahead vs the stepped
reference loop) on a 2-core pair and the 18-core rush-hour mix, and
records the results in ``BENCH_perf.json`` at the repository root.

Schema version 2 times the **simulation phase only**: the workload
build, hint compilation, and trace generation happen once per case
outside the timer, and each timed run replays the same prebuilt
compiled trace through a fresh simulator.  (Version 1 timed the whole
pipeline cold, which buried backend differences under trace-generation
cost and let a large replay regression hide inside the build noise.)
Each case row carries a ``backend`` column, so the fused and vectorized
paths are gated independently.

Per case the file records CPU seconds, refs/sec, the speedup over the
reference path, and an absolute ``refs_per_s_floor`` (a quarter of the
measured rate).  CI's smoke mode gates on **both** signals: the
fast/slow ratio (host-independent; a >30% drop means a real fast-path
regression) and the conservative absolute floor (catches the failure
the ratio alone misses — the fast and slow paths regressing together).

Modes::

    PYTHONPATH=src python tools/bench_perf.py            # full matrix, rewrites BENCH_perf.json
    PYTHONPATH=src python tools/bench_perf.py --smoke    # tiny matrix, schema + regression gates
    PYTHONPATH=src python tools/bench_perf.py --check    # schema validation only, no measurement

``--smoke`` and ``--check`` never write the file; both exit nonzero on a
schema violation, ``--smoke`` also on a gate failure.  Smoke measures
every backend the host supports (the no-numpy CI job simply has no
vectorized rows to gate).

The full mode additionally re-measures the end-to-end table1 sweep
(``python -m repro.experiments table1 --refs 3000 --no-cache --jobs 1``)
and carries forward the recorded pre-optimization baseline for that
command (measured once on the revision named by ``baseline_rev``; pass
``--baseline-cpu``/``--baseline-rev`` to re-record it).
"""

import argparse
import json
import os
import pathlib
import resource
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
os.environ.setdefault("REPRO_TRACE_CACHE", "off")

from repro.compiler.driver import compile_hints  # noqa: E402
from repro.sim import runner, vectorized  # noqa: E402
from repro.sim.config import MachineConfig  # noqa: E402
from repro.sim.simulator import Simulator  # noqa: E402
from repro.trace.interp import Interpreter  # noqa: E402
from repro.trace.store import default_store  # noqa: E402
from repro.workloads.base import get_workload  # noqa: E402

SCHEMA_VERSION = 2
OUT_NAME = "BENCH_perf.json"
REGRESSION_TOLERANCE = 0.30
#: The committed absolute floor is this fraction of the measured rate —
#: loose enough for a CI host several times slower than the recording
#: host, tight enough to catch order-of-magnitude replay regressions.
FLOOR_FRACTION = 0.25

FULL_MATRIX = [
    ("ammp", "none"), ("ammp", "srp"), ("ammp", "grp"),
    ("ammp", "chase"),
    ("mcf", "none"), ("mcf", "srp"), ("mcf", "grp"),
    ("mcf", "srp-adaptive"), ("mcf", "gaze"), ("mcf", "chase"),
    ("swim", "none"), ("swim", "srp"), ("swim", "grp"),
    ("swim", "grp-adaptive"), ("swim", "gaze"),
]
SMOKE_MATRIX = [("mcf", "srp"), ("swim", "grp"), ("mcf", "srp-adaptive"),
                ("swim", "gaze"), ("mcf", "chase")]

#: Multi-core co-run cases: (workload list, scheme).  Each case rows
#: both co-run backends — ``stepped`` (the per-event reference loop)
#: and ``fused`` (skip-ahead stretch scheduling) — with the stepped
#: timing as every row's ``reference`` side, so the fused row's
#: ``speedup_vs_reference`` is the backend speedup on identical work.
#: Timing follows the schema-v2 convention: simulator construction
#: (workload build, hint compile, trace generation) happens outside the
#: timer; the stepped loop's timed region still includes trace
#: interpretation, because the generator-driven replay *is* that
#: backend's cost, exactly as the single-core reference rows.  The
#: ``none`` pair is the dispatch-bound case (the scheduling win shows
#: undiluted); the ``srp`` pair is Amdahl-limited by the prefetch
#: machinery both backends share.  The 18-core rush-hour mix smokes
#: arbitration at scale.
RUSH_HOUR = ["mcf", "swim", "art", "ammp", "equake", "mesa"] * 3
CORUN_MATRIX = [
    (["mcf", "swim"], "none"),
    (["mcf", "swim"], "srp"),
    (RUSH_HOUR, "srp"),
]
CORUN_SMOKE = [
    (["mcf", "swim"], "none"),
    (["mcf", "swim"], "srp"),
    (RUSH_HOUR, "srp"),
]
#: Rush-hour cases replay at most this many refs per core per timed
#: run — 18 cores at the full per-case ref count would dominate the
#: whole benchmark's wall-clock for no extra signal.
CORUN_BIG_REFS = 1000

TABLE1_CMD = [
    "-m", "repro.experiments", "table1",
    "--refs", "3000", "--no-cache", "--jobs", "1",
]


def host_backends():
    """Replay backends measurable on this host, fused first."""
    backends = ["fused"]
    if vectorized.available():
        backends.append("vectorized")
    return backends


def _cold():
    """Drop every in-process cache so the next run pays full cost."""
    default_store().clear_memory()
    runner._BUILD_CACHE.clear()


def _prepare(workload_name, scheme, refs):
    """Build everything up to the replay, once: space, hints, trace.

    Returns the prebuilt pieces every timed run shares.  The address
    space is read-only during simulation and the compiled trace is
    immutable, so reuse across timed runs is safe.
    """
    workload = get_workload(workload_name)
    scheme_spec = runner.SCHEMES[scheme]
    config = MachineConfig.scaled()
    space, built, program = runner._built_workload(workload, 1.0, True)
    if scheme_spec.hinted:
        result = compile_hints(
            program, l2_size=config.l2_size, block_size=config.block_size,
            policy="default",
            variable_regions=scheme_spec.variable_regions,
            indirect_mode=scheme_spec.indirect_mode,
        )
        hint_table = result.hint_table
    else:
        result = None
        hint_table = None

    def build_interp():
        interp = Interpreter(program, space, result, seed=12345,
                             block_size=config.block_size,
                             ops_scale=workload.ops_scale)
        for name, addr in built.pointer_bindings.items():
            interp.bind_pointer(name, addr)
        return interp

    trace = build_interp().run_columns(refs)
    return {
        "scheme_spec": scheme_spec, "config": config, "space": space,
        "result": result, "hint_table": hint_table,
        "build_interp": build_interp, "trace": trace,
    }


def _fresh_sim(prep, reference=False):
    return Simulator(prep["config"], prep["space"],
                     prep["scheme_spec"].factory(prep["result"]),
                     hint_table=prep["hint_table"], reference=reference)


def _time_backend(prep, backend, repeats):
    """Best-of-``repeats`` CPU seconds replaying the prebuilt trace."""
    best = float("inf")
    for _ in range(repeats):
        sim = _fresh_sim(prep)
        start = time.process_time()
        sim.run_compiled(prep["trace"], backend=backend)
        best = min(best, time.process_time() - start)
    return best


def _time_reference(prep, refs, repeats):
    """Best-of-``repeats`` CPU seconds for the slow path's replay.

    The reference path has no compiled trace — interpretation feeds the
    simulator directly — so its sim phase is the generator-driven run
    (interpretation included; that *is* the slow path's replay cost).
    """
    best = float("inf")
    for _ in range(repeats):
        sim = _fresh_sim(prep, reference=True)
        interp = prep["build_interp"]()
        start = time.process_time()
        sim.run(interp.run(limit=refs))
        best = min(best, time.process_time() - start)
    return best


def measure_case(workload, scheme, refs, repeats, backends):
    """One case row per backend, sharing one build and one reference run."""
    prep = _prepare(workload, scheme, refs)
    slow = _time_reference(prep, refs, repeats)
    cases = []
    for backend in backends:
        fast = _time_backend(prep, backend, repeats)
        rate = refs / fast
        cases.append({
            "workload": workload,
            "scheme": scheme,
            "backend": backend,
            "refs": refs,
            "sim": {"cpu_s": round(fast, 4),
                    "refs_per_s": round(rate, 1)},
            "reference": {"cpu_s": round(slow, 4),
                          "refs_per_s": round(refs / slow, 1)},
            "speedup_vs_reference": round(slow / fast, 3),
            "refs_per_s_floor": int(rate * FLOOR_FRACTION),
        })
    return cases


def measure_corun_case(workloads, scheme, refs, repeats):
    """One case row per co-run backend, stepped timing as the reference.

    Each timed run replays a freshly built simulator (construction —
    workload build, hint compile, and for the fused backend the
    compiled-trace generation through the warm in-process trace store —
    stays outside the timer; the stepped loop interprets its event
    stream inside the timed region, which is that backend's replay
    cost).  Byte-identity of the two backends' results is the test
    suite's job; this only times them.
    """
    from repro.sim.multicore import MultiCoreSimulator
    from repro.sim.multicore_fused import FusedMultiCoreSimulator
    from repro.sim.spec import CoRunSpec

    if len(workloads) > 2:
        refs = min(refs, CORUN_BIG_REFS)
    spec = CoRunSpec.create(workloads, scheme, limit_refs=refs)
    total_refs = refs * len(workloads)
    timings = {}
    for backend, sim_class in (("stepped", MultiCoreSimulator),
                               ("fused", FusedMultiCoreSimulator)):
        best = float("inf")
        for _ in range(repeats):
            sim = sim_class(spec)
            start = time.process_time()
            sim.run()
            best = min(best, time.process_time() - start)
        timings[backend] = best
    slow = timings["stepped"]
    reference = {"cpu_s": round(slow, 4),
                 "refs_per_s": round(total_refs / slow, 1)}
    cases = []
    for backend in ("stepped", "fused"):
        fast = timings[backend]
        rate = total_refs / fast
        cases.append({
            "workload": ("+".join(workloads) if len(workloads) <= 2
                         else "rushhour%d" % len(workloads)),
            "scheme": scheme,
            "backend": backend,
            "refs": refs,
            "cores": len(workloads),
            "sim": {"cpu_s": round(fast, 4),
                    "refs_per_s": round(rate, 1)},
            "reference": dict(reference),
            "speedup_vs_reference": round(slow / fast, 3),
            "refs_per_s_floor": int(rate * FLOOR_FRACTION),
        })
    return cases


def measure_table1():
    """CPU seconds for the end-to-end table1 sweep, in a child process."""
    before = resource.getrusage(resource.RUSAGE_CHILDREN)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    subprocess.run(
        [sys.executable] + TABLE1_CMD, cwd=str(REPO_ROOT), env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, check=True,
    )
    after = resource.getrusage(resource.RUSAGE_CHILDREN)
    return (after.ru_utime - before.ru_utime) \
        + (after.ru_stime - before.ru_stime)


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------

def validate(doc):
    """Return a list of schema violations (empty when the doc is valid)."""
    errors = []

    def need(obj, key, types, where):
        value = obj.get(key)
        if not isinstance(value, types) or (
                isinstance(value, (int, float))
                and not isinstance(value, bool) and value <= 0):
            errors.append("%s.%s missing or invalid: %r" % (where, key, value))
            return None
        return value

    if doc.get("kind") != "repro-bench-perf":
        errors.append("kind != repro-bench-perf")
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append("schema_version != %d" % SCHEMA_VERSION)
    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        errors.append("cases missing or empty")
        cases = []
    for i, case in enumerate(cases):
        where = "cases[%d]" % i
        need(case, "workload", str, where)
        need(case, "scheme", str, where)
        need(case, "refs", int, where)
        need(case, "speedup_vs_reference", (int, float), where)
        need(case, "refs_per_s_floor", int, where)
        backend = need(case, "backend", str, where)
        if "cores" in case:  # optional: multi-core co-run cases only
            need(case, "cores", int, where)
            corun_backends = ("stepped", "fused")
            if backend is not None and backend not in corun_backends:
                errors.append("%s.backend unknown for co-run: %r"
                              % (where, backend))
        elif backend is not None and backend not in ("fused", "vectorized"):
            errors.append("%s.backend unknown: %r" % (where, backend))
        for side in ("sim", "reference"):
            timing = case.get(side)
            if not isinstance(timing, dict):
                errors.append("%s.%s missing" % (where, side))
                continue
            need(timing, "cpu_s", (int, float), "%s.%s" % (where, side))
            need(timing, "refs_per_s", (int, float), "%s.%s" % (where, side))
    table1 = doc.get("table1")
    if table1 is not None:
        need(table1, "command", str, "table1")
        need(table1, "optimized_cpu_s", (int, float), "table1")
        if table1.get("baseline_cpu_s") is not None:
            need(table1, "baseline_cpu_s", (int, float), "table1")
            need(table1, "speedup", (int, float), "table1")
    return errors


def check_regressions(committed, measured):
    """Gate measured cases against the committed baselines.

    Two independent checks per (workload, scheme, backend): the fast/slow
    speedup ratio must stay within ``REGRESSION_TOLERANCE`` of the
    committed ratio, and the absolute sim-phase refs/sec must stay above
    the committed ``refs_per_s_floor``.  The ratio catches fast-path
    regressions independent of host speed; the floor catches the case
    the ratio is blind to — both paths slowing down together.
    """
    failures = []
    by_case = {(c["workload"], c["scheme"], c["backend"]): c
               for c in committed["cases"]}
    for case in measured:
        key = (case["workload"], case["scheme"], case["backend"])
        baseline = by_case.get(key)
        if baseline is None:
            continue
        tag = "%s/%s/%s" % key
        ratio_floor = (baseline["speedup_vs_reference"]
                       * (1 - REGRESSION_TOLERANCE))
        got_ratio = case["speedup_vs_reference"]
        abs_floor = baseline["refs_per_s_floor"]
        got_rate = case["sim"]["refs_per_s"]
        if got_ratio < ratio_floor:
            failures.append(
                "%s: speedup %.2fx below floor %.2fx (committed %.2fx)"
                % (tag, got_ratio, ratio_floor,
                   baseline["speedup_vs_reference"]))
        elif got_rate < abs_floor:
            failures.append(
                "%s: %.0f refs/s below the absolute floor %d"
                % (tag, got_rate, abs_floor))
        else:
            print("  %-24s %.2fx (committed %.2fx)  %8.0f refs/s"
                  " (floor %d) ok"
                  % (tag, got_ratio, baseline["speedup_vs_reference"],
                     got_rate, abs_floor))
    return failures


# ----------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny matrix; gate against committed numbers, "
                             "do not rewrite the file")
    parser.add_argument("--check", action="store_true",
                        help="validate the committed file's schema only")
    parser.add_argument("--refs", type=int, default=3000,
                        help="references per timed run (default 3000)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per case; best is kept")
    parser.add_argument("--out", default=str(REPO_ROOT / OUT_NAME))
    parser.add_argument("--skip-table1", action="store_true",
                        help="skip the end-to-end table1 measurement")
    parser.add_argument("--baseline-cpu", type=float, default=None,
                        help="record this as the table1 pre-optimization "
                             "baseline CPU time (seconds)")
    parser.add_argument("--baseline-rev", default=None,
                        help="revision the table1 baseline was measured on")
    args = parser.parse_args(argv)

    out_path = pathlib.Path(args.out)
    committed = None
    if out_path.exists():
        try:
            committed = json.loads(out_path.read_text())
        except ValueError:
            print("error: %s is not valid JSON" % out_path)
            return 1

    if args.check or args.smoke:
        if committed is None:
            print("error: %s not found" % out_path)
            return 1
        errors = validate(committed)
        if errors:
            print("schema violations in %s:" % out_path)
            for error in errors:
                print("  - " + error)
            return 1
        print("%s: schema ok (%d cases)" % (out_path.name,
                                            len(committed["cases"])))
        if args.check:
            return 0

    backends = host_backends()
    if "vectorized" not in backends:
        if args.smoke:
            print("note: numpy unavailable — gating fused rows only")
        else:
            print("error: the full matrix records both backends; "
                  "numpy is required")
            return 1

    matrix = SMOKE_MATRIX if args.smoke else FULL_MATRIX
    refs = min(args.refs, 1500) if args.smoke else args.refs
    repeats = 2 if args.smoke else args.repeats
    cases = []
    for workload, scheme in matrix:
        for case in measure_case(workload, scheme, refs, repeats, backends):
            print("%-6s %-13s %-10s sim %8.0f refs/s   reference %7.0f"
                  " refs/s   speedup %.2fx"
                  % (workload, scheme, case["backend"],
                     case["sim"]["refs_per_s"],
                     case["reference"]["refs_per_s"],
                     case["speedup_vs_reference"]))
            cases.append(case)
    for workloads, scheme in (CORUN_SMOKE if args.smoke else CORUN_MATRIX):
        for case in measure_corun_case(workloads, scheme, refs, repeats):
            print("%-10s %-13s co-run/%-8s %8.0f refs/s   (%d cores, "
                  "speedup %.2fx)"
                  % (case["workload"], scheme, case["backend"],
                     case["sim"]["refs_per_s"], case["cores"],
                     case["speedup_vs_reference"]))
            cases.append(case)

    if args.smoke:
        failures = check_regressions(committed, cases)
        if failures:
            print("refs/sec regression gate FAILED:")
            for failure in failures:
                print("  - " + failure)
            return 1
        print("regression gates ok (ratio tolerance %d%%, absolute floors)"
              % int(REGRESSION_TOLERANCE * 100))
        return 0

    doc = {
        "kind": "repro-bench-perf",
        "schema_version": SCHEMA_VERSION,
        "cases": cases,
    }
    if not args.skip_table1:
        optimized_cpu = measure_table1()
        table1 = {
            "command": "python " + " ".join(TABLE1_CMD),
            "optimized_cpu_s": round(optimized_cpu, 3),
            "baseline_cpu_s": None,
            "baseline_rev": None,
            "speedup": None,
        }
        previous = (committed or {}).get("table1") or {}
        baseline_cpu = (args.baseline_cpu
                        if args.baseline_cpu is not None
                        else previous.get("baseline_cpu_s"))
        baseline_rev = args.baseline_rev or previous.get("baseline_rev")
        if baseline_cpu:
            table1["baseline_cpu_s"] = round(baseline_cpu, 3)
            table1["baseline_rev"] = baseline_rev
            table1["speedup"] = round(baseline_cpu / optimized_cpu, 2)
            print("table1: %.2fs vs %.2fs baseline (%s) -> %.2fx"
                  % (optimized_cpu, baseline_cpu, baseline_rev,
                     table1["speedup"]))
        else:
            print("table1: %.2fs (no recorded baseline)" % optimized_cpu)
        doc["table1"] = table1
    errors = validate(doc)
    if errors:
        print("internal error: generated document fails validation:")
        for error in errors:
            print("  - " + error)
        return 1
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print("wrote %s" % out_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
