"""Performance benchmark harness: cold-cache refs/sec per scheme.

Measures the optimized simulation pipeline (compiled traces + fused
simulate loop + hierarchy fast paths) against the ``reference=True`` slow
path on a small scheme x workload matrix, cold-cache (the in-process
trace/build caches are cleared before every timed run and disk
persistence is disabled), and records the results in ``BENCH_perf.json``
at the repository root.

Per case the file records CPU seconds, refs/sec, and the optimized-path
speedup over the reference path.  The speedup ratio is the number CI
gates on: absolute refs/sec varies with the host, but the fast/slow
ratio on the same interpreter is stable, so a >30% drop against the
committed ratio means a real fast-path regression.

Modes::

    PYTHONPATH=src python tools/bench_perf.py            # full matrix, rewrites BENCH_perf.json
    PYTHONPATH=src python tools/bench_perf.py --smoke    # tiny matrix, schema + regression gate
    PYTHONPATH=src python tools/bench_perf.py --check    # schema validation only, no measurement

``--smoke`` and ``--check`` never write the file; both exit nonzero on a
schema violation, ``--smoke`` also on a >30% speedup regression.

The full mode additionally re-measures the end-to-end table1 sweep
(``python -m repro.experiments table1 --refs 3000 --no-cache --jobs 1``)
and carries forward the recorded pre-optimization baseline for that
command (measured once on the revision named by ``baseline_rev``; pass
``--baseline-cpu``/``--baseline-rev`` to re-record it).
"""

import argparse
import json
import os
import pathlib
import resource
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
os.environ.setdefault("REPRO_TRACE_CACHE", "off")

from repro.sim import runner  # noqa: E402
from repro.sim.runner import execute  # noqa: E402
from repro.sim.spec import RunSpec  # noqa: E402
from repro.trace.store import default_store  # noqa: E402

SCHEMA_VERSION = 1
OUT_NAME = "BENCH_perf.json"
REGRESSION_TOLERANCE = 0.30

FULL_MATRIX = [
    ("ammp", "none"), ("ammp", "srp"), ("ammp", "grp"),
    ("mcf", "none"), ("mcf", "srp"), ("mcf", "grp"),
    ("mcf", "srp-adaptive"),
    ("swim", "none"), ("swim", "srp"), ("swim", "grp"),
    ("swim", "grp-adaptive"),
]
SMOKE_MATRIX = [("mcf", "srp"), ("swim", "grp"), ("mcf", "srp-adaptive")]

#: Multi-core co-run cases: (workload list, scheme).  Co-runs have a
#: single implementation (the stepped shared-memory loop — there is no
#: separate reference path), so their ``speedup_vs_reference`` is
#: definitionally 1.0 and the value of the case is the recorded refs/sec
#: plus smoke-mode coverage of the co-run pipeline.
CORUN_MATRIX = [(["mcf", "swim"], "srp")]
CORUN_SMOKE = [(["mcf", "swim"], "srp")]

TABLE1_CMD = [
    "-m", "repro.experiments", "table1",
    "--refs", "3000", "--no-cache", "--jobs", "1",
]


def _cold():
    """Drop every in-process cache so the next run pays full cost."""
    default_store().clear_memory()
    runner._BUILD_CACHE.clear()


def _time_run(spec, reference, repeats):
    """Best-of-``repeats`` CPU seconds for one cold execution of ``spec``."""
    best = float("inf")
    for _ in range(repeats):
        _cold()
        start = time.process_time()
        execute(spec, reference=reference)
        best = min(best, time.process_time() - start)
    return best


def measure_case(workload, scheme, refs, repeats):
    spec = RunSpec.create(workload, scheme, limit_refs=refs)
    fast = _time_run(spec, reference=False, repeats=repeats)
    slow = _time_run(spec, reference=True, repeats=repeats)
    return {
        "workload": workload,
        "scheme": scheme,
        "refs": refs,
        "optimized": {"cpu_s": round(fast, 4),
                      "refs_per_s": round(refs / fast, 1)},
        "reference": {"cpu_s": round(slow, 4),
                      "refs_per_s": round(refs / slow, 1)},
        "speedup_vs_reference": round(slow / fast, 3),
    }


def measure_corun_case(workloads, scheme, refs, repeats):
    """Time one cold multi-core co-run (no solo baselines, no ref path)."""
    from repro.sim.multicore import execute_corun
    from repro.sim.spec import CoRunSpec

    spec = CoRunSpec.create(workloads, scheme, limit_refs=refs)
    best = float("inf")
    for _ in range(repeats):
        _cold()
        start = time.process_time()
        execute_corun(spec, solo_baseline=False)
        best = min(best, time.process_time() - start)
    total_refs = refs * len(workloads)
    timing = {"cpu_s": round(best, 4),
              "refs_per_s": round(total_refs / best, 1)}
    return {
        "workload": "+".join(workloads),
        "scheme": scheme,
        "refs": refs,
        "cores": len(workloads),
        "optimized": timing,
        "reference": dict(timing),
        "speedup_vs_reference": 1.0,
    }


def measure_table1():
    """CPU seconds for the end-to-end table1 sweep, in a child process."""
    before = resource.getrusage(resource.RUSAGE_CHILDREN)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    subprocess.run(
        [sys.executable] + TABLE1_CMD, cwd=str(REPO_ROOT), env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, check=True,
    )
    after = resource.getrusage(resource.RUSAGE_CHILDREN)
    return (after.ru_utime - before.ru_utime) \
        + (after.ru_stime - before.ru_stime)


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------

def validate(doc):
    """Return a list of schema violations (empty when the doc is valid)."""
    errors = []

    def need(obj, key, types, where):
        value = obj.get(key)
        if not isinstance(value, types) or (
                isinstance(value, (int, float))
                and not isinstance(value, bool) and value <= 0):
            errors.append("%s.%s missing or invalid: %r" % (where, key, value))
            return None
        return value

    if doc.get("kind") != "repro-bench-perf":
        errors.append("kind != repro-bench-perf")
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append("schema_version != %d" % SCHEMA_VERSION)
    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        errors.append("cases missing or empty")
        cases = []
    for i, case in enumerate(cases):
        where = "cases[%d]" % i
        need(case, "workload", str, where)
        need(case, "scheme", str, where)
        need(case, "refs", int, where)
        need(case, "speedup_vs_reference", (int, float), where)
        if "cores" in case:  # optional: multi-core co-run cases only
            need(case, "cores", int, where)
        for side in ("optimized", "reference"):
            timing = case.get(side)
            if not isinstance(timing, dict):
                errors.append("%s.%s missing" % (where, side))
                continue
            need(timing, "cpu_s", (int, float), "%s.%s" % (where, side))
            need(timing, "refs_per_s", (int, float), "%s.%s" % (where, side))
    table1 = doc.get("table1")
    if table1 is not None:
        need(table1, "command", str, "table1")
        need(table1, "optimized_cpu_s", (int, float), "table1")
        if table1.get("baseline_cpu_s") is not None:
            need(table1, "baseline_cpu_s", (int, float), "table1")
            need(table1, "speedup", (int, float), "table1")
    return errors


def check_regressions(committed, measured):
    """Compare measured speedups against the committed baselines."""
    failures = []
    by_case = {(c["workload"], c["scheme"]): c for c in committed["cases"]}
    for case in measured:
        baseline = by_case.get((case["workload"], case["scheme"]))
        if baseline is None:
            continue
        floor = baseline["speedup_vs_reference"] * (1 - REGRESSION_TOLERANCE)
        got = case["speedup_vs_reference"]
        tag = "%s/%s" % (case["workload"], case["scheme"])
        if got < floor:
            failures.append(
                "%s: speedup %.2fx below floor %.2fx (committed %.2fx)"
                % (tag, got, floor, baseline["speedup_vs_reference"]))
        else:
            print("  %-12s %.2fx (committed %.2fx, floor %.2fx) ok"
                  % (tag, got, baseline["speedup_vs_reference"], floor))
    return failures


# ----------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny matrix; gate against committed numbers, "
                             "do not rewrite the file")
    parser.add_argument("--check", action="store_true",
                        help="validate the committed file's schema only")
    parser.add_argument("--refs", type=int, default=3000,
                        help="references per timed run (default 3000)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per case; best is kept")
    parser.add_argument("--out", default=str(REPO_ROOT / OUT_NAME))
    parser.add_argument("--skip-table1", action="store_true",
                        help="skip the end-to-end table1 measurement")
    parser.add_argument("--baseline-cpu", type=float, default=None,
                        help="record this as the table1 pre-optimization "
                             "baseline CPU time (seconds)")
    parser.add_argument("--baseline-rev", default=None,
                        help="revision the table1 baseline was measured on")
    args = parser.parse_args(argv)

    out_path = pathlib.Path(args.out)
    committed = None
    if out_path.exists():
        try:
            committed = json.loads(out_path.read_text())
        except ValueError:
            print("error: %s is not valid JSON" % out_path)
            return 1

    if args.check or args.smoke:
        if committed is None:
            print("error: %s not found" % out_path)
            return 1
        errors = validate(committed)
        if errors:
            print("schema violations in %s:" % out_path)
            for error in errors:
                print("  - " + error)
            return 1
        print("%s: schema ok (%d cases)" % (out_path.name,
                                            len(committed["cases"])))
        if args.check:
            return 0

    matrix = SMOKE_MATRIX if args.smoke else FULL_MATRIX
    refs = min(args.refs, 1500) if args.smoke else args.refs
    repeats = 2 if args.smoke else args.repeats
    cases = []
    for workload, scheme in matrix:
        case = measure_case(workload, scheme, refs, repeats)
        print("%-6s %-8s optimized %8.0f refs/s   reference %8.0f refs/s"
              "   speedup %.2fx"
              % (workload, scheme, case["optimized"]["refs_per_s"],
                 case["reference"]["refs_per_s"],
                 case["speedup_vs_reference"]))
        cases.append(case)
    for workloads, scheme in (CORUN_SMOKE if args.smoke else CORUN_MATRIX):
        case = measure_corun_case(workloads, scheme, refs, repeats)
        print("%-6s %-8s co-run    %8.0f refs/s   (%d cores, shared L2)"
              % (case["workload"], scheme,
                 case["optimized"]["refs_per_s"], case["cores"]))
        cases.append(case)

    if args.smoke:
        failures = check_regressions(committed, cases)
        if failures:
            print("refs/sec regression gate FAILED:")
            for failure in failures:
                print("  - " + failure)
            return 1
        print("regression gate ok (tolerance %d%%)"
              % int(REGRESSION_TOLERANCE * 100))
        return 0

    doc = {
        "kind": "repro-bench-perf",
        "schema_version": SCHEMA_VERSION,
        "cases": cases,
    }
    if not args.skip_table1:
        optimized_cpu = measure_table1()
        table1 = {
            "command": "python " + " ".join(TABLE1_CMD),
            "optimized_cpu_s": round(optimized_cpu, 3),
            "baseline_cpu_s": None,
            "baseline_rev": None,
            "speedup": None,
        }
        previous = (committed or {}).get("table1") or {}
        baseline_cpu = (args.baseline_cpu
                        if args.baseline_cpu is not None
                        else previous.get("baseline_cpu_s"))
        baseline_rev = args.baseline_rev or previous.get("baseline_rev")
        if baseline_cpu:
            table1["baseline_cpu_s"] = round(baseline_cpu, 3)
            table1["baseline_rev"] = baseline_rev
            table1["speedup"] = round(baseline_cpu / optimized_cpu, 2)
            print("table1: %.2fs vs %.2fs baseline (%s) -> %.2fx"
                  % (optimized_cpu, baseline_cpu, baseline_rev,
                     table1["speedup"]))
        else:
            print("table1: %.2fs (no recorded baseline)" % optimized_cpu)
        doc["table1"] = table1
    errors = validate(doc)
    if errors:
        print("internal error: generated document fails validation:")
        for error in errors:
            print("  - " + error)
        return 1
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print("wrote %s" % out_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
