"""CI gate: the simulation service serves exactly what the engine runs.

Boots a real ``python -m repro.serve`` subprocess on an ephemeral port
with a fresh cache directory and drives it end to end through the
stdlib client:

1. **Single-spec byte-identity** — POST a RunSpec, poll the job to
   completion, GET the result, and diff it byte-for-byte against a
   direct in-process ``execute()`` of the same spec.
2. **Co-run byte-identity** — the same for a 2-core CoRunSpec against
   ``execute_corun()``.
3. **Cache-hit fast path** — re-POST the already-served spec and assert
   the job completes with *zero* additional simulation compute (the
   ``/stats`` computed-cell counter must not move) and that
   ``If-None-Match`` with the digest ETag answers 304.
4. **Graceful degradation** — a spec under an injected always-crash
   fault plan must surface as a ``failed:<kind>`` cell on a *completed*
   job (the server survives), with 404 for its result.
5. **Strict validation** — a malformed body answers 400, an unknown
   digest 404.

Exit status is nonzero the moment any check fails.

Usage::

    PYTHONPATH=src python tools/check_serve.py
"""

import json
import os
import subprocess
import sys
import tempfile
import time

from repro.serve.client import ServeClient, ServeError
from repro.sim.config import MachineConfig
from repro.sim.runner import execute
from repro.sim.spec import CoRunSpec, RunSpec
from repro.sim.stats import result_to_json

REFS = 2000

#: The always-crash rule for check 4; everything else runs fault-free.
FAULT_PLAN = {"faults": [{"kind": "crash", "match": "gzip/stride",
                          "attempts": [0, 1, 2]}]}


def fail(message):
    print("serve check FAILED: %s" % message, file=sys.stderr)
    sys.exit(1)


def start_server(cache_dir):
    """Launch the server subprocess; return (process, client)."""
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    env["REPRO_FAULT_PLAN"] = json.dumps(FAULT_PLAN)
    env.setdefault("PYTHONPATH", "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--workers", "2", "--retries", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    deadline = time.monotonic() + 30
    address = None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if line.startswith("serving on "):
            address = line.split()[-1].strip()
            break
    if address is None:
        process.kill()
        fail("server never announced its address")
    return process, ServeClient(address)


def run_one(client, spec, timeout=120.0):
    """Submit one spec; return (digest, terminal job snapshot)."""
    submitted = client.submit(spec)
    job = client.wait(submitted["job"], timeout=timeout)
    return submitted["digests"][0], job


def check_single_byte_identity(client):
    spec = RunSpec.create("swim", "grp", config=MachineConfig.tiny(),
                          limit_refs=REFS)
    digest, job = run_one(client, spec)
    if job["state"] != "done":
        fail("single-spec job ended %r: %r" % (job["state"], job))
    status, body, etag = client.result_bytes(digest)
    expected = result_to_json(execute(spec)).encode()
    if body != expected:
        fail("served RunSpec JSON differs from direct execute() "
             "(%d vs %d bytes)" % (len(body), len(expected)))
    print("single spec: served result byte-identical to execute() "
          "(%d bytes, ETag %s)" % (len(body), etag))
    return spec, digest, etag


def check_corun_byte_identity(client):
    from repro.sim.multicore import execute_corun

    spec = CoRunSpec.create(("mcf", "swim"), "srp",
                            config=MachineConfig.tiny(), limit_refs=1000)
    digest, job = run_one(client, spec)
    if job["state"] != "done":
        fail("co-run job ended %r: %r" % (job["state"], job))
    _status, body, _etag = client.result_bytes(digest)
    expected = result_to_json(execute_corun(spec)).encode()
    if body != expected:
        fail("served CoRunSpec JSON differs from direct execute_corun() "
             "(%d vs %d bytes)" % (len(body), len(expected)))
    print("co-run spec: served result byte-identical to execute_corun() "
          "(%d bytes)" % len(body))


def check_cache_fast_path(client, spec, digest, etag):
    before = client.stats()["cells"]["computed"]
    _digest, job = run_one(client, spec, timeout=30.0)
    if job["state"] != "done":
        fail("cached re-POST ended %r" % job["state"])
    after = client.stats()["cells"]["computed"]
    if after != before:
        fail("re-POST of a cached spec recomputed (%d -> %d)"
             % (before, after))
    status, body, _etag = client.result_bytes(digest, etag=etag)
    if status != 304 or body:
        fail("If-None-Match with the digest ETag answered %d with %d "
             "bytes (want 304, empty)" % (status, len(body)))
    print("cache fast path: re-POST cost zero compute; If-None-Match "
          "-> 304")


def check_graceful_degradation(client):
    spec = RunSpec.create("gzip", "stride", config=MachineConfig.tiny(),
                          limit_refs=REFS)
    digest, job = run_one(client, spec)
    if job["state"] != "done":
        fail("faulted job must still complete, ended %r" % job["state"])
    status = job["cells"][0]["status"]
    if status != "failed:crash":
        fail("injected crash surfaced as %r (want failed:crash)" % status)
    try:
        client.result_bytes(digest)
    except ServeError as exc:
        if exc.status != 404:
            fail("failed cell's result answered %d (want 404)"
                 % exc.status)
    else:
        fail("failed cell unexpectedly served a result")
    health = client.healthz()
    if health.get("status") != "ok":
        fail("server unhealthy after a crashing spec: %r" % health)
    print("degradation: crashing spec -> failed:crash cell, server "
          "healthy")


def check_validation(client):
    try:
        client.submit({"workload": "swim", "scheme": "warp-drive"})
    except ServeError as exc:
        if exc.status != 400:
            fail("malformed spec answered %d (want 400)" % exc.status)
    else:
        fail("malformed spec was accepted")
    try:
        client.result_bytes("0" * 64)
    except ServeError as exc:
        if exc.status != 404:
            fail("unknown digest answered %d (want 404)" % exc.status)
    else:
        fail("unknown digest served a result")
    print("validation: malformed body -> 400, unknown digest -> 404")


def main():
    with tempfile.TemporaryDirectory(prefix="repro-serve-check-") as tmp:
        process, client = start_server(os.path.join(tmp, "cache"))
        try:
            spec, digest, etag = check_single_byte_identity(client)
            check_corun_byte_identity(client)
            check_cache_fast_path(client, spec, digest, etag)
            check_graceful_degradation(client)
            check_validation(client)
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
    print("serve check passed: HTTP pipeline byte-identical to the "
          "engine, cache fast path + degradation verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
