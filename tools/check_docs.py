"""CI gate: docstring coverage and scheme-doc freshness.

Part 1 walks every module under ``src/repro/`` with :mod:`ast` (no
imports, so a module with a syntax error or heavy import side effects
still gets checked) and enforces three thresholds:

* **every module** has a docstring (coverage 1.0),
* **every public class** has a docstring (coverage 1.0),
* **public functions and methods** meet :data:`FUNCTION_THRESHOLD`
  coverage (the helper-dense simulator modules keep this below 1.0;
  raise it as gaps close, never lower it).

Names starting with ``_`` are private and exempt, as are ``__init__``
and the other dunders (their contract is the class docstring's job).

Part 2 keeps the scheme documentation honest against the registry
(:data:`repro.sim.runner.SCHEMES`):

* ``docs/SCHEMES.md`` must match a fresh ``gen_scheme_docs`` render
  byte for byte (regenerated in memory, never written),
* every registered scheme name must appear in ``README.md``,
* both CLIs must *derive* their scheme enumerations from the registry
  (``sorted(SCHEMES)`` in the source), not restate them in prose.

Exit status is nonzero on any violation, listing every offender so the
fix is one pass.

Usage::

    python tools/check_docs.py            # docstrings + scheme docs
    python tools/check_docs.py --list     # also list undocumented funcs
"""

import argparse
import ast
import os
import sys

#: Required docstring coverage per definition kind.
MODULE_THRESHOLD = 1.0
CLASS_THRESHOLD = 1.0
FUNCTION_THRESHOLD = 0.6

DEFAULT_ROOT = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src", "repro")


def iter_modules(root):
    """Yield (dotted name, path) for every .py file under ``root``."""
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, os.path.dirname(root))
            dotted = rel[:-3].replace(os.sep, ".")
            if dotted.endswith(".__init__"):
                dotted = dotted[:-len(".__init__")]
            yield dotted, path


def is_public(name):
    """Public-API name: no leading underscore (dunders are not public)."""
    return not name.startswith("_")


def scan_module(dotted, path):
    """Collect (kind, qualified name, has_docstring) rows for one module."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    rows = [("module", dotted, ast.get_docstring(tree) is not None)]
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if is_public(node.name):
                rows.append(("class", "%s.%s" % (dotted, node.name),
                             ast.get_docstring(node) is not None))
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if is_public(item.name):
                        rows.append((
                            "function",
                            "%s.%s.%s" % (dotted, node.name, item.name),
                            ast.get_docstring(item) is not None))
    # Module-level functions (walk() above only took methods, from class
    # bodies; take top-level defs here so nested closures stay exempt).
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if is_public(node.name):
                rows.append(("function", "%s.%s" % (dotted, node.name),
                             ast.get_docstring(node) is not None))
    return rows


def check_scheme_docs(repo):
    """Scheme-doc freshness/derivation violations, as message strings."""
    problems = []
    sys.path.insert(0, os.path.join(repo, "tools"))
    sys.path.insert(0, os.path.join(repo, "src"))
    try:
        import gen_scheme_docs
        from repro.sim.runner import SCHEMES
    finally:
        sys.path.pop(0)
        sys.path.pop(0)

    # Freshness: the committed page must equal a fresh render.
    committed_path = os.path.join(repo, "docs", "SCHEMES.md")
    fresh = gen_scheme_docs.render()
    if not os.path.exists(committed_path):
        problems.append("docs/SCHEMES.md is missing — run "
                        "`python tools/gen_scheme_docs.py`")
    else:
        with open(committed_path) as handle:
            committed = handle.read()
        if committed != fresh:
            for i, (got, want) in enumerate(
                    zip(committed.splitlines(), fresh.splitlines()), 1):
                if got != want:
                    problems.append(
                        "docs/SCHEMES.md is stale (first diff at line %d:"
                        " %r != %r) — run `python tools/gen_scheme_docs.py`"
                        % (i, got[:60], want[:60]))
                    break
            else:
                problems.append(
                    "docs/SCHEMES.md is stale (length differs) — run "
                    "`python tools/gen_scheme_docs.py`")

    # README coverage: every registered scheme is mentioned by name.
    with open(os.path.join(repo, "README.md")) as handle:
        readme = handle.read()
    for name in sorted(SCHEMES):
        if "`%s`" % name not in readme:
            problems.append("README.md never mentions scheme `%s` — its "
                            "scheme list has drifted from the registry"
                            % name)

    # Derivation: the CLIs must build their scheme enumerations from the
    # registry, not hand-maintained prose (source-pattern check).
    for rel in (os.path.join("src", "repro", "sim", "__main__.py"),
                os.path.join("src", "repro", "experiments", "__main__.py")):
        with open(os.path.join(repo, rel)) as handle:
            source = handle.read()
        if "sorted(SCHEMES)" not in source:
            problems.append("%s does not derive its scheme enumeration "
                            "from sorted(SCHEMES)" % rel)
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", default=DEFAULT_ROOT,
                        help="package directory to scan (default: "
                             "src/repro)")
    parser.add_argument("--list", action="store_true",
                        help="list undocumented functions even when the "
                             "threshold passes")
    args = parser.parse_args(argv)

    rows = []
    for dotted, path in iter_modules(args.root):
        rows.extend(scan_module(dotted, path))

    failed = False
    for kind, threshold in (("module", MODULE_THRESHOLD),
                            ("class", CLASS_THRESHOLD),
                            ("function", FUNCTION_THRESHOLD)):
        of_kind = [row for row in rows if row[0] == kind]
        documented = [row for row in of_kind if row[2]]
        coverage = len(documented) / len(of_kind) if of_kind else 1.0
        status = "ok" if coverage >= threshold else "FAIL"
        if coverage < threshold:
            failed = True
        print("%-8s  %4d/%4d documented  (%.1f%%, need %.0f%%)  %s"
              % (kind, len(documented), len(of_kind), 100.0 * coverage,
                 100.0 * threshold, status))
        missing = [row[1] for row in of_kind if not row[2]]
        if missing and (coverage < threshold
                        or (args.list and kind == "function")):
            for name in missing:
                print("  undocumented %s: %s" % (kind, name))

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    scheme_problems = check_scheme_docs(repo)
    if scheme_problems:
        failed = True
        for problem in scheme_problems:
            print("scheme docs: %s" % problem)
    else:
        print("scheme docs: docs/SCHEMES.md fresh; README and CLIs track "
              "the registry")

    if failed:
        print("docs check FAILED", file=sys.stderr)
        return 1
    print("docs check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
