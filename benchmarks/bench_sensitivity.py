"""Regenerate Section 5.4: compiler spatial-policy sensitivity."""

from conftest import save_result

from repro.experiments import sensitivity


def test_policy_sensitivity(ctx, results_dir, benchmark):
    result = benchmark.pedantic(
        lambda: sensitivity.run(ctx), rounds=1, iterations=1
    )
    detail = sensitivity.run_per_benchmark(ctx)
    save_result(results_dir, "sensitivity",
                result.render() + "\n\n" + detail.render())

    rows = {row[0]: row for row in result.rows}
    # Conservative marks less -> no more traffic than default, and it
    # must not beat default on performance (the paper: ~5% mean loss).
    assert rows["conservative"][2] <= rows["default"][2] * 1.02
    assert rows["conservative"][1] <= rows["default"][1] * 1.02
    # Aggressive marks more -> at least as much traffic as default.
    assert rows["aggressive"][2] >= rows["default"][2] * 0.98
