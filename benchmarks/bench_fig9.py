"""Regenerate Figure 9: pointer-prefetching gains on the C benchmarks."""

from conftest import save_result

from repro.experiments import fig9
from repro.report.bars import chart_from_result


def test_fig9(ctx, results_dir, benchmark):
    result = benchmark.pedantic(
        lambda: fig9.run(ctx), rounds=1, iterations=1
    )
    chart = chart_from_result(
        result, {"pointer": 1, "recursive": 2, "SRP": 3})
    save_result(results_dir, "fig9", result.render() + "\n\n" + chart)

    rows = {row[0]: row for row in result.rows}
    # equake is the paper's headline pointer-prefetching win (48.3%):
    # the gain comes from prefetching heap arrays of pointers.
    assert rows["equake"][1] > 1.10
    # Pointer prefetching never catastrophically degrades performance.
    for bench, row in rows.items():
        assert row[1] > 0.85, bench
        assert row[2] > 0.85, bench
    # SRP generally performs at least as well as pointer prefetching
    # (the paper: on all but twolf and sphinx).
    wins = sum(1 for row in rows.values() if row[3] >= row[1] * 0.98)
    assert wins >= len(rows) - 3
