"""Regenerate Figure 1: base vs perfect-L1 vs perfect-L2 vs GRP IPC."""

from conftest import save_result

from repro.experiments import fig1
from repro.report.bars import chart_from_result


def test_fig1(ctx, results_dir, benchmark):
    result = benchmark.pedantic(
        lambda: fig1.run(ctx), rounds=1, iterations=1
    )
    chart = chart_from_result(
        result, {"base": 1, "perfect-L2": 2, "GRP": 4})
    save_result(results_dir, "fig1", result.render() + "\n\n" + chart)

    for row in result.rows:
        bench, base, perfect_l2, perfect_l1, grp, gap = row
        assert perfect_l2 >= base * 0.99, bench
        assert perfect_l1 >= perfect_l2 * 0.95, bench
        assert grp >= base * 0.95, bench
    # The paper's geomean base gap is 33.7%; ours should be in the same
    # regime (the per-benchmark targets are calibrated, see DESIGN.md).
    gaps = [row[5] for row in result.rows]
    mean_gap = sum(gaps) / len(gaps)
    assert 20.0 < mean_gap < 55.0
