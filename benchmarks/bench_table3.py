"""Regenerate Table 3: static compiler-hint counts per benchmark."""

from conftest import save_result

from repro.experiments import table3


def test_table3(ctx, results_dir, benchmark):
    result = benchmark.pedantic(
        lambda: table3.run(ctx), rounds=1, iterations=1
    )
    save_result(results_dir, "table3", result.render())

    rows = {row[0]: row for row in result.rows}
    # Fortran codes carry no pointer or recursive hints (Table 3).
    for bench in ("wupwise", "swim", "mgrid", "applu", "apsi"):
        assert rows[bench][3] == 0, bench
        assert rows[bench][4] == 0, bench
    # The recursive-structure benchmarks do.
    for bench in ("mcf", "parser", "twolf", "sphinx"):
        assert rows[bench][4] > 0, bench
    # The indirect benchmarks emit indirect prefetch instructions.
    for bench in ("vpr", "bzip2"):
        assert rows[bench][6] > 0, bench
    # Every benchmark has some hinted references.
    for bench, row in rows.items():
        assert 0.0 < row[5] <= 100.0, bench
