"""Regenerate Table 1: summary speedup / traffic / perfect-L2 gap.

Shape checks (the paper's headline claims):

* every prefetcher beats no prefetching;
* SRP and GRP beat stride prefetching;
* SRP's traffic increase is several times GRP's;
* GRP/Var needs less traffic than GRP/Fix.
"""

from conftest import save_result

from repro.experiments import table1


def test_table1(ctx, results_dir, benchmark):
    result = benchmark.pedantic(
        lambda: table1.run(ctx), rounds=1, iterations=1
    )
    save_result(results_dir, "table1", result.render())

    speedup = {row[0]: row[1] for row in result.rows}
    traffic = {row[0]: row[2] for row in result.rows}
    assert speedup["Stride prefetching"] > 1.05
    assert speedup["SRP"] > speedup["Stride prefetching"]
    assert speedup["GRP/Var"] > speedup["Stride prefetching"]
    assert speedup["GRP/Var"] > 0.9 * speedup["SRP"]
    assert traffic["SRP"] > 2.0 * traffic["GRP/Var"]
    assert traffic["GRP/Var"] <= traffic["GRP/Fix"]
    assert traffic["GRP/Var"] < 2.0
