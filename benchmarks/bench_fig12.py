"""Regenerate Figure 12: normalized memory traffic."""

from conftest import save_result

from repro.experiments import fig12
from repro.report.bars import chart_from_result


def test_fig12(ctx, results_dir, benchmark):
    result = benchmark.pedantic(
        lambda: fig12.run(ctx), rounds=1, iterations=1
    )
    chart = chart_from_result(result, {"stride": 1, "SRP": 2, "GRP": 3})
    save_result(results_dir, "fig12", result.render() + "\n\n" + chart)

    geomean = result.row_by_key("geomean")
    stride_traffic, srp_traffic, grp_traffic = geomean[1:4]
    # The paper's central traffic claim: SRP's increase dwarfs GRP's,
    # and GRP sits close to stride.
    assert srp_traffic > 2.0
    assert grp_traffic < srp_traffic / 2.0
    assert grp_traffic < 2.0
    assert stride_traffic < 1.6
    # Per-benchmark: GRP never uses meaningfully more traffic than SRP.
    for row in result.rows[:-1]:
        assert row[3] <= row[2] * 1.1, row[0]
