"""Ablations of SRP/GRP design choices called out in DESIGN.md.

These go beyond the paper's tables: each isolates one mechanism the
paper asserts matters (prefetch placement in the LRU way, LIFO queue
scheduling, queue capacity, recursive chase depth) and measures it on a
benchmark where it should bind.
"""

from conftest import save_result

from repro.experiments.common import format_table
from repro.sim.config import MachineConfig
from repro.sim.runner import run_workload

REFS = 25_000


def _run(bench, scheme, **cfg):
    config = MachineConfig.scaled(**cfg)
    return run_workload(bench, scheme, config=config, limit_refs=REFS)


def test_prefetch_insertion_position(ctx, results_dir, benchmark):
    """LRU insertion (the paper's pollution control) vs MRU insertion.

    On ammp — where SRP prefetches are almost pure pollution — inserting
    prefetches at MRU must displace more useful data than LRU insertion.
    """
    def run():
        rows = []
        for bench in ("ammp", "twolf"):
            base = _run(bench, "none")
            lru = _run(bench, "srp", prefetch_insert="lru")
            mru = _run(bench, "srp", prefetch_insert="mru")
            rows.append([
                bench,
                round(lru.speedup_over(base), 3),
                round(mru.speedup_over(base), 3),
                round(lru.coverage_over(base), 3),
                round(mru.coverage_over(base), 3),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        ["benchmark", "LRU speedup", "MRU speedup", "LRU cov", "MRU cov"],
        rows, title="Ablation: prefetch insertion position (SRP)",
    )
    save_result(results_dir, "ablation_insertion", rendered)
    for row in rows:
        assert row[1] >= row[2] * 0.97, row[0]  # LRU no worse than MRU


def test_queue_scheduling_policy(ctx, results_dir, benchmark):
    """LIFO (newest region first, the paper's choice) vs FIFO."""
    def run():
        rows = []
        for bench in ("swim", "wupwise"):
            base = _run(bench, "none")
            lifo = _run(bench, "srp", prefetch_queue_policy="lifo")
            fifo = _run(bench, "srp", prefetch_queue_policy="fifo")
            rows.append([
                bench,
                round(lifo.speedup_over(base), 3),
                round(fifo.speedup_over(base), 3),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        ["benchmark", "LIFO speedup", "FIFO speedup"], rows,
        title="Ablation: prefetch queue scheduling (SRP)",
    )
    save_result(results_dir, "ablation_queue_policy", rendered)
    for row in rows:
        assert row[1] >= row[2] * 0.9, row[0]


def test_queue_capacity(ctx, results_dir, benchmark):
    """32 entries (paper) vs 8 and 128."""
    def run():
        rows = []
        base = _run("swim", "none")
        for size in (8, 32, 128):
            stats = _run("swim", "srp", prefetch_queue_size=size)
            rows.append([
                size,
                round(stats.speedup_over(base), 3),
                round(stats.traffic_ratio_over(base), 2),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        ["queue size", "speedup", "traffic"], rows,
        title="Ablation: prefetch queue capacity (SRP on swim)",
    )
    save_result(results_dir, "ablation_queue_size", rendered)
    speedups = [row[1] for row in rows]
    assert max(speedups) / min(speedups) < 1.5  # no cliff


def test_indirect_encoding(ctx, results_dir, benchmark):
    """Section 3.3.3's two indirect encodings on the indirect benchmarks.

    The explicit-instruction mode prefetches on every index-block
    crossing; the hint-bit mode only expands on b[i] *misses* and can
    track one indirection array per base register — the paper predicts
    it trades overhead for coverage.
    """
    def run():
        rows = []
        for bench in ("vpr", "bzip2"):
            base = _run(bench, "none")
            inst = _run(bench, "grp")
            bit = _run(bench, "grp-hintbit")
            rows.append([
                bench,
                round(inst.speedup_over(base), 3),
                round(bit.speedup_over(base), 3),
                round(inst.traffic_ratio_over(base), 2),
                round(bit.traffic_ratio_over(base), 2),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        ["benchmark", "instr speedup", "hint-bit speedup",
         "instr traffic", "hint-bit traffic"],
        rows, title="Ablation: indirect prefetch encoding (GRP)",
    )
    save_result(results_dir, "ablation_indirect_encoding", rendered)
    for row in rows:
        assert row[2] > 1.0, row[0]  # the alternate encoding still helps
        assert row[1] >= row[2] * 0.95, row[0]  # instruction mode >= hint-bit


def test_recursive_depth(ctx, results_dir, benchmark):
    """Recursive chase depth: 6 (paper) vs 1, 3, 12 on mcf."""
    def run():
        rows = []
        base = _run("mcf", "none")
        for depth in (1, 3, 6, 12):
            stats = _run("mcf", "grp", recursive_depth=depth)
            rows.append([
                depth,
                round(stats.speedup_over(base), 3),
                round(stats.traffic_ratio_over(base), 2),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        ["depth", "speedup", "traffic"], rows,
        title="Ablation: recursive pointer chase depth (GRP on mcf)",
    )
    save_result(results_dir, "ablation_recursive_depth", rendered)
    # Deeper chases cost traffic.
    assert rows[-1][2] >= rows[0][2] * 0.95
