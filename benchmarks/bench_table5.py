"""Regenerate Table 5: coverage, accuracy, and traffic per benchmark.

Suite-level shape (paper's averages): stride has the highest accuracy
and the lowest coverage; SRP the best coverage and worst accuracy; GRP
sits between on accuracy with coverage near SRP's.
"""

from conftest import save_result

from repro.experiments import table5


def test_table5(ctx, results_dir, benchmark):
    result = benchmark.pedantic(
        lambda: table5.run(ctx), rounds=1, iterations=1
    )
    save_result(results_dir, "table5", result.render())

    avg = result.row_by_key("average")
    str_cov, str_acc = avg[3], avg[4]
    srp_cov, srp_acc = avg[6], avg[7]
    grp_cov, grp_acc = avg[9], avg[10]
    assert str_acc > srp_acc  # stride most accurate
    assert grp_acc > srp_acc  # GRP accuracy between stride and SRP
    assert srp_cov > str_cov  # SRP best coverage
    assert grp_cov > str_cov * 0.9  # GRP coverage near SRP, above stride
    # Per-benchmark: accuracies are percentages.
    for row in result.rows:
        for idx in (4, 7, 10):
            assert 0.0 <= row[idx] <= 100.0
