"""Regenerate Figures 10 and 11: stride vs SRP vs GRP speedups."""

from conftest import save_result

from repro.experiments import fig10_11
from repro.report.bars import chart_from_result


def test_fig10_integer(ctx, results_dir, benchmark):
    result = benchmark.pedantic(
        lambda: fig10_11.run(ctx), rounds=1, iterations=1
    )
    chart = chart_from_result(
        result, {"stride": 1, "SRP": 2, "GRP": 3, "perfect-L2": 4})
    save_result(results_dir, "fig10", result.render() + "\n\n" + chart)

    rows = {row[0]: row for row in result.rows}
    # bzip2: GRP's indirect prefetching beats SRP (the paper's 4% gap).
    assert rows["bzip2"][3] > rows["bzip2"][2]
    # No scheme exceeds the perfect-L2 bound by more than noise.
    for bench, row in rows.items():
        for idx in (1, 2, 3):
            assert row[idx] <= row[4] * 1.1, bench


def test_fig11_floating_point(ctx, results_dir, benchmark):
    result = benchmark.pedantic(
        lambda: fig10_11.run_fp(ctx), rounds=1, iterations=1
    )
    chart = chart_from_result(
        result, {"stride": 1, "SRP": 2, "GRP": 3, "perfect-L2": 4})
    save_result(results_dir, "fig11", result.render() + "\n\n" + chart)

    rows = {row[0]: row for row in result.rows}
    # Region prefetching beats stride on the multi-stream FP codes.
    for bench in ("wupwise", "swim", "apsi"):
        assert rows[bench][2] > rows[bench][1], bench
    for bench, row in rows.items():
        for idx in (1, 2, 3):
            assert row[idx] <= row[4] * 1.1, bench
