"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  They share
one :class:`ExperimentContext`, so each (benchmark, scheme) simulation
runs exactly once per session no matter how many tables slice it.

The context shares the same persistent result cache as
``python -m repro.experiments``, so tables regenerate from disk instead
of re-simulating when the specs match.

Environment knobs:

``REPRO_BENCH_REFS``
    Memory references simulated per run (default 40000).  Larger values
    sharpen the numbers at proportional cost; the EXPERIMENTS.md results
    were recorded at 60000.
``REPRO_BENCH_JOBS``
    Parallel simulation processes (default 1; 0 = all cores).
``REPRO_CACHE_DIR``
    Result cache directory (default ``.repro-cache``).
``REPRO_BENCH_NO_CACHE``
    Set to disable the persistent cache entirely.
"""

import os
import pathlib

import pytest

from repro.experiments.common import ExperimentContext
from repro.sim.cache import ResultCache

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx():
    limit = int(os.environ.get("REPRO_BENCH_REFS", "40000"))
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache = (None if os.environ.get("REPRO_BENCH_NO_CACHE")
             else ResultCache())
    return ExperimentContext(limit_refs=limit, jobs=jobs, cache=cache)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir, name, rendered):
    """Write a rendered table both to disk and to the terminal."""
    path = results_dir / ("%s.txt" % name)
    path.write_text(rendered + "\n")
    print()
    print(rendered)
