"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  They share
one :class:`ExperimentContext`, so each (benchmark, scheme) simulation
runs exactly once per session no matter how many tables slice it.

Environment knobs:

``REPRO_BENCH_REFS``
    Memory references simulated per run (default 40000).  Larger values
    sharpen the numbers at proportional cost; the EXPERIMENTS.md results
    were recorded at 60000.
"""

import os
import pathlib

import pytest

from repro.experiments.common import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx():
    limit = int(os.environ.get("REPRO_BENCH_REFS", "40000"))
    return ExperimentContext(limit_refs=limit)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir, name, rendered):
    """Write a rendered table both to disk and to the terminal."""
    path = results_dir / ("%s.txt" % name)
    path.write_text(rendered + "\n")
    print()
    print(rendered)
