"""Regenerate Table 6: the stubborn benchmarks' remaining gaps."""

from conftest import save_result

from repro.experiments import table6


def test_table6(ctx, results_dir, benchmark):
    result = benchmark.pedantic(
        lambda: table6.run(ctx), rounds=1, iterations=1
    )
    save_result(results_dir, "table6", result.render())

    gaps = {row[0]: row[1] for row in result.rows}
    # All seven keep a visible gap to a perfect L2 under GRP.  (The
    # paper notes GRP pulls bzip2 and ammp under 15%; the rest stay
    # well above.)
    for bench, gap in gaps.items():
        assert gap > 5.0, bench
    for bench in ("mcf", "swim", "art", "sphinx"):
        assert gaps[bench] > 15.0, bench
    # mcf (tree traversal) stays the worst or near-worst, as in the paper.
    assert gaps["mcf"] >= max(gaps.values()) * 0.6
