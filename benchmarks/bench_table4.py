"""Regenerate Table 4: GRP/Var vs GRP/Fix traffic and region sizes."""

from conftest import save_result

from repro.experiments import table4


def test_table4(ctx, results_dir, benchmark):
    result = benchmark.pedantic(
        lambda: table4.run(ctx), rounds=1, iterations=1
    )
    save_result(results_dir, "table4", result.render())

    for row in result.rows:
        bench, var_traffic, fix_traffic = row[0], row[1], row[2]
        pct_small = row[3] + row[4]  # 2- and 4-block regions
        perf_ratio = row[7]
        # Variable regions must not increase traffic, and the bulk of the
        # sized regions are small (paper: 76.8-90.3% are 2 blocks).
        assert var_traffic <= fix_traffic * 1.02, bench
        assert pct_small > 50.0, bench
        # Performance stays within a few percent of GRP/Fix.
        assert perf_ratio > 0.90, bench
    # mesa and sphinx show a real traffic gap between Var and Fix.
    gaps = {row[0]: row[2] - row[1] for row in result.rows}
    assert gaps["mesa"] >= 0.0
    assert gaps["sphinx"] >= 0.0
