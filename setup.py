"""Setup shim.

The pinned environment has no ``wheel`` package and no network access, so
PEP 517 editable installs (which build an editable wheel) cannot run.
Keeping a classic ``setup.py`` lets ``pip install -e .`` fall back to the
legacy ``setup.py develop`` path, which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.2.0",
    description=(
        "Guided Region Prefetching (GRP, ISCA 2003) reproduction: "
        "trace-driven memory hierarchy simulator, prefetch engines, and "
        "hint-generating mini-compiler"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
