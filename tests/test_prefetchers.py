"""Behavioral tests for the prefetch engines against a real hierarchy.

These drive small hand-built traces through the full Hierarchy + engine
stack and check the paper's mechanisms: hint gating, pointer scanning
depth, variable region sizing, indirect expansion, stream buffer
allocation, and traffic accounting.
"""

import pytest

from repro.compiler.hints import HintTable, LoadHint
from repro.mem.hierarchy import Hierarchy
from repro.mem.space import AddressSpace
from repro.prefetch.grp import GRPPrefetcher
from repro.prefetch.pointer import PointerPrefetcher, RecursivePointerPrefetcher
from repro.prefetch.srp import SRPPrefetcher
from repro.prefetch.stride import StridePrefetcher, StrideTable
from repro.sim.config import MachineConfig
from repro.trace.events import IndirectPrefetch, LoopBound


def make_hier(prefetcher=None, **cfg):
    config = MachineConfig.tiny(**cfg)
    space = AddressSpace()
    return Hierarchy(config, space, prefetcher), space, config


def drain(hier, now):
    hier.controller.drain(now)


class TestSRP:
    def test_miss_allocates_full_region(self):
        srp = SRPPrefetcher()
        hier, space, config = make_hier(srp)
        base = space.malloc(config.region_size, align=config.region_size)
        hier.access(base, now=0)
        assert len(srp.queue) == 1
        entry = srp.queue._entries[0]
        assert entry.nblocks == config.region_size // config.block_size

    def test_prefetches_issue_into_idle_time(self):
        srp = SRPPrefetcher()
        hier, space, config = make_hier(srp)
        base = space.malloc(config.region_size, align=config.region_size)
        hier.access(base, now=0)
        drain(hier, now=100_000)
        assert hier.dram.stats.prefetch_blocks > 0

    def test_prefetched_blocks_become_hits(self):
        srp = SRPPrefetcher()
        hier, space, config = make_hier(srp)
        base = space.malloc(config.region_size, align=config.region_size)
        hier.access(base, now=0)
        hier.access(base + config.block_size, now=100_000)
        assert hier.l2.stats.demand_misses == 1
        assert hier.l2.stats.useful_prefetches == 1

    def test_every_miss_triggers_region(self):
        """SRP is unconditional -- the source of its traffic problem."""
        srp = SRPPrefetcher()
        hier, space, config = make_hier(srp)
        a = space.malloc(1 << 20, align=config.region_size)
        for k in range(4):
            hier.access(a + k * config.region_size, now=k * 50_000)
        assert srp.queue.regions_allocated == 4


class TestGRPGating:
    def hinted(self, **bits):
        table = HintTable()
        table.mark("pc1", **bits)
        return table

    def test_unhinted_miss_ignored(self):
        grp = GRPPrefetcher(hint_table=HintTable())
        hier, space, config = make_hier(grp)
        addr = space.malloc(4096, align=4096)
        hier.access(addr, now=0, ref_id="pc1")
        drain(hier, 100_000)
        assert hier.dram.stats.prefetch_blocks == 0
        assert grp.grp_stats.unhinted_misses_ignored == 1

    def test_spatial_hint_triggers_region(self):
        grp = GRPPrefetcher(hint_table=self.hinted(spatial=True))
        hier, space, config = make_hier(grp)
        addr = space.malloc(4096, align=4096)
        hier.access(addr, now=0, ref_id="pc1")
        drain(hier, 100_000)
        assert hier.dram.stats.prefetch_blocks > 0
        assert grp.grp_stats.spatial_regions == 1

    def test_hint_delivered_with_request_overrides_table(self):
        grp = GRPPrefetcher(hint_table=HintTable())
        hier, space, config = make_hier(grp)
        addr = space.malloc(4096, align=4096)
        hier.access(addr, now=0, ref_id="pcX",
                    hint=LoadHint(spatial=True))
        assert grp.grp_stats.spatial_regions == 1


class TestGRPPointer:
    def build_chain(self, space, length, block=64):
        """Chain of nodes, one per cache block, far apart."""
        nodes = [space.malloc(block, align=4096) for _ in range(length)]
        for a, b in zip(nodes, nodes[1:]):
            space.store_word(a, b)
        return nodes

    def test_pointer_hint_scans_one_level(self):
        table = HintTable()
        table.mark("pc1", pointer=True)
        grp = GRPPrefetcher(hint_table=table)
        hier, space, config = make_hier(grp)
        nodes = self.build_chain(space, 5)
        hier.access(nodes[0], now=0, ref_id="pc1")
        drain(hier, 1_000_000)
        # Depth 1: node 1 (+ its successor block) prefetched, no further.
        prefetched = {b for b in hier.l2.resident_blocks()}
        assert nodes[1] in prefetched
        assert nodes[2] not in prefetched

    def test_recursive_hint_chases_to_depth(self):
        table = HintTable()
        table.mark("pc1", recursive=True)
        grp = GRPPrefetcher(hint_table=table)
        hier, space, config = make_hier(grp, recursive_depth=3)
        nodes = self.build_chain(space, 8)
        hier.access(nodes[0], now=0, ref_id="pc1")
        drain(hier, 10_000_000)
        resident = set(hier.l2.resident_blocks())
        assert nodes[1] in resident
        assert nodes[2] in resident
        assert nodes[3] in resident
        assert nodes[4] not in resident  # counter exhausted

    def test_two_blocks_per_pointer(self):
        table = HintTable()
        table.mark("pc1", pointer=True)
        grp = GRPPrefetcher(hint_table=table)
        hier, space, config = make_hier(grp)
        nodes = self.build_chain(space, 2)
        hier.access(nodes[0], now=0, ref_id="pc1")
        drain(hier, 1_000_000)
        resident = set(hier.l2.resident_blocks())
        assert nodes[1] in resident
        assert nodes[1] + config.block_size in resident


class TestGRPVariableRegions:
    def run_with_bound(self, bound, coeff, variable=True):
        table = HintTable()
        table.mark("pc1", spatial=True, region_coeff=coeff)
        grp = GRPPrefetcher(hint_table=table, variable_regions=variable)
        hier, space, config = make_hier(grp)
        addr = space.malloc(8192, align=4096)
        if bound is not None:
            hier.directive(LoopBound(bound), now=0)
        hier.access(addr, now=1, ref_id="pc1")
        return grp, hier, config

    def test_region_size_is_bound_shifted(self):
        grp, hier, config = self.run_with_bound(bound=4, coeff=5)
        # 4 << 5 = 128 bytes = 2 blocks.
        assert grp.grp_stats.region_size_histogram == {2: 1}

    def test_clamped_to_fixed_region(self):
        grp, hier, config = self.run_with_bound(bound=1 << 20, coeff=6)
        blocks = config.region_size // config.block_size
        assert grp.grp_stats.region_size_histogram == {blocks: 1}

    def test_coeff7_means_fixed(self):
        grp, hier, config = self.run_with_bound(bound=4, coeff=7)
        blocks = config.region_size // config.block_size
        assert grp.grp_stats.region_size_histogram == {blocks: 1}

    def test_no_bound_falls_back_to_fixed(self):
        grp, hier, config = self.run_with_bound(bound=None, coeff=5)
        blocks = config.region_size // config.block_size
        assert grp.grp_stats.region_size_histogram == {blocks: 1}

    def test_variable_disabled_ignores_coeff(self):
        grp, hier, config = self.run_with_bound(bound=4, coeff=5,
                                                variable=False)
        blocks = config.region_size // config.block_size
        assert grp.grp_stats.region_size_histogram == {blocks: 1}


class TestGRPIndirect:
    def test_indirect_expands_index_block(self):
        grp = GRPPrefetcher(hint_table=HintTable())
        hier, space, config = make_hier(grp)
        base = space.malloc(1 << 16, align=4096)
        idx_block = space.malloc(64, align=64)
        indices = [3, 70, 200, 511]
        for k, v in enumerate(indices):
            space.store_word(idx_block + 4 * k, v, size=4)
        hier.directive(
            IndirectPrefetch(base_addr=base, elem_size=8,
                             index_addr=idx_block),
            now=0,
        )
        drain(hier, 1_000_000)
        resident = set(hier.l2.resident_blocks())
        for v in indices:
            target = (base + v * 8) & ~(config.block_size - 1)
            assert target in resident
        assert grp.grp_stats.indirect_instructions == 1


class TestPointerPrefetcher:
    def test_scans_every_demand_fill(self):
        ptr = PointerPrefetcher()
        hier, space, config = make_hier(ptr)
        target = space.malloc(64, align=4096)
        line = space.malloc(64, align=4096)
        space.store_word(line + 8, target)
        hier.access(line, now=0)
        drain(hier, 1_000_000)
        assert target in set(hier.l2.resident_blocks())

    def test_non_recursive_stops_after_one_level(self):
        ptr = PointerPrefetcher()
        hier, space, config = make_hier(ptr)
        a = space.malloc(64, align=4096)
        b = space.malloc(64, align=4096)
        c = space.malloc(64, align=4096)
        space.store_word(a, b)
        space.store_word(b, c)
        hier.access(a, now=0)
        drain(hier, 1_000_000)
        resident = set(hier.l2.resident_blocks())
        assert b in resident
        assert c not in resident

    def test_recursive_variant_chases(self):
        ptr = RecursivePointerPrefetcher()
        # Larger L2 so the 4096-aligned chain nodes don't all collide in
        # one 4-way set and evict each other's prefetches.
        hier, space, config = make_hier(ptr, recursive_depth=6,
                                        l2_size=64 * 1024)
        nodes = [space.malloc(64, align=4096) for _ in range(8)]
        for x, y in zip(nodes, nodes[1:]):
            space.store_word(x, y)
        hier.access(nodes[0], now=0)
        drain(hier, 10_000_000)
        resident = set(hier.l2.resident_blocks())
        for node in nodes[1:7]:
            assert node in resident


class TestStrideTable:
    def test_needs_confidence_to_predict(self):
        table = StrideTable(confident=2)
        table.train("pc", 0)
        assert table.predict("pc") is None
        table.train("pc", 64)
        assert table.predict("pc") is None  # stride learned, conf 0
        table.train("pc", 128)
        table.train("pc", 192)
        assert table.predict("pc") == 64

    def test_noise_degrades_confidence(self):
        table = StrideTable(confident=2)
        for addr in (0, 64, 128, 192):
            table.train("pc", addr)
        assert table.predict("pc") == 64
        table.train("pc", 5000)
        table.train("pc", 9999)
        assert table.predict("pc") is None

    def test_capacity_evicts_lru_way(self):
        table = StrideTable(entries=8, assoc=2)
        # Overfill one set; oldest PC forgotten.
        pcs = ["p%d" % k for k in range(20)]
        for pc in pcs:
            table.train(pc, 0)
        known = sum(
            1 for pc in pcs
            if any(key == pc for ways in table._sets for key, _ in ways)
        )
        assert known <= 8


class TestStridePrefetcher:
    def run_stream(self, n_misses, stride=64):
        eng = StridePrefetcher()
        hier, space, config = make_hier(eng)
        base = space.malloc(1 << 20, align=4096)
        now = 0
        for k in range(n_misses):
            hier.access(base + k * stride, now=now, ref_id="pc")
            now += 10_000
        return eng, hier

    def test_allocates_after_confidence(self):
        eng, hier = self.run_stream(6)
        assert eng.allocations >= 1

    def test_covers_stream_after_rampup(self):
        eng, hier = self.run_stream(30)
        assert eng.private_useful > 10

    def test_prefetch_traffic_accounted(self):
        eng, hier = self.run_stream(30)
        assert hier.dram.stats.prefetch_blocks > 0

    def test_stream_data_not_installed_in_l2_unprobed(self):
        """Stream-buffer fills live in the buffers, not the L2."""
        eng, hier = self.run_stream(8)
        assert hier.l2.stats.prefetch_fills == 0
