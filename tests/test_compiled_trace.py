"""Compiled-trace correctness and fast-path/slow-path equivalence.

Three layers of guarantees, matching DESIGN.md's equivalence contract:

* lowering an interpreter run to columns (``run_columns``) yields exactly
  the trace ``CompiledTrace.from_events`` builds from the same run's
  event stream, for every registered workload, hinted and unhinted
  (directives included);
* the on-disk form round-trips losslessly, and the trace store serves
  memory/disk hits without rebuilding;
* the optimized pipeline end to end (compiled trace + fused simulate
  loop + hierarchy fast paths) produces a ``RunResult.to_dict()``
  byte-identical to the ``reference=True`` slow path for every scheme in
  the registry.
"""

import json
import struct
from array import array

import pytest

from repro.compiler.driver import compile_hints
from repro.mem.space import AddressSpace
from repro.sim.config import MachineConfig
from repro.sim.runner import SCHEMES, execute
from repro.sim.spec import RunSpec
from repro.trace.compiled import (
    K_BOUND,
    K_INDIRECT,
    K_SETBASE,
    CompiledTrace,
)
from repro.trace.events import MemRef
from repro.trace.interp import Interpreter
from repro.trace.store import TraceKey, TraceStore, format_event
from repro.workloads import get_workload, workload_names

LIMIT = 1200


def build_interpreter(name, hinted, indirect_mode="instruction"):
    """A fresh interpreter for ``name``, with or without compiled hints."""
    config = MachineConfig.scaled()
    workload = get_workload(name)
    space = AddressSpace()
    built = workload.build(space, scale=1.0)
    program = built.program.finalize()
    result = (
        compile_hints(program, l2_size=config.l2_size,
                      block_size=config.block_size, policy="default",
                      variable_regions=True, indirect_mode=indirect_mode)
        if hinted else None
    )
    interp = Interpreter(program, space, result, seed=12345,
                         block_size=config.block_size,
                         ops_scale=workload.ops_scale)
    for pname, addr in built.pointer_bindings.items():
        interp.bind_pointer(pname, addr)
    return interp


def assert_traces_equal(a, b):
    assert a.kinds == b.kinds
    assert a.f0 == b.f0
    assert a.f1 == b.f1
    assert a.f2 == b.f2
    assert a.ref_names == b.ref_names
    assert a.ref_count == b.ref_count


class TestReplayEquality:
    @pytest.mark.parametrize("name", workload_names())
    def test_columns_match_event_stream_unhinted(self, name):
        columnar = build_interpreter(name, hinted=False).run_columns(LIMIT)
        events = list(build_interpreter(name, hinted=False).run(limit=LIMIT))
        assert_traces_equal(columnar, CompiledTrace.from_events(events))

    @pytest.mark.parametrize("name", workload_names())
    def test_columns_match_event_stream_hinted(self, name):
        columnar = build_interpreter(name, hinted=True).run_columns(LIMIT)
        events = list(build_interpreter(name, hinted=True).run(limit=LIMIT))
        assert_traces_equal(columnar, CompiledTrace.from_events(events))

    @pytest.mark.parametrize("name,mode,kind", [
        ("mesa", "instruction", K_BOUND),
        ("vpr", "instruction", K_INDIRECT),
        ("vpr", "hintbit", K_SETBASE),
    ])
    def test_directives_survive_lowering(self, name, mode, kind):
        """Each directive event kind round-trips through lowering; the
        reconstructed stream equals the source field for field."""
        events = list(
            build_interpreter(name, hinted=True, indirect_mode=mode)
            .run(limit=LIMIT))
        trace = CompiledTrace.from_events(events)
        assert kind in set(trace.kinds)
        assert [format_event(e) for e in trace.events()] \
            == [format_event(e) for e in events]
        columnar = build_interpreter(
            name, hinted=True, indirect_mode=mode).run_columns(LIMIT)
        assert_traces_equal(columnar, trace)

    def test_ref_count_matches_memrefs(self):
        events = list(build_interpreter("mcf", hinted=False).run(limit=LIMIT))
        trace = CompiledTrace.from_events(events)
        assert trace.ref_count == sum(
            1 for e in events if isinstance(e, MemRef))
        assert trace.ref_count == LIMIT


class TestDiskForm:
    def test_save_load_roundtrip(self, tmp_path):
        trace = build_interpreter("swim", hinted=True).run_columns(LIMIT)
        path = tmp_path / "swim.trace"
        trace.save(str(path))
        assert_traces_equal(CompiledTrace.load(str(path)), trace)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_bytes(b'{"magic": "nope"}\n')
        with pytest.raises(ValueError):
            CompiledTrace.load(str(path))

    def test_load_rejects_truncation(self, tmp_path):
        trace = build_interpreter("swim", hinted=False).run_columns(LIMIT)
        path = tmp_path / "cut.trace"
        trace.save(str(path))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError):
            CompiledTrace.load(str(path))


class TestCrossEndian:
    """The disk form is canonically little-endian on every host.

    These tests drive the ``_swap`` override through both byteswap paths
    on any host: a simulated big-endian writer/reader must interoperate
    losslessly with the canonical file, and the canonical bytes must
    match an explicit ``struct.pack('<q')`` encoding — so a trace saved
    on one architecture always loads on any other.
    """

    def trace(self):
        return build_interpreter("swim", hinted=False).run_columns(LIMIT)

    def test_canonical_file_is_little_endian(self, tmp_path):
        addr = 0x0102030405060708  # asymmetric: byte order is visible
        trace = CompiledTrace.from_events([MemRef("a", addr, 8)])
        path = tmp_path / "le.trace"
        trace.save(str(path), _swap=False)
        header_line, _, body = path.read_bytes().partition(b"\n")
        assert json.loads(header_line)["endian"] == "little"
        n = len(trace.kinds)
        assert body == (
            trace.kinds.tobytes()
            + struct.pack("<%dq" % n, *trace.f0)
            + struct.pack("<%dq" % n, *trace.f1)
            + struct.pack("<%dq" % n, *trace.f2))

    def test_simulated_big_endian_round_trip(self, tmp_path):
        """Both byteswap paths (save and load) compose to the identity."""
        trace = self.trace()
        path = tmp_path / "be-host.trace"
        trace.save(str(path), _swap=True)
        assert_traces_equal(CompiledTrace.load(str(path), _swap=True), trace)

    def test_swap_changes_wire_bytes_exactly_once(self, tmp_path):
        """A big-endian writer's byteswap is real, and the load-side swap
        is exactly its inverse: reading its output *without* swapping
        yields the byteswapped field values, not the originals."""
        trace = self.trace()
        path = tmp_path / "be-wire.trace"
        trace.save(str(path), _swap=True)
        raw = CompiledTrace.load(str(path), _swap=False)
        assert raw.kinds == trace.kinds  # 1-byte column: order-invariant
        swapped = array("q", trace.f1)
        swapped.byteswap()
        assert raw.f1 == swapped
        assert raw.f1 != trace.f1


class TestTraceStore:
    def key(self, limit=LIMIT):
        return TraceKey("swim", 1.0, 12345, limit, 64, None)

    def test_miss_builds_then_memory_hit(self, tmp_path):
        store = TraceStore(disk_dir=str(tmp_path))
        builds = []

        def builder():
            builds.append(1)
            return build_interpreter("swim", hinted=False).run_columns(LIMIT)

        a = store.get_or_build(self.key(), builder)
        b = store.get_or_build(self.key(), builder)
        assert a is b
        assert len(builds) == 1
        assert store.misses == 1
        assert store.memory_hits == 1

    def test_disk_hit_across_store_instances(self, tmp_path):
        trace = build_interpreter("swim", hinted=False).run_columns(LIMIT)
        TraceStore(disk_dir=str(tmp_path)).put(self.key(), trace)
        fresh = TraceStore(disk_dir=str(tmp_path))
        loaded = fresh.get(self.key())
        assert loaded is not None
        assert fresh.disk_hits == 1
        assert_traces_equal(loaded, trace)

    def test_distinct_keys_do_not_collide(self, tmp_path):
        store = TraceStore(disk_dir=str(tmp_path))
        trace = build_interpreter("swim", hinted=False).run_columns(LIMIT)
        store.put(self.key(), trace)
        assert store.get(self.key(limit=LIMIT + 1)) is None
        assert store.misses == 1

    def test_memory_only_store(self):
        store = TraceStore(disk_dir=False)
        assert store.path_for(self.key()) is None
        trace = build_interpreter("swim", hinted=False).run_columns(LIMIT)
        store.put(self.key(), trace)
        assert store.get(self.key()) is trace

    def test_memory_bound_evicts_lru(self):
        store = TraceStore(disk_dir=False, max_memory_traces=2)
        trace = build_interpreter("swim", hinted=False).run_columns(LIMIT)
        keys = [TraceKey("swim", 1.0, 12345, n, 64, None) for n in (1, 2, 3)]
        for k in keys:
            store.put(k, trace)
        assert store.get(keys[0]) is None
        assert store.get(keys[2]) is trace


class TestFastSlowEquivalence:
    """The tentpole's non-negotiable: optimizations preserve semantics."""

    WORKLOADS = ("mcf", "swim", "vpr")  # vpr exercises indirect directives

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_run_result_byte_identical(self, workload, scheme):
        spec = RunSpec.create(workload, scheme, limit_refs=LIMIT)
        fast = execute(spec).to_dict()
        slow = execute(spec, reference=True).to_dict()
        assert json.dumps(fast, sort_keys=True) \
            == json.dumps(slow, sort_keys=True)


class TestAdaptiveFastSlowEquivalence:
    """Same contract under the feedback loop, with epochs actually firing.

    The generic sweep above already covers the adaptive schemes at the
    default epoch length (where few epochs fit in LIMIT references);
    this class shrinks the epoch so the policy makes many decisions —
    knob changes and all — and the two paths must still agree byte for
    byte.
    """

    @pytest.mark.parametrize("scheme", ["srp-adaptive", "grp-adaptive"])
    @pytest.mark.parametrize("workload", ("mcf", "swim", "vpr"))
    def test_byte_identical_with_active_epochs(self, workload, scheme):
        config = MachineConfig.scaled(adapt_epoch_accesses=128)
        spec = RunSpec.create(workload, scheme, config=config,
                              limit_refs=LIMIT)
        fast = execute(spec)
        slow = execute(spec, reference=True)
        assert fast.adapt["epochs"] >= 8  # the loop genuinely ran
        assert json.dumps(fast.to_dict(), sort_keys=True) \
            == json.dumps(slow.to_dict(), sort_keys=True)
