"""Tests for the (optional) data TLB."""

import pytest

from repro.mem.hierarchy import Hierarchy
from repro.mem.space import AddressSpace
from repro.mem.tlb import TLB
from repro.sim.config import MachineConfig
from repro.sim.runner import run_workload


class TestTLBUnit:
    def test_first_touch_misses_then_hits(self):
        tlb = TLB(entries=8, assoc=4, page_size=4096, miss_latency=25)
        assert tlb.lookup(0x1000) == 25
        assert tlb.lookup(0x1FF8) == 0  # same page
        assert tlb.lookup(0x2000) == 25  # next page

    def test_lru_within_set(self):
        tlb = TLB(entries=2, assoc=2, page_size=4096, miss_latency=10)
        tlb.lookup(0x0000)
        tlb.lookup(0x1000)
        tlb.lookup(0x0000)  # refresh page 0
        tlb.lookup(0x2000)  # evicts page 1 (LRU)
        assert tlb.lookup(0x0000) == 0
        assert tlb.lookup(0x1000) == 10

    def test_miss_rate(self):
        tlb = TLB(entries=8, assoc=4, page_size=4096)
        tlb.lookup(0x0)
        tlb.lookup(0x8)
        assert tlb.miss_rate == pytest.approx(0.5)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            TLB(entries=7, assoc=4)
        with pytest.raises(ValueError):
            TLB(page_size=3000)


class TestTLBInHierarchy:
    def test_disabled_by_default(self):
        config = MachineConfig.scaled()
        hier = Hierarchy(config, AddressSpace())
        assert hier.tlb is None

    def test_enabled_adds_walk_latency(self):
        config = MachineConfig.tiny(tlb_entries=8, tlb_miss_latency=40)
        space = AddressSpace()
        hier = Hierarchy(config, space)
        addr = space.malloc(64)
        hier.access(addr, now=0)  # cold: TLB miss + cache miss
        assert hier.tlb.misses == 1
        # A warm access to the same page and block is only the walk-free
        # L1 hit.
        t = hier.access(addr, now=10_000)
        assert t == 10_000 + config.l1_latency

    def test_end_to_end_with_tlb(self):
        config = MachineConfig.scaled(tlb_entries=32)
        with_tlb = run_workload("twolf", "none", config=config,
                                limit_refs=5000)
        without = run_workload("twolf", "none", limit_refs=5000)
        # Page walks only ever add cycles.
        assert with_tlb.cycles >= without.cycles
