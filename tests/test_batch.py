"""Tests for the RunSpec → engine → RunResult pipeline: batch runner
determinism (parallel == serial), serialization round-trips, and the
persistent result cache."""

import json

import pytest

from repro.sim.batch import resolve_jobs, run_batch
from repro.sim.cache import ResultCache
from repro.sim.config import MachineConfig
from repro.sim.runner import execute, run_workload
from repro.sim.spec import RunSpec, config_from_dict, config_to_dict
from repro.sim.stats import SimStats

REFS = 2500

SPECS = [
    RunSpec.create("vpr", "none", limit_refs=REFS),
    RunSpec.create("vpr", "grp", limit_refs=REFS),
    RunSpec.create("swim", "stride", limit_refs=REFS),
    RunSpec.create("mcf", "srp", limit_refs=REFS),
    RunSpec.create("vpr", "none", mode="perfect_l2", limit_refs=REFS),
]


class TestRunSpec:
    def test_frozen_and_hashable(self):
        spec = RunSpec.create("vpr", "grp", limit_refs=REFS)
        assert spec == RunSpec.create("vpr", "grp", limit_refs=REFS)
        assert len({spec, RunSpec.create("vpr", "grp", limit_refs=REFS)}) == 1
        with pytest.raises(AttributeError):
            spec.workload = "swim"

    def test_dict_round_trip(self):
        for spec in SPECS:
            assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        for spec in SPECS:
            data = json.loads(json.dumps(spec.to_dict()))
            assert RunSpec.from_dict(data) == spec

    def test_digest_content_keyed(self):
        a = RunSpec.create("vpr", "grp", limit_refs=REFS)
        b = RunSpec.create("vpr", "grp", limit_refs=REFS)
        assert a.digest() == b.digest()
        assert a.digest("v1") != a.digest("v2")
        assert a.digest() != RunSpec.create("vpr", "srp",
                                            limit_refs=REFS).digest()

    def test_config_distinguishes_specs(self):
        small = RunSpec.create("vpr", "none",
                               config=MachineConfig.scaled(l2_size=1 << 15))
        big = RunSpec.create("vpr", "none",
                             config=MachineConfig.scaled(l2_size=1 << 20))
        assert small != big
        assert small.digest() != big.digest()

    def test_machine_config_round_trip(self):
        config = MachineConfig.scaled(l1_assoc=4, mshr_entries=16)
        rebuilt = config_from_dict(config_to_dict(config))
        assert config_to_dict(rebuilt) == config_to_dict(config)
        spec = RunSpec.create("vpr", "none", config=config)
        assert config_to_dict(spec.machine_config()) == \
            config_to_dict(config)

    def test_unhinted_policy_canonicalized(self):
        # The compiler's policy only reaches hinted schemes; unhinted
        # specs collapse onto policy="default" so the matrix and cache
        # never duplicate a baseline run.
        a = RunSpec.create("vpr", "none", policy="aggressive")
        b = RunSpec.create("vpr", "none")
        assert a == b
        hinted = RunSpec.create("vpr", "grp", policy="aggressive")
        assert hinted.policy == "aggressive"

    def test_validation(self):
        with pytest.raises(KeyError):
            RunSpec.create("nonesuch", "none")
        with pytest.raises(KeyError):
            RunSpec.create("vpr", "bogus")


class TestResultSerialization:
    def test_cache_round_trip_is_lossless(self):
        # to_dict -> JSON -> from_dict must reproduce every field,
        # including the int-keyed region-size histogram Table 4 reads.
        stats = execute(RunSpec.create("vpr", "grp", limit_refs=REFS))
        data = json.loads(json.dumps(stats.to_dict()))
        rebuilt = SimStats.from_dict(data)
        assert rebuilt.to_dict() == stats.to_dict()
        assert rebuilt.ipc == stats.ipc
        assert rebuilt.l2_miss_rate == stats.l2_miss_rate
        assert rebuilt.summary() == stats.summary()
        histogram = rebuilt.prefetcher["region_size_histogram"]
        assert all(isinstance(k, int) for k in histogram)

    def test_derived_metrics_survive_round_trip(self):
        base = execute(RunSpec.create("vpr", "none", limit_refs=REFS))
        grp = execute(RunSpec.create("vpr", "grp", limit_refs=REFS))
        rebuilt = SimStats.from_dict(json.loads(json.dumps(grp.to_dict())))
        assert rebuilt.speedup_over(base) == grp.speedup_over(base)
        assert rebuilt.traffic_ratio_over(base) == \
            grp.traffic_ratio_over(base)


class TestBatchDeterminism:
    def test_parallel_equals_serial(self):
        serial = run_batch(SPECS, jobs=1)
        parallel = run_batch(SPECS, jobs=2)
        assert [s.to_dict() for s in serial] == \
            [p.to_dict() for p in parallel]

    def test_batch_matches_direct_execution(self):
        results = run_batch(SPECS, jobs=2)
        for spec, stats in zip(SPECS, results):
            assert stats.to_dict() == execute(spec).to_dict()

    def test_duplicates_resolve_identically(self):
        specs = [SPECS[0], SPECS[1], SPECS[0]]
        results = run_batch(specs, jobs=1)
        assert results[0].to_dict() == results[2].to_dict()

    def test_result_order_follows_spec_order(self):
        results = run_batch(SPECS, jobs=2)
        for spec, stats in zip(SPECS, results):
            assert stats.workload == spec.workload

    def test_progress_callback(self):
        seen = []
        run_batch(SPECS[:3], jobs=1,
                  progress=lambda d, t, s, c: seen.append((d, t, c)))
        assert seen == [(1, 3, False), (2, 3, False), (3, 3, False)]

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1


class TestPersistentCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = SPECS[0]
        assert cache.get(spec) is None
        stats = execute(spec)
        cache.put(spec, stats)
        assert cache.get(spec).to_dict() == stats.to_dict()
        assert len(cache) == 1

    def test_batch_reuses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_batch(SPECS, jobs=1, cache=cache)
        assert len(cache) == len(SPECS)
        flags = []
        second = run_batch(SPECS, jobs=1, cache=cache,
                           progress=lambda d, t, s, c: flags.append(c))
        assert all(flags), "second batch should be all cache hits"
        assert [a.to_dict() for a in first] == \
            [b.to_dict() for b in second]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = SPECS[0]
        cache.put(spec, execute(spec))
        cache.path_for(spec).write_text("{not json")
        assert cache.get(spec) is None

    def test_corrupt_entry_is_quarantined(self, tmp_path, caplog):
        cache = ResultCache(tmp_path)
        spec = SPECS[0]
        stats = execute(spec)
        cache.put(spec, stats)
        cache.path_for(spec).write_text('{"version": "x", "sta')
        with caplog.at_level("WARNING", logger="repro.sim.cache"):
            assert cache.get(spec) is None
        assert cache.quarantined == 1
        assert "quarantin" in caplog.text
        # The bad file moved aside (inspectable), not deleted...
        parked = tmp_path / "quarantine" / cache.path_for(spec).name
        assert parked.exists()
        # ...and no longer counts as, or shadows, a live entry.
        assert len(cache) == 0
        cache.put(spec, stats)
        assert cache.get(spec).to_dict() == stats.to_dict()

    def test_truncated_json_payload_is_quarantined(self, tmp_path):
        # Valid JSON but not a result payload ("stats" missing) — the
        # KeyError path must quarantine too, not propagate.
        cache = ResultCache(tmp_path)
        spec = SPECS[0]
        cache.put(spec, execute(spec))
        cache.path_for(spec).write_text('{"version": "repro-x"}')
        assert cache.get(spec) is None
        assert cache.quarantined == 1

    def test_quarantine_survives_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = SPECS[0]
        cache.put(spec, execute(spec))
        cache.path_for(spec).write_text("garbage")
        cache.get(spec)
        cache.put(spec, execute(spec))
        cache.clear()
        assert len(cache) == 0
        parked = tmp_path / "quarantine" / cache.path_for(spec).name
        assert parked.exists(), "clear() must not touch quarantined files"

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(SPECS[0], execute(SPECS[0]))
        cache.clear()
        assert len(cache) == 0
        assert cache.get(SPECS[0]) is None


def _hammer_cache(args):
    """Child-process body for the concurrency stress test: alternate
    put/get on one shared entry and report what the reads saw."""
    cache_dir, spec_data, stats_data, rounds = args
    from repro.sim.spec import spec_from_dict
    from repro.sim.stats import result_from_dict

    cache = ResultCache(cache_dir)
    spec = spec_from_dict(spec_data)
    stats = result_from_dict(stats_data)
    seen = []
    for _ in range(rounds):
        cache.put(spec, stats)
        got = cache.get(spec)
        seen.append(None if got is None else got.to_dict())
    return {"seen": seen, "quarantined": cache.quarantined}


class TestConcurrentCache:
    """Cross-process writer safety: atomic replace + the advisory lock.

    Many processes hammering one entry must never produce a torn read —
    every get() sees either a miss or one complete, correct payload,
    and nothing is ever spuriously quarantined."""

    def test_parallel_writers_never_tear(self, tmp_path):
        import multiprocessing

        spec = SPECS[0]
        stats = execute(spec)
        args = (str(tmp_path), spec.to_dict(), stats.to_dict(), 25)
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes=4) as pool:
            reports = pool.map(_hammer_cache, [args] * 4)
        expected = stats.to_dict()
        for report in reports:
            assert report["quarantined"] == 0
            assert all(seen == expected for seen in report["seen"])
        # The entry on disk is intact and nothing was quarantined.
        cache = ResultCache(tmp_path)
        assert cache.get(spec).to_dict() == expected
        assert not (tmp_path / "quarantine").exists()

    def test_file_lock_excludes_other_processes(self, tmp_path):
        """While one process holds the lock, another's non-blocking
        flock attempt must fail (POSIX only; elsewhere the lock is a
        documented no-op and this test self-skips)."""
        import subprocess
        import sys

        fcntl = pytest.importorskip("fcntl")
        from repro.sim.cache import LOCK_FILE, FileLock

        lock = FileLock(tmp_path / LOCK_FILE)
        probe = (
            "import fcntl, sys\n"
            "handle = open(sys.argv[1], 'a+')\n"
            "try:\n"
            "    fcntl.flock(handle.fileno(),"
            " fcntl.LOCK_EX | fcntl.LOCK_NB)\n"
            "except OSError:\n"
            "    print('LOCKED')\n"
            "else:\n"
            "    print('ACQUIRED')\n"
        )
        with lock:
            out = subprocess.run(
                [sys.executable, "-c", probe, str(tmp_path / LOCK_FILE)],
                capture_output=True, text=True)
        assert out.stdout.strip() == "LOCKED"
        # ...and released afterwards:
        out = subprocess.run(
            [sys.executable, "-c", probe, str(tmp_path / LOCK_FILE)],
            capture_output=True, text=True)
        assert out.stdout.strip() == "ACQUIRED"

    def test_file_lock_is_reentrant(self, tmp_path):
        from repro.sim.cache import LOCK_FILE, FileLock

        lock = FileLock(tmp_path / LOCK_FILE)
        with lock:
            with lock:
                pass
        # Fully released: a fresh acquire works immediately.
        with lock:
            pass

    def test_quarantine_rechecks_under_lock(self, tmp_path):
        """A healthy entry is never quarantined: the corrupt-path
        re-parse inside the lock sees a concurrent writer's fresh
        bytes and returns them as a hit."""
        cache = ResultCache(tmp_path)
        spec = SPECS[0]
        stats = execute(spec)
        cache.put(spec, stats)
        # Simulate "corrupt at first read, healed before the lock":
        # _quarantine itself re-reads, so calling it against a healthy
        # file must return the result and move nothing.
        result = cache._quarantine(cache.path_for(spec),
                                   ValueError("simulated torn read"))
        assert result is not None and result.to_dict() == stats.to_dict()
        assert cache.quarantined == 0
        assert not (tmp_path / "quarantine").exists()
        assert cache.get(spec).to_dict() == stats.to_dict()
