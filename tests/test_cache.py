"""Unit tests for the set-associative cache and its prefetch policy."""

import pytest

from repro.mem.cache import Cache


def make_cache(size=1024, assoc=4, block=64, latency=3):
    return Cache("test", size, assoc, block, latency)


class TestGeometry:
    def test_set_count(self):
        cache = make_cache(1024, 4, 64)
        assert cache.num_sets == 4

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache("bad", 1000, 4, 64, 1)
        with pytest.raises(ValueError):
            Cache("bad", 1024, 4, 60, 1)


class TestBasicHitMiss:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access(0x1000)
        cache.fill(0x1000)
        assert cache.access(0x1000)

    def test_same_block_different_offsets_hit(self):
        cache = make_cache()
        cache.fill(0x1000)
        assert cache.access(0x103F)

    def test_adjacent_block_misses(self):
        cache = make_cache()
        cache.fill(0x1000)
        assert not cache.access(0x1040)

    def test_stats_counters(self):
        cache = make_cache()
        cache.access(0x1000)
        cache.fill(0x1000)
        cache.access(0x1000)
        assert cache.stats.demand_accesses == 2
        assert cache.stats.demand_misses == 1
        assert cache.stats.demand_hits == 1
        assert cache.stats.miss_rate == pytest.approx(0.5)


class TestLRUReplacement:
    def test_lru_victim_selected(self):
        cache = make_cache(1024, 4, 64)  # 4 sets; same-set stride = 256
        blocks = [0x0, 0x100, 0x200, 0x300, 0x400]  # all map to set 0
        for b in blocks[:4]:
            cache.fill(b)
        cache.access(blocks[0])  # make block 0 MRU
        cache.fill(blocks[4])  # evicts LRU = blocks[1]
        assert cache.contains(blocks[0])
        assert not cache.contains(blocks[1])

    def test_capacity_respected(self):
        cache = make_cache(1024, 4, 64)
        for k in range(64):
            cache.fill(k * 64)
        assert len(cache) <= 16  # 1024/64 lines total


class TestPrefetchPlacement:
    def test_prefetch_inserted_at_lru(self):
        cache = make_cache(1024, 4, 64)
        demand = [0x0, 0x100, 0x200]
        for b in demand:
            cache.fill(b)
        cache.fill(0x300, prefetched=True)  # goes to LRU position
        cache.fill(0x400)  # demand fill evicts the LRU = the prefetch
        assert not cache.contains(0x300)
        for b in demand:
            assert cache.contains(b)

    def test_referenced_prefetch_promotes_to_mru(self):
        cache = make_cache(1024, 4, 64)
        cache.fill(0x300, prefetched=True)
        cache.access(0x300)  # promote
        for b in (0x0, 0x100, 0x200, 0x400):
            cache.fill(b)
        # Three demand fills + one more: the promoted prefetch survives
        # longer than LRU insertion would allow.
        assert cache.contains(0x300) or cache.stats.useful_prefetches == 1

    def test_useful_prefetch_counted_once(self):
        cache = make_cache()
        cache.fill(0x1000, prefetched=True)
        cache.access(0x1000)
        cache.access(0x1000)
        assert cache.stats.useful_prefetches == 1

    def test_useless_evicted_prefetch_counted(self):
        cache = make_cache(1024, 4, 64)
        cache.fill(0x300, prefetched=True)
        for b in (0x0, 0x100, 0x200, 0x400):
            cache.fill(b)
        assert cache.stats.useless_evicted_prefetches == 1

    def test_redundant_prefetch_squashed(self):
        cache = make_cache()
        cache.fill(0x1000)
        cache.fill(0x1000, prefetched=True)
        assert cache.stats.prefetch_fills == 0
        assert cache.stats.prefetch_hits_squashed == 1

    def test_integer_depth_inserts_mid_stack(self):
        # Depth 2 in a 4-way set: two lines stay below the prefetch, so
        # it outlives LRU insertion by exactly two demand evictions.
        cache = Cache("test", 1024, 4, 64, 3, prefetch_insert=2)
        for b in (0x0, 0x100, 0x200):
            cache.fill(b)
        cache.fill(0x300, prefetched=True)
        cache.fill(0x400)  # evicts the true LRU (0x0), not the prefetch
        assert cache.contains(0x300)
        assert not cache.contains(0x0)
        cache.fill(0x500)  # prefetch is now the LRU...
        assert cache.contains(0x300)
        cache.fill(0x600)  # ...and the third eviction removes it
        assert not cache.contains(0x300)

    def test_depth_zero_matches_lru_alias(self):
        for insert in (0, "lru"):
            cache = Cache("test", 1024, 4, 64, 3,
                          prefetch_insert=insert)
            assert cache.prefetch_insert_depth == 0
            for b in (0x0, 0x100, 0x200):
                cache.fill(b)
            cache.fill(0x300, prefetched=True)
            cache.fill(0x400)
            assert not cache.contains(0x300)

    def test_mru_alias_maps_to_assoc_depth(self):
        cache = Cache("test", 1024, 4, 64, 3, prefetch_insert="mru")
        assert cache.prefetch_insert_depth == cache.assoc
        for b in (0x0, 0x100, 0x200):
            cache.fill(b)
        cache.fill(0x300, prefetched=True)
        cache.fill(0x400)  # MRU-inserted prefetch survives; 0x0 goes
        assert cache.contains(0x300)
        assert not cache.contains(0x0)

    def test_invalid_prefetch_insert_rejected(self):
        for bad in ("middle", -1, True, 1.5, None):
            with pytest.raises(ValueError):
                Cache("bad", 1024, 4, 64, 3, prefetch_insert=bad)

    def test_set_prefetch_insert_live_change(self):
        cache = make_cache(1024, 4, 64)
        assert cache.prefetch_insert_depth == 0
        cache.set_prefetch_insert(2)
        assert cache.prefetch_insert_depth == 2
        assert cache.prefetch_insert == 2
        cache.set_prefetch_insert("mru")
        assert cache.prefetch_insert_depth == cache.assoc
        with pytest.raises(ValueError):
            cache.set_prefetch_insert(-3)

    def test_pollution_bounded_to_one_way(self):
        """Back-to-back prefetches to one set displace at most one way."""
        cache = make_cache(1024, 4, 64)
        demand = [0x0, 0x100, 0x200]
        for b in demand:
            cache.fill(b)
            cache.access(b)
        for k in range(3, 20):
            cache.fill(k * 0x100, prefetched=True)
        # All three demand blocks survived the prefetch storm.
        for b in demand:
            assert cache.contains(b)


class TestWriteback:
    def test_dirty_eviction_returns_victim(self):
        cache = make_cache(1024, 4, 64)
        cache.fill(0x0, is_store=True)
        for b in (0x100, 0x200, 0x300):
            cache.fill(b)
        victim = cache.fill(0x400)
        assert victim == 0x0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_returns_none(self):
        cache = make_cache(1024, 4, 64)
        for b in (0x0, 0x100, 0x200, 0x300):
            cache.fill(b)
        assert cache.fill(0x400) is None

    def test_store_hit_marks_dirty(self):
        cache = make_cache(1024, 4, 64)
        cache.fill(0x0)
        cache.access(0x0, is_store=True)
        for b in (0x100, 0x200, 0x300, 0x400):
            cache.fill(b)
        assert cache.stats.writebacks == 1


class TestInvalidate:
    def test_invalidate_removes_block(self):
        cache = make_cache()
        cache.fill(0x1000)
        assert cache.invalidate(0x1000)
        assert not cache.contains(0x1000)

    def test_invalidate_absent_returns_false(self):
        cache = make_cache()
        assert not cache.invalidate(0x1000)


class TestPrefetchAccuracy:
    def prime(self):
        """Three prefetch fills: one referenced, one evicted untouched,
        one still resident and untouched."""
        cache = make_cache(1024, 4, 64)  # 4 sets; same-set stride = 256
        cache.fill(0x000, prefetched=True)
        cache.fill(0x040, prefetched=True)
        cache.fill(0x080, prefetched=True)
        cache.access(0x000)  # useful
        for b in (0x140, 0x240, 0x340, 0x440):  # evict 0x040's whole set
            cache.fill(b)
        assert cache.stats.useful_prefetches == 1
        assert cache.stats.useless_evicted_prefetches == 1
        return cache

    def test_mid_run_reading_ignores_stragglers(self):
        cache = self.prime()
        # Decided prefetches only: 1 useful of 2 decided.
        assert cache.stats.prefetch_accuracy() == pytest.approx(0.5)

    def test_resident_unreferenced_folds_into_denominator(self):
        cache = self.prime()
        stragglers = cache.resident_unreferenced_prefetches()
        assert stragglers == 1
        assert cache.stats.prefetch_accuracy(
            resident_unreferenced=stragglers) == pytest.approx(1 / 3)

    def test_end_of_run_denominator_equals_fills(self):
        cache = self.prime()
        stats = cache.stats
        decided = stats.useful_prefetches + stats.useless_evicted_prefetches
        assert decided + cache.resident_unreferenced_prefetches() \
            == stats.prefetch_fills

    def test_no_prefetches_reads_zero(self):
        cache = make_cache()
        assert cache.stats.prefetch_accuracy() == 0.0
        assert cache.stats.prefetch_accuracy(resident_unreferenced=0) == 0.0
