"""Unit tests for the IR interpreter / trace generator."""

import pytest

from repro.compiler.driver import compile_hints
from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Compute,
    ForLoop,
    HeapRowRef,
    IndexLoad,
    Opaque,
    PointerVar,
    Program,
    PtrAssignFromArray,
    PtrChase,
    PtrLoop,
    PtrRef,
    PtrSelect,
    Runtime,
    Sym,
    Var,
    WhileLoop,
)
from repro.compiler.symbols import StructDecl
from repro.mem.space import AddressSpace
from repro.trace.events import IndirectPrefetch, LoopBound, MemRef, Ops
from repro.trace.interp import Interpreter
from repro.workloads.common import (
    build_linked_list,
    build_pointer_rows,
    materialize,
    store_index_array,
)


def refs_of(events):
    return [e for e in events if isinstance(e, MemRef)]


def run_program(program, space, **kw):
    limit = kw.pop("limit", None)
    interp = Interpreter(program, space, **kw)
    return interp, list(interp.run(limit=limit))


class TestArrayAddressing:
    def test_1d_sequential(self):
        space = AddressSpace()
        a = ArrayDecl("a", 8, [16], storage="heap")
        materialize(space, a)
        i = Var("i")
        program = Program("p", [ForLoop(i, 0, 4, [ArrayRef(a, [Affine.of(i)])])])
        _, events = run_program(program, space)
        addrs = [e.addr for e in refs_of(events)]
        assert addrs == [a.base + 8 * k for k in range(4)]

    def test_row_major_2d(self):
        space = AddressSpace()
        a = ArrayDecl("a", 8, [4, 8], layout="row", storage="heap")
        materialize(space, a)
        i, j = Var("i"), Var("j")
        ref = ArrayRef(a, [Affine.of(i), Affine.of(j)])
        program = Program("p", [
            ForLoop(i, 0, 2, [ForLoop(j, 0, 2, [ref])]),
        ])
        _, events = run_program(program, space)
        addrs = [e.addr for e in refs_of(events)]
        # row-major: a[i][j] at base + (i*8 + j)*8
        assert addrs == [a.base, a.base + 8, a.base + 64, a.base + 72]

    def test_col_major_2d(self):
        space = AddressSpace()
        a = ArrayDecl("a", 8, [4, 8], layout="col", storage="heap")
        materialize(space, a)
        i, j = Var("i"), Var("j")
        ref = ArrayRef(a, [Affine.of(i), Affine.of(j)])
        program = Program("p", [
            ForLoop(j, 0, 2, [ForLoop(i, 0, 2, [ref])]),
        ])
        _, events = run_program(program, space)
        addrs = [e.addr for e in refs_of(events)]
        # col-major: a[i][j] at base + (j*4 + i)*8
        assert addrs == [a.base, a.base + 8, a.base + 32, a.base + 40]

    def test_symbolic_dims_resolved_from_bindings(self):
        space = AddressSpace()
        a = ArrayDecl("a", 8, [Sym("n")], storage="heap")
        a.base = space.malloc(8 * 100)
        i = Var("i")
        program = Program(
            "p", [ForLoop(i, 0, 3, [ArrayRef(a, [Affine.of(i)])])],
            bindings={"n": 100},
        )
        _, events = run_program(program, space)
        assert len(refs_of(events)) == 3

    def test_unmaterialized_array_raises(self):
        space = AddressSpace()
        a = ArrayDecl("a", 8, [16], storage="heap")
        i = Var("i")
        program = Program("p", [ForLoop(i, 0, 1, [ArrayRef(a, [Affine.of(i)])])])
        interp = Interpreter(program, space)
        with pytest.raises(RuntimeError):
            list(interp.run())

    def test_store_flag_propagates(self):
        space = AddressSpace()
        a = ArrayDecl("a", 8, [16], storage="heap")
        materialize(space, a)
        i = Var("i")
        ref = ArrayRef(a, [Affine.of(i)], is_store=True)
        program = Program("p", [ForLoop(i, 0, 1, [ref])])
        _, events = run_program(program, space)
        assert refs_of(events)[0].is_store


class TestLoops:
    def test_trace_limit_stops_cleanly(self):
        space = AddressSpace()
        a = ArrayDecl("a", 8, [1 << 14], storage="heap")
        materialize(space, a)
        i = Var("i")
        program = Program("p", [
            ForLoop(i, 0, 1 << 14, [ArrayRef(a, [Affine.of(i)])]),
        ])
        _, events = run_program(program, space, limit=10)
        assert len(refs_of(events)) == 10

    def test_negative_step_loop(self):
        space = AddressSpace()
        a = ArrayDecl("a", 8, [16], storage="heap")
        materialize(space, a)
        i = Var("i")
        program = Program("p", [
            ForLoop(i, 3, -1, [ArrayRef(a, [Affine.of(i)])], step=-1),
        ])
        _, events = run_program(program, space)
        addrs = [e.addr for e in refs_of(events)]
        assert addrs == [a.base + 8 * k for k in (3, 2, 1, 0)]

    def test_ops_events_batch_compute(self):
        space = AddressSpace()
        a = ArrayDecl("a", 8, [16], storage="heap")
        materialize(space, a)
        i = Var("i")
        program = Program("p", [
            ForLoop(i, 0, 2, [Compute(10), ArrayRef(a, [Affine.of(i)])]),
        ])
        _, events = run_program(program, space)
        ops = [e for e in events if isinstance(e, Ops)]
        # loop overhead + compute + address op, flushed before each ref
        assert all(o.count > 0 for o in ops)
        assert sum(o.count for o in ops) >= 20

    def test_while_loop_uses_binding(self):
        space = AddressSpace()
        a = ArrayDecl("a", 8, [16], storage="heap")
        materialize(space, a)
        program = Program(
            "p", [WhileLoop(Sym("n"), [ArrayRef(a, [Affine.constant(0)])])],
            bindings={"n": 5},
        )
        _, events = run_program(program, space)
        assert len(refs_of(events)) == 5


class TestPointerTraversal:
    def make_list(self, space, count=8, layout="sequential"):
        t = StructDecl("t")
        t.add_scalar("val", 8)
        t.add_pointer("next", target="t")
        head = build_linked_list(space, t, count, layout=layout)
        return t, head

    def test_chase_follows_stored_pointers(self):
        space = AddressSpace()
        t, head = self.make_list(space)
        a = PointerVar("a", struct="t")
        program = Program("p", [
            WhileLoop(3, [PtrChase(a, t.field("next"))]),
        ])
        interp = Interpreter(program, space)
        interp.bind_pointer("a", head)
        events = list(interp.run())
        addrs = [e.addr for e in refs_of(events)]
        offset = t.field("next").offset
        assert addrs[0] == head + offset
        # Each subsequent chase reads the next node's field.
        node1 = space.load_word(head + offset)
        assert addrs[1] == node1 + offset

    def test_null_restarts_traversal(self):
        space = AddressSpace()
        t, head = self.make_list(space, count=2)
        a = PointerVar("a", struct="t")
        program = Program("p", [
            WhileLoop(4, [PtrChase(a, t.field("next"))]),
        ])
        interp = Interpreter(program, space)
        interp.bind_pointer("a", head)
        events = list(interp.run())
        addrs = [e.addr for e in refs_of(events)]
        # 2-node list: after reaching the null tail the walk restarts.
        assert addrs[2] == addrs[0]

    def test_ptr_loop_advances_and_reenters(self):
        space = AddressSpace()
        base = space.malloc(1024)
        p = PointerVar("p")
        t = Var("t")
        program = Program("p", [
            ForLoop(t, 0, 2, [
                PtrLoop(p, 4, 16, [PtrRef(p, size=8)]),
            ]),
        ])
        interp = Interpreter(program, space)
        interp.bind_pointer("p", base)
        events = list(interp.run())
        addrs = [e.addr for e in refs_of(events)]
        expected = [base + 16 * k for k in range(4)]
        assert addrs == expected * 2  # loop re-entry resets the pointer

    def test_unbound_pointer_raises(self):
        space = AddressSpace()
        p = PointerVar("p")
        program = Program("p", [PtrLoop(p, 2, 8, [PtrRef(p)])])
        interp = Interpreter(program, space)
        with pytest.raises(KeyError):
            list(interp.run())

    def test_ptr_select_deterministic_with_seed(self):
        space = AddressSpace()
        node = StructDecl("node")
        left = node.add_pointer("left", target="node")
        right = node.add_pointer("right", target="node")
        from repro.workloads.common import build_binary_tree
        root = build_binary_tree(space, node, 31)
        a = PointerVar("a", struct="node")
        program = Program("p", [WhileLoop(8, [PtrSelect(a, [left, right])])])
        runs = []
        for _ in range(2):
            interp = Interpreter(program, space, seed=7)
            interp.bind_pointer("a", root)
            runs.append([e.addr for e in refs_of(list(interp.run()))])
        assert runs[0] == runs[1]


class TestHeapRows:
    def test_row_then_element(self):
        space = AddressSpace()
        buf = ArrayDecl("buf", 8, [4], storage="heap", is_pointer=True)
        rows = build_pointer_rows(space, buf, 4, 256)
        i, j = Var("i"), Var("j")
        ref = HeapRowRef(buf, Affine.of(i), Affine.of(j), 8)
        program = Program("p", [
            ForLoop(i, 0, 2, [ForLoop(j, 0, 2, [ref])]),
        ])
        _, events = run_program(program, space)
        addrs = [e.addr for e in refs_of(events)]
        assert addrs[0] == buf.base  # row pointer load buf[0]
        assert addrs[1] == rows[0]  # element [0][0]
        assert addrs[3] == rows[0] + 8  # element [0][1]
        assert addrs[5] == rows[1]  # element [1][0]


class TestIndirectDirectives:
    def make(self):
        space = AddressSpace()
        a = ArrayDecl("a", 8, [4096], storage="heap")
        b = ArrayDecl("b", 4, [256], storage="heap")
        materialize(space, a)
        materialize(space, b)
        store_index_array(space, b, list(range(256)))
        i = Var("i")
        load = IndexLoad(b, Affine.of(i))
        program = Program("p", [
            ForLoop(i, 0, 64, [ArrayRef(a, [load])]),
        ])
        return space, program, a, b

    def test_directives_once_per_index_block(self):
        space, program, a, b = self.make()
        result = compile_hints(program, l2_size=1 << 17, block_size=64)
        interp = Interpreter(program, space, compile_result=result)
        events = list(interp.run())
        directives = [e for e in events if isinstance(e, IndirectPrefetch)]
        # 64 4-byte indices = 4 blocks of the index array.
        assert len(directives) == 4
        assert directives[0].base_addr == a.base
        assert directives[0].elem_size == 8
        assert directives[0].index_addr == b.base

    def test_no_directives_without_compile_result(self):
        space, program, a, b = self.make()
        interp = Interpreter(program, space)
        events = list(interp.run())
        assert not [e for e in events if isinstance(e, IndirectPrefetch)]

    def test_index_values_feed_target_address(self):
        space, program, a, b = self.make()
        _, events = run_program(program, space)
        refs = refs_of(events)
        # Events alternate: b[i] load then a[b[i]] access.
        assert refs[0].addr == b.base
        assert refs[1].addr == a.base  # b[0] = 0


class TestLoopBoundDirectives:
    def test_bound_emitted_for_marked_loops(self):
        space = AddressSpace()
        a = ArrayDecl("a", 8, [4096], storage="heap")
        materialize(space, a)
        i = Var("i")
        program = Program("p", [
            ForLoop(i, 0, 64, [ArrayRef(a, [Affine.of(i)])]),
        ])
        result = compile_hints(program, l2_size=1 << 17, block_size=64)
        interp = Interpreter(program, space, compile_result=result)
        events = list(interp.run())
        bounds = [e for e in events if isinstance(e, LoopBound)]
        assert len(bounds) == 1
        assert bounds[0].bound == 64


class TestRuntimeConst:
    def test_runtime_base_constant_within_call(self):
        space = AddressSpace()
        a = ArrayDecl("a", 8, [1 << 14], storage="heap")
        materialize(space, a)
        i, s = Var("i"), Var("s")
        picks = {}

        def base(env, r):
            key = env["s"]
            if key not in picks:
                picks[key] = r.randrange(100) * 64
            return picks[key]

        ref = ArrayRef(a, [Affine({i: 1}, Runtime(base))])
        program = Program("p", [
            ForLoop(s, 0, 3, [ForLoop(i, 0, 4, [ref])], scope_boundary=True),
        ])
        _, events = run_program(program, space)
        addrs = [e.addr for e in refs_of(events)]
        for call in range(3):
            chunk = addrs[call * 4:(call + 1) * 4]
            assert chunk == [chunk[0] + 8 * k for k in range(4)]


class TestDeterminism:
    def test_same_seed_same_trace(self):
        from repro.workloads import get_workload
        traces = []
        for _ in range(2):
            space = AddressSpace()
            built = get_workload("twolf").build(space)
            interp = Interpreter(built.program, space, seed=99)
            for name, addr in built.pointer_bindings.items():
                interp.bind_pointer(name, addr)
            traces.append([
                (e.ref_id, e.addr) for e in interp.run(limit=500)
                if isinstance(e, MemRef)
            ])
        assert traces[0] == traces[1]
