"""Unit tests for the simulated address space."""

import pytest

from repro.mem.space import POINTER_SIZE, AddressSpace, OutOfMemoryError


class TestMalloc:
    def test_returns_heap_addresses(self):
        space = AddressSpace()
        addr = space.malloc(100)
        assert space.heap.contains(addr)

    def test_allocations_do_not_overlap(self):
        space = AddressSpace()
        a = space.malloc(100)
        b = space.malloc(100)
        assert b >= a + 100

    def test_alignment(self):
        space = AddressSpace()
        for align in (8, 16, 64, 4096):
            addr = space.malloc(10, align=align)
            assert addr % align == 0

    def test_rejects_bad_sizes(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.malloc(0)
        with pytest.raises(ValueError):
            space.malloc(-5)

    def test_rejects_non_power_alignment(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.malloc(8, align=24)

    def test_heap_exhaustion(self):
        space = AddressSpace(heap_size=1024)
        space.malloc(512)
        with pytest.raises(OutOfMemoryError):
            space.malloc(1024)

    def test_heap_used_tracks_brk(self):
        space = AddressSpace()
        before = space.heap_used
        space.malloc(256, align=8)
        assert space.heap_used >= before + 256


class TestStaticAlloc:
    def test_static_addresses_are_not_heap(self):
        space = AddressSpace()
        addr = space.static_alloc(64)
        assert space.static.contains(addr)
        assert not space.is_heap_address(addr)


class TestHeapBoundsCheck:
    def test_allocated_heap_passes(self):
        space = AddressSpace()
        addr = space.malloc(64)
        assert space.is_heap_address(addr)
        assert space.is_heap_address(addr + 63)

    def test_beyond_brk_fails(self):
        space = AddressSpace()
        space.malloc(64)
        # Far beyond the current break: garbage values must not pass.
        assert not space.is_heap_address(space.heap.start + (1 << 29))

    def test_non_heap_values_fail(self):
        space = AddressSpace()
        space.malloc(64)
        assert not space.is_heap_address(0)
        assert not space.is_heap_address(42)
        assert not space.is_heap_address(space.stack.start)


class TestWordStore:
    def test_roundtrip(self):
        space = AddressSpace()
        addr = space.malloc(64)
        space.store_word(addr, 0xDEADBEEF)
        assert space.load_word(addr) == 0xDEADBEEF

    def test_missing_word_is_none(self):
        space = AddressSpace()
        assert space.load_word(space.heap.start) is None

    def test_unaligned_store_rejected(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.store_word(space.heap.start + 4, 1, size=8)


class TestPointerScan:
    def test_finds_heap_pointers_in_block(self):
        space = AddressSpace()
        target = space.malloc(64)
        block = space.malloc(64, align=64)
        space.store_word(block + 16, target)
        found = space.scan_pointers(block, 64)
        assert found == [target]

    def test_ignores_non_heap_values(self):
        space = AddressSpace()
        block = space.malloc(64, align=64)
        space.store_word(block, 12345)  # not a heap address
        assert space.scan_pointers(block, 64) == []

    def test_ignores_small_sized_words(self):
        space = AddressSpace()
        target = space.malloc(64)
        block = space.malloc(64, align=64)
        space.store_word(block, target & 0xFFFFFFFF, size=4)
        assert space.scan_pointers(block, 64) == []

    def test_deduplicates_targets(self):
        space = AddressSpace()
        target = space.malloc(64)
        block = space.malloc(64, align=64)
        space.store_word(block, target)
        space.store_word(block + 8, target)
        assert space.scan_pointers(block, 64) == [target]

    def test_scans_all_eight_slots(self):
        space = AddressSpace()
        targets = [space.malloc(16) for _ in range(8)]
        block = space.malloc(64, align=64)
        for k, tgt in enumerate(targets):
            space.store_word(block + 8 * k, tgt)
        assert space.scan_pointers(block, 64) == targets


class TestIndexBlock:
    def test_reads_4byte_indices(self):
        space = AddressSpace()
        block = space.malloc(64, align=64)
        values = [7, 100, 3, 9]
        for k, v in enumerate(values):
            space.store_word(block + 4 * k, v, size=4)
        assert space.read_index_block(block, 64) == values

    def test_skips_unwritten_slots(self):
        space = AddressSpace()
        block = space.malloc(64, align=64)
        space.store_word(block + 8, 55, size=4)
        assert space.read_index_block(block, 64) == [55]
