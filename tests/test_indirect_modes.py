"""Tests for the two indirect-prefetch encodings (Section 3.3.3).

``instruction`` — the paper's primary design: one explicit prefetch
instruction per index-array block crossing.
``hintbit`` — the paper's sketched alternative: one base-setting
instruction before the loop plus an ``indirect`` hint bit on the
``b[i]`` loads, trading instruction overhead for a single concurrent
indirection array per base register.
"""

import pytest

from repro.compiler.driver import compile_hints
from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    ForLoop,
    IndexLoad,
    Program,
    Var,
)
from repro.mem.space import AddressSpace
from repro.sim.runner import run_workload
from repro.trace.events import IndirectPrefetch, SetIndirectBase
from repro.trace.interp import Interpreter
from repro.workloads.common import materialize, store_index_array


def make_program():
    space = AddressSpace()
    a = ArrayDecl("a", 8, [1 << 14], storage="heap")
    b = ArrayDecl("b", 4, [512], storage="heap")
    materialize(space, a)
    materialize(space, b)
    store_index_array(space, b, list(range(512)))
    i = Var("i")
    load = IndexLoad(b, Affine.of(i))
    program = Program("p", [ForLoop(i, 0, 256, [ArrayRef(a, [load])])])
    return space, program, load


class TestCompileModes:
    def test_instruction_mode_no_hint_bit(self):
        _, program, load = make_program()
        result = compile_hints(program, indirect_mode="instruction")
        hint = result.hint_table.get(load.ref_id)
        assert not (hint is not None and hint.indirect)
        assert not result.indirect_base_loops

    def test_hintbit_mode_marks_load_and_loop(self):
        _, program, load = make_program()
        result = compile_hints(program, indirect_mode="hintbit")
        hint = result.hint_table.get(load.ref_id)
        assert hint is not None and hint.indirect
        assert len(result.indirect_base_loops) == 1

    def test_bad_mode_rejected(self):
        _, program, _ = make_program()
        with pytest.raises(ValueError):
            compile_hints(program, indirect_mode="bogus")


class TestTraceModes:
    def test_instruction_mode_emits_per_block_directives(self):
        space, program, _ = make_program()
        result = compile_hints(program, indirect_mode="instruction")
        interp = Interpreter(program, space, compile_result=result)
        events = list(interp.run())
        assert [e for e in events if isinstance(e, IndirectPrefetch)]
        assert not [e for e in events if isinstance(e, SetIndirectBase)]

    def test_hintbit_mode_emits_one_base_directive(self):
        space, program, _ = make_program()
        result = compile_hints(program, indirect_mode="hintbit")
        interp = Interpreter(program, space, compile_result=result)
        events = list(interp.run())
        bases = [e for e in events if isinstance(e, SetIndirectBase)]
        assert len(bases) == 1
        assert not [e for e in events if isinstance(e, IndirectPrefetch)]

    def test_hintbit_has_lower_instruction_overhead(self):
        """The alternate encoding exists to cut software overhead."""
        space, program, _ = make_program()
        inst = compile_hints(program, indirect_mode="instruction")
        space2, program2, _ = make_program()
        bit = compile_hints(program2, indirect_mode="hintbit")
        n_inst = sum(
            1 for e in Interpreter(program, space,
                                   compile_result=inst).run()
            if isinstance(e, (IndirectPrefetch, SetIndirectBase))
        )
        n_bit = sum(
            1 for e in Interpreter(program2, space2,
                                   compile_result=bit).run()
            if isinstance(e, (IndirectPrefetch, SetIndirectBase))
        )
        assert n_bit < n_inst


class TestEndToEnd:
    def test_hintbit_scheme_runs_and_helps_bzip2(self):
        base = run_workload("bzip2", "none", limit_refs=10_000)
        alt = run_workload("bzip2", "grp-hintbit", limit_refs=10_000)
        assert alt.speedup_over(base) > 1.0

    def test_both_modes_cover_vpr(self):
        base = run_workload("vpr", "none", limit_refs=10_000)
        inst = run_workload("vpr", "grp", limit_refs=10_000)
        bit = run_workload("vpr", "grp-hintbit", limit_refs=10_000)
        assert inst.speedup_over(base) > 1.1
        assert bit.speedup_over(base) > 1.05
