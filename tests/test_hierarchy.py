"""Integration tests for the full memory hierarchy."""

import pytest

from repro.mem.hierarchy import Hierarchy
from repro.mem.space import AddressSpace
from repro.prefetch.srp import SRPPrefetcher
from repro.sim.config import MachineConfig


def make(prefetcher=None, mode="real", **cfg):
    config = MachineConfig.tiny(**cfg)
    space = AddressSpace()
    return Hierarchy(config, space, prefetcher, mode), space, config


class TestBasicPath:
    def test_l1_hit_is_fast(self):
        hier, space, config = make()
        addr = space.malloc(64)
        hier.access(addr, now=0)
        t2 = hier.access(addr, now=1000)
        assert t2 == 1000 + config.l1_latency

    def test_l2_hit_after_l1_eviction(self):
        hier, space, config = make()
        base = space.malloc(1 << 16)
        hier.access(base, now=0)
        # Thrash the L1 set (1KB, 2-way, 8 sets -> same-set stride 512B)
        # without evicting the L2 copy.
        hier.access(base + 512, now=1000)
        hier.access(base + 1024, now=2000)
        t = hier.access(base, now=10_000)
        assert t == 10_000 + config.l1_latency + config.l2_latency
        assert hier.dram.stats.demand_blocks == 3

    def test_l2_miss_goes_to_dram(self):
        hier, space, config = make()
        addr = space.malloc(64)
        t = hier.access(addr, now=0)
        assert t > config.l1_latency + config.l2_latency
        assert hier.dram.stats.demand_blocks == 1

    def test_store_writeback_traffic(self):
        hier, space, config = make()
        base = space.malloc(1 << 16, align=4096)
        # Dirty a block, then evict it from L2 with same-set fills
        # (L2 4KB 4-way 16 sets -> same-set stride 1KB).
        hier.access(base, now=0, is_store=True)
        for k in range(1, 8):
            hier.access(base + k * 4096, now=k * 10_000)
        assert hier.dram.stats.writeback_blocks >= 1

    def test_mshr_merge_on_same_block(self):
        hier, space, config = make()
        addr = space.malloc(64)
        t1 = hier.access(addr, now=0)
        # Second access to the same block before the fill completes: it
        # hits the L2 (the fill is installed optimistically) or merges.
        t2 = hier.access(addr + 8, now=1)
        assert t2 <= t1 + config.l2_latency + config.l1_latency


class TestPerfectModes:
    def test_perfect_l1_constant_latency(self):
        hier, space, config = make(mode="perfect_l1")
        for k in range(50):
            t = hier.access(0x100000 + k * 4096, now=k * 10)
            assert t == k * 10 + config.l1_latency
        assert hier.dram.stats.demand_blocks == 0

    def test_perfect_l2_uses_real_l1(self):
        hier, space, config = make(mode="perfect_l2")
        addr = space.malloc(64)
        t1 = hier.access(addr, now=0)
        assert t1 == config.l1_latency + config.l2_latency
        t2 = hier.access(addr, now=100)
        assert t2 == 100 + config.l1_latency
        assert hier.dram.stats.demand_blocks == 0

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            make(mode="bogus")


class TestPrefetchIntegration:
    def test_prefetches_tracked_in_traffic(self):
        hier, space, config = make(SRPPrefetcher())
        base = space.malloc(1 << 16, align=config.region_size)
        hier.access(base, now=0)
        hier.controller.drain(1_000_000)
        assert hier.traffic_bytes() > 2 * config.block_size

    def test_demand_priority_blocks_prefetch_during_misses(self):
        """While a demand miss is outstanding, no prefetch issues."""
        hier, space, config = make(SRPPrefetcher())
        base = space.malloc(1 << 20, align=config.region_size)
        # Back-to-back misses with tiny gaps: the demand-busy watermark
        # covers the whole stretch, so prefetch issue is locked out.
        now = 0.0
        for k in range(8):
            ready = hier.access(base + k * config.region_size, now=now)
            now = ready + 1  # re-miss immediately after data returns
        # Only the candidates issued into the 1-cycle gaps can exist.
        assert hier.dram.stats.prefetch_blocks <= 8

    def test_prefetch_issues_into_idle_gaps(self):
        hier, space, config = make(SRPPrefetcher())
        base = space.malloc(1 << 20, align=config.region_size)
        ready = hier.access(base, now=0)
        # A long idle stretch after the miss: the engine streams the rest
        # of the region.
        hier.access(base, now=ready + 100_000)
        assert hier.dram.stats.prefetch_blocks > 4

    def test_prefetch_accuracy_bounds(self):
        hier, space, config = make(SRPPrefetcher())
        base = space.malloc(1 << 18, align=config.region_size)
        now = 0.0
        for k in range(256):
            now = hier.access(base + k * 8, now=now) + 40
        assert 0.0 <= hier.prefetch_accuracy() <= 1.0

    def test_late_prefetch_waits_partial_latency(self):
        hier, space, config = make(SRPPrefetcher())
        base = space.malloc(1 << 16, align=config.region_size)
        ready = hier.access(base, now=0)
        # Touch the next block shortly after the miss returns: the
        # prefetch may be in flight -> completion between L2-hit latency
        # and a full miss.
        t = hier.access(base + config.block_size, now=ready + 5)
        full_miss = ready + 5 + 300
        assert t <= full_miss


class TestStatsConsistency:
    def test_traffic_equals_block_sum(self):
        hier, space, config = make(SRPPrefetcher())
        base = space.malloc(1 << 18)
        now = 0.0
        for k in range(300):
            now = hier.access(base + k * 32, now=now, is_store=(k % 3 == 0))
            now += 20
        hier.finish(now)
        stats = hier.dram.stats
        total = (stats.demand_blocks + stats.prefetch_blocks
                 + stats.writeback_blocks) * config.block_size
        assert hier.traffic_bytes() == total

    def test_monotonic_completion_times(self):
        hier, space, config = make(SRPPrefetcher())
        base = space.malloc(1 << 18)
        now = 0.0
        for k in range(200):
            ready = hier.access(base + k * 64, now=now)
            assert ready >= now
            now = ready + 1


class TestPruneReady:
    """The ready-time map prunes via its (ready, block) min-heap."""

    def prime(self, hier, entries):
        import heapq
        for block, ready in entries:
            hier._prefetch_ready[block] = ready
            heapq.heappush(hier._ready_heap, (ready, block))

    def test_prune_drops_only_landed_entries(self):
        hier, _, _ = make()
        self.prime(hier, [(0x40, 100.0), (0x80, 200.0), (0xC0, 300.0)])
        hier._prune_ready(200.0)
        assert hier._prefetch_ready == {0xC0: 300.0}

    def test_stale_heap_entries_are_skipped(self):
        hier, _, _ = make()
        self.prime(hier, [(0x40, 100.0)])
        # A re-prefetch of the same block superseded the first fill: the
        # dict holds the new ready time, the old heap entry is stale.
        self.prime(hier, [(0x40, 500.0)])
        hier._prune_ready(200.0)
        assert hier._prefetch_ready == {0x40: 500.0}

    def test_prune_after_demand_touch_is_safe(self):
        hier, _, _ = make()
        self.prime(hier, [(0x40, 100.0), (0x80, 400.0)])
        del hier._prefetch_ready[0x40]  # demand touch popped it
        hier._prune_ready(300.0)
        assert hier._prefetch_ready == {0x80: 400.0}

    def test_late_prefetch_hit_survives_prune(self):
        """Regression: pruning must not drop in-flight ready times, or a
        late prefetch hit would stop waiting for its data."""
        hier, space, config = make()
        base = space.malloc(1 << 12, align=4096)
        block = base & hier._block_mask
        hier.l2.fill_prefetch_block(block)
        self.prime(hier, [(block, 5000.0)])
        hier._prune_ready(100.0)
        assert hier._prefetch_ready == {block: 5000.0}
        t = hier.access(block, now=200.0)
        assert hier.stats.late_prefetch_hits == 1
        assert t == 5000.0
        # The touch popped the map; the stale heap entry stays benign.
        assert hier._prefetch_ready == {}
        hier._prune_ready(10_000.0)
        assert hier._ready_heap == []
