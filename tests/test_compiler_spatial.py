"""Compiler tests: spatial-locality analysis on the paper's code shapes.

Each test class encodes one of the paper's figures (3-5) or a policy case
from Section 5.4 as an IR program and checks the hints the passes produce.
"""

import pytest

from repro.compiler.driver import compile_hints
from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    ForLoop,
    HeapRowRef,
    Opaque,
    PointerVar,
    Program,
    PtrLoop,
    PtrRef,
    Sym,
    Var,
)

L2 = 128 * 1024
BLOCK = 64


def hints_of(program, **kw):
    params = dict(l2_size=L2, block_size=BLOCK)
    params.update(kw)
    return compile_hints(program, **params)


class TestFortranArray:
    """Figure 3: a(i,j) with i inner over a column-major array."""

    def make(self, layout="col", inner_is_spatial=True):
        a = ArrayDecl("a", 8, [100, 100], layout=layout)
        i, j = Var("i"), Var("j")
        if inner_is_spatial:
            subs = [Affine.of(i), Affine.of(j)]
        else:
            subs = [Affine.of(j), Affine.of(i)]
        ref = ArrayRef(a, subs)
        loop = ForLoop(j, 0, 100, [ForLoop(i, 0, 100, [ref])])
        return Program("fig3", [loop]), ref

    def test_column_major_inner_spatial_marked(self):
        program, ref = self.make()
        result = hints_of(program)
        hint = result.hint_table.get(ref.ref_id)
        assert hint is not None and hint.spatial

    def test_transposed_access_marked_via_outer_reuse(self):
        # a(j,i) with i inner: spatial reuse is carried by the outer j
        # loop; the reuse distance (100 elems * 8B per j iteration) is
        # far below L2, so the default policy still marks it.
        program, ref = self.make(inner_is_spatial=False)
        result = hints_of(program)
        hint = result.hint_table.get(ref.ref_id)
        assert hint is not None and hint.spatial

    def test_conservative_policy_rejects_outer_reuse(self):
        program, ref = self.make(inner_is_spatial=False)
        result = hints_of(program, policy="conservative")
        hint = result.hint_table.get(ref.ref_id)
        assert hint is None or not hint.spatial

    def test_row_major_flips_spatial_dim(self):
        a = ArrayDecl("a", 8, [100, 100], layout="row")
        i, j = Var("i"), Var("j")
        ref = ArrayRef(a, [Affine.of(j), Affine.of(i)])  # i in last dim
        loop = ForLoop(j, 0, 100, [ForLoop(i, 0, 100, [ref])])
        result = hints_of(Program("rowmajor", [loop]))
        hint = result.hint_table.get(ref.ref_id)
        assert hint is not None and hint.spatial


class TestReuseDistanceScreen:
    def make(self, n_inner, policy="default"):
        """Outer-loop spatial reuse with a controllable distance."""
        a = ArrayDecl("a", 8, [4096, 4096], layout="col")
        b = ArrayDecl("b", 8, [4096 * 4096], layout="col")
        i, j = Var("i"), Var("j")
        # a(i, j) with j inner: spatial reuse on i carried by outer loop.
        ref = ArrayRef(a, [Affine.of(i), Affine.of(j)])
        filler = ArrayRef(b, [Affine.of(j)])
        loop = ForLoop(i, 0, 64, [
            ForLoop(j, 0, n_inner, [ref, filler]),
        ])
        program = Program("reuse", [loop])
        return hints_of(program, policy=policy), ref

    def test_small_distance_marked(self):
        result, ref = self.make(n_inner=256)  # ~4KB per outer iteration
        hint = result.hint_table.get(ref.ref_id)
        assert hint is not None and hint.spatial

    def test_large_distance_rejected_by_default(self):
        result, ref = self.make(n_inner=100_000)  # ~1.6MB >> L2
        hint = result.hint_table.get(ref.ref_id)
        assert hint is None or not hint.spatial

    def test_large_distance_accepted_by_aggressive(self):
        result, ref = self.make(n_inner=100_000, policy="aggressive")
        hint = result.hint_table.get(ref.ref_id)
        assert hint is not None and hint.spatial

    def test_symbolic_inner_bound_rejected_by_default(self):
        a = ArrayDecl("a", 8, [4096, 4096], layout="col")
        i, j = Var("i"), Var("j")
        ref = ArrayRef(a, [Affine.of(i), Affine.of(j)])
        loop = ForLoop(i, 0, 64, [
            ForLoop(j, 0, Sym("n"), [ref]),
        ])
        result = hints_of(Program("symbound", [loop]))
        hint = result.hint_table.get(ref.ref_id)
        assert hint is None or not hint.spatial


class TestHeapArray:
    """Figure 4: T **buf accessed as buf[i][j]."""

    def make(self):
        buf = ArrayDecl("buf", 8, [64], storage="heap", is_pointer=True)
        i, j = Var("i"), Var("j")
        ref = HeapRowRef(buf, Affine.of(i), Affine.of(j), 8)
        loop = ForLoop(i, 0, 64, [ForLoop(j, 0, 512, [ref])])
        return Program("fig4", [loop]), ref

    def test_element_access_spatial(self):
        program, ref = self.make()
        result = hints_of(program)
        hint = result.hint_table.get(ref.elem_ref_id)
        assert hint is not None and hint.spatial

    def test_row_pointer_load_spatial_and_pointer(self):
        # buf[i] is spatial in the outer loop (stride 8) with a known
        # small reuse distance, and points into the heap -> also pointer.
        program, ref = self.make()
        result = hints_of(program)
        hint = result.hint_table.get(ref.row_ref_id)
        assert hint is not None
        assert hint.spatial
        assert hint.pointer


class TestInductionPointer:
    """Figure 5: for (; p < s; p += c) { ...*p...; p->f; }"""

    def make(self, step=16):
        p = PointerVar("p")
        deref = PtrRef(p, offset=0, size=8)
        field = PtrRef(p, offset=8, size=8)
        loop = PtrLoop(p, Sym("n"), step, [deref, field])
        return Program("fig5", [loop]), deref, field

    def test_small_step_marks_derefs_spatial(self):
        program, deref, field = self.make(step=16)
        result = hints_of(program)
        for ref in (deref, field):
            hint = result.hint_table.get(ref.ref_id)
            assert hint is not None and hint.spatial

    def test_large_step_not_spatial(self):
        program, deref, _ = self.make(step=4096)
        result = hints_of(program)
        hint = result.hint_table.get(deref.ref_id)
        assert hint is None or not hint.spatial


class TestUnanalysable:
    def test_opaque_subscript_never_spatial(self):
        a = ArrayDecl("a", 8, [1 << 16], storage="heap")
        i = Var("i")
        ref = ArrayRef(a, [Opaque(lambda env, r: r.randrange(1 << 16))])
        loop = ForLoop(i, 0, 100, [ref])
        result = hints_of(Program("opaque", [loop]))
        hint = result.hint_table.get(ref.ref_id)
        assert hint is None or not hint.spatial

    def test_reference_outside_loops_unmarked(self):
        a = ArrayDecl("a", 8, [100])
        ref = ArrayRef(a, [Affine.constant(5)])
        result = hints_of(Program("noloop", [ref]))
        assert result.hint_table.get(ref.ref_id) is None

    def test_zero_stride_is_temporal_not_spatial(self):
        a = ArrayDecl("a", 8, [100, 100], layout="col")
        i, j = Var("i"), Var("j")
        ref = ArrayRef(a, [Affine.constant(3), Affine.of(j)])
        loop = ForLoop(j, 0, 100, [ForLoop(i, 0, 100, [ref])])
        result = hints_of(Program("temporal", [loop]))
        hint = result.hint_table.get(ref.ref_id)
        # The inner i loop does not move the reference at all; the outer j
        # loop moves it by a whole column. Neither is block-level spatial.
        assert hint is None or not hint.spatial


class TestScopeBoundary:
    def test_driver_loop_invisible_to_analysis(self):
        a = ArrayDecl("a", 8, [1 << 16], storage="heap")
        i, s = Var("i"), Var("s")
        ref = ArrayRef(a, [Affine({s: 997})])  # huge stride in s
        inner = ForLoop(i, 0, 16, [ref])
        driver = ForLoop(s, 0, 100, [inner], scope_boundary=True)
        result = hints_of(Program("scoped", [driver]))
        hint = result.hint_table.get(ref.ref_id)
        # With the driver hidden, s is not an induction variable in scope,
        # and i does not appear in the subscript: nothing to mark.
        assert hint is None or not hint.spatial
