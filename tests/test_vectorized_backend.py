"""Vectorized replay backend: dispatch, equivalence, fallback, caching.

Four layers of guarantees for ``repro.sim.vectorized``:

* **dispatch** — ``resolve_backend`` honours the spec's pin, then
  ``REPRO_BACKEND``, then auto-detection, and rejects unknown names;
* **equivalence** — the vectorized backend's ``RunResult.to_dict()`` is
  byte-identical to the fused loop's for every workload across the
  scheme families it batches differently (no prefetcher, hardware-only
  SRP, hint-guided GRP, and the adaptive gate machinery), plus seeded
  synthetic traces engineered to drive the numpy recurrence engine
  (long barrier-free stretches) that the real workloads' barrier
  density rarely exposes;
* **fallback** — with numpy unavailable the backend reports itself
  unavailable, auto-dispatch picks the fused loop, and even an
  explicitly pinned ``backend="vectorized"`` degrades gracefully to
  fused with identical results;
* **caching** — pinned backends are part of the RunSpec digest (results
  from different backends can never alias in the persistent cache) and
  the 1.6.0 version-salt bump invalidated every pre-backend entry
  (and each later bump — 1.7.0 added the co-run backend field — keeps
  older payloads from aliasing).
"""

import json

import pytest

from repro.mem.space import AddressSpace
from repro.sim import vectorized
from repro.sim.cache import version_salt
from repro.sim.config import MachineConfig
from repro.sim.runner import resolve_backend, run_workload
from repro.sim.simulator import Simulator
from repro.sim.spec import RunSpec
from repro.trace.compiled import CompiledTrace
from repro.trace.events import MemRef, Ops
from repro.workloads import workload_names

needs_numpy = pytest.mark.skipif(not vectorized.available(),
                                 reason="numpy unavailable")

LIMIT = 1200

#: One scheme per batching regime: no prefetcher (pure walker + numpy
#: engine), hardware-only SRP (mode-B gated stretches), hint-guided GRP
#: (directive events break walks), and the adaptive throttle (epoch
#: ticks interleave with the gate machinery).
SCHEMES_UNDER_TEST = ("none", "srp", "grp", "srp-adaptive")


def result_json(workload, scheme, backend, limit=LIMIT):
    stats = run_workload(workload, scheme, limit_refs=limit, backend=backend)
    return json.dumps(stats.to_dict(), sort_keys=True)


class TestDispatch:
    def test_explicit_names_pass_through(self):
        assert resolve_backend("fused") == "fused"

    @needs_numpy
    def test_auto_prefers_vectorized_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend("auto") == "vectorized"

    def test_env_var_steers_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fused")
        assert resolve_backend("auto") == "fused"

    def test_spec_pin_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fused")
        if vectorized.available():
            assert resolve_backend("vectorized") == "vectorized"
        else:
            assert resolve_backend("fused") == "fused"

    def test_unknown_env_backend_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "turbo")
        with pytest.raises(ValueError):
            resolve_backend("auto")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("turbo")
        with pytest.raises(ValueError):
            RunSpec.create("mcf", "none", backend="turbo")

    def test_simulator_rejects_unknown_backend(self):
        sim = Simulator(MachineConfig.scaled(), AddressSpace(), None)
        trace = CompiledTrace.from_events([MemRef("r", 1 << 20, 8)])
        with pytest.raises(ValueError):
            sim.run_compiled(trace, backend="turbo")


@needs_numpy
class TestDifferentialMatrix:
    """Byte-identical vectorized-vs-fused across the full workload set."""

    @pytest.mark.parametrize("scheme", SCHEMES_UNDER_TEST)
    @pytest.mark.parametrize("workload", workload_names())
    def test_byte_identical(self, workload, scheme):
        assert result_json(workload, scheme, "vectorized") \
            == result_json(workload, scheme, "fused")


def synthetic_trace(seed, nrefs=4000, blocks=64, ops_every=3, ops_count=2,
                    barrier_every=None):
    """A seeded synthetic trace with long barrier-free hit stretches.

    After warming ``blocks`` lines the reference stream hits the same
    working set with a pseudo-random pattern, interleaving small ALU
    bursts — exactly the regime the numpy recurrence engine batches.
    ``barrier_every`` (refs) splices in window-sized Ops barriers to
    force walker/engine regime changes at seeded positions.
    """
    import random
    rng = random.Random(seed)
    base = 1 << 20
    events = [MemRef("warm", base + 64 * b, 8) for b in range(blocks)]
    for i in range(nrefs):
        block = rng.randrange(blocks)
        store = rng.random() < 0.25
        events.append(MemRef("r%d" % (i % 7), base + 64 * block, 8,
                             is_store=store))
        if ops_every and i % ops_every == 0:
            events.append(Ops(ops_count))
        if barrier_every and i % barrier_every == barrier_every - 1:
            events.append(Ops(256))
    return CompiledTrace.from_events(events)


def run_synthetic(trace, backend, span_stats=None):
    sim = Simulator(MachineConfig.scaled(), AddressSpace(), None)
    vectorized.span_stats = span_stats
    try:
        result = sim.run_compiled(trace, backend=backend)
    finally:
        vectorized.span_stats = None
    return json.dumps(result.to_dict(), sort_keys=True)


@needs_numpy
class TestSyntheticFuzz:
    @pytest.mark.parametrize("seed", range(6))
    def test_seeded_streams_byte_identical(self, seed):
        trace = synthetic_trace(seed)
        assert run_synthetic(trace, "vectorized") \
            == run_synthetic(trace, "fused")

    @pytest.mark.parametrize("seed", range(4))
    def test_barriered_streams_byte_identical(self, seed):
        trace = synthetic_trace(seed, nrefs=2500, barrier_every=97 + seed)
        assert run_synthetic(trace, "vectorized") \
            == run_synthetic(trace, "fused")

    def test_numpy_engine_actually_engages(self):
        """The fuzz regime must exercise the recurrence engine, not just
        the scalar walker — otherwise the batch math is untested."""
        stats = {}
        run_synthetic(synthetic_trace(0, nrefs=20000), "vectorized",
                      span_stats=stats)
        assert stats["np_spans"] > 0
        assert stats["np_refs"] > 0
        assert stats["np_events"] + stats["walk_events"] \
            <= stats["events_total"]


class TestNoNumpyFallback:
    def fused_only(self, monkeypatch):
        monkeypatch.setattr(vectorized, "_np", None)
        monkeypatch.delenv("REPRO_BACKEND", raising=False)

    def test_unavailable_without_numpy(self, monkeypatch):
        self.fused_only(monkeypatch)
        assert not vectorized.available()

    def test_auto_resolves_to_fused(self, monkeypatch):
        self.fused_only(monkeypatch)
        assert resolve_backend("auto") == "fused"

    def test_pinned_vectorized_degrades_to_fused(self, monkeypatch):
        """An explicit vectorized pin on a numpy-less host still runs —
        the core falls back to the fused loop with identical results."""
        baseline = result_json("mcf", "srp", "fused", limit=400)
        self.fused_only(monkeypatch)
        assert result_json("mcf", "srp", "vectorized", limit=400) == baseline

    def test_supports_false_without_numpy(self, monkeypatch):
        self.fused_only(monkeypatch)

        class Core:
            pass

        assert not vectorized.supports(Core())


class TestDigestSensitivity:
    def spec(self, backend):
        return RunSpec.create("mcf", "srp", limit_refs=LIMIT,
                              backend=backend)

    def test_pinned_backends_never_alias(self):
        salt = version_salt()
        digests = {self.spec(b).digest(salt)
                   for b in ("auto", "fused", "vectorized")}
        assert len(digests) == 3

    def test_version_salt_invalidates_prebackend_entries(self):
        import repro
        assert repro.__version__ in version_salt()
        spec = self.spec("auto")
        assert spec.digest(version_salt()) != spec.digest("repro-1.5.0")

    def test_backend_round_trips_and_rejects_unknown(self):
        spec = self.spec("vectorized")
        assert RunSpec.from_dict(spec.to_dict()) == spec
        payload = dict(spec.to_dict())
        payload["backend"] = "turbo"
        with pytest.raises(ValueError):
            RunSpec.from_dict(payload)
