"""Unit tests for the limited-window CPU timing model."""

import pytest

from repro.cpu.core import Core
from repro.mem.hierarchy import Hierarchy
from repro.mem.space import AddressSpace
from repro.sim.config import MachineConfig
from repro.trace.events import MemRef, Ops


class PerfectMemory:
    """A hierarchy stub with fixed access latency."""

    def __init__(self, latency=3):
        self.latency = latency
        self.accesses = 0

    def access(self, addr, now, is_store=False, ref_id=None, hint=None):
        self.accesses += 1
        return now + self.latency

    def directive(self, event, now):
        pass


def make_core(latency=3, **cfg):
    config = MachineConfig.tiny(**cfg)
    return Core(config, PerfectMemory(latency))


class TestThroughput:
    def test_alu_retires_at_issue_width(self):
        core = make_core()
        core.execute(iter([Ops(4000)]))
        assert core.ipc == pytest.approx(4.0, rel=0.05)

    def test_bulk_and_exact_ops_paths_agree(self):
        # 33+ ops take the closed-form path; compare against many small
        # batches through the exact path.
        exact = make_core()
        exact.execute(iter([Ops(8)] * 50))
        bulk = make_core()
        bulk.execute(iter([Ops(400)]))
        assert bulk.cycles == pytest.approx(exact.cycles, rel=0.05)

    def test_instruction_count(self):
        core = make_core()
        core.execute(iter([Ops(10), MemRef("a", 0x100), Ops(5)]))
        assert core.instructions == 16


class TestLatencyTolerance:
    class SlowMemory(PerfectMemory):
        def __init__(self, latency):
            super().__init__(latency)

    def run_loads(self, n_loads, latency, window=64, ops_between=0):
        config = MachineConfig.tiny(window_size=window)
        core = Core(config, PerfectMemory(latency))
        events = []
        for k in range(n_loads):
            events.append(MemRef("pc", 0x1000 + 64 * k))
            if ops_between:
                events.append(Ops(ops_between))
        core.execute(iter(events))
        return core

    def test_window_hides_isolated_long_latency(self):
        """One long-latency load amid ALU work costs far less than its
        latency thanks to the reorder window."""
        config = MachineConfig.tiny(window_size=64)
        mem = PerfectMemory(200)
        core = Core(config, mem)
        core.execute(iter([Ops(30), MemRef("pc", 0x1000), Ops(30)]))
        # 61 instructions; the load's 200 cycles overlap the trailing ops
        # until the window wraps.
        assert core.cycles < 260

    def test_back_to_back_misses_serialize_beyond_window(self):
        fast = self.run_loads(100, latency=10)
        slow = self.run_loads(100, latency=500)
        # With no independent work, long misses dominate: runtime scales
        # far beyond the fast case.
        assert slow.cycles > fast.cycles * 5

    def test_wider_window_tolerates_more(self):
        small = self.run_loads(200, latency=300, window=8, ops_between=16)
        large = self.run_loads(200, latency=300, window=256, ops_between=16)
        assert large.cycles < small.cycles

    def test_load_stall_cycles_tracked(self):
        # More loads than the window, so issue wraps onto incomplete ones.
        core = self.run_loads(200, latency=400)
        assert core.load_stall_cycles > 0


class TestDirectives:
    def test_directive_costs_one_instruction(self):
        from repro.trace.events import LoopBound

        seen = []

        class Mem(PerfectMemory):
            def directive(self, event, now):
                seen.append((event, now))

        config = MachineConfig.tiny()
        core = Core(config, Mem())
        core.execute(iter([LoopBound(32)]))
        assert core.instructions == 1
        assert len(seen) == 1
        assert seen[0][0].bound == 32


class TestHintDelivery:
    def test_hint_table_lookup_passed_to_hierarchy(self):
        from repro.compiler.hints import HintTable

        got = []

        class Mem(PerfectMemory):
            def access(self, addr, now, is_store=False, ref_id=None,
                       hint=None):
                got.append((ref_id, hint))
                return now + 1

        table = HintTable()
        table.mark("pc1", spatial=True)
        config = MachineConfig.tiny()
        core = Core(config, Mem(), hint_table=table)
        core.execute(iter([MemRef("pc1", 0x100), MemRef("pc2", 0x200)]))
        assert got[0][1] is not None and got[0][1].spatial
        assert got[1][1] is None

    def test_limit_refs_truncates(self):
        core = make_core()
        events = iter([MemRef("p", 64 * k) for k in range(100)])
        core.execute(events, limit_refs=10)
        assert core.hierarchy.accesses == 10
