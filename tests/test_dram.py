"""Unit tests for the DRAM channel/bank model."""

import pytest

from repro.mem.dram import DRAMConfig, DRAMSystem


def make_dram(**kw):
    params = dict(channels=2, banks_per_channel=2, row_size=256,
                  row_hit_latency=10, row_miss_latency=50,
                  transfer_cycles=4, block_size=64)
    params.update(kw)
    return DRAMSystem(DRAMConfig(**params))


class TestAddressMapping:
    def test_blocks_interleave_channels(self):
        dram = make_dram()
        assert dram.channel_of(0x000) != dram.channel_of(0x040)
        assert dram.channel_of(0x000) == dram.channel_of(0x080)

    def test_row_mapping_groups_blocks(self):
        dram = make_dram()
        # Blocks on the same channel within one row share a row id.
        assert dram.row_of(0x000) == dram.row_of(0x080)


class TestTiming:
    def test_row_miss_then_hit(self):
        dram = make_dram()
        first = dram.access(0x0, now=0)
        assert first == 50  # row miss
        second = dram.access(0x80, now=100)  # same row, now open
        assert second == 110  # row hit
        assert dram.stats.row_hits == 1
        assert dram.stats.row_misses == 1

    def test_channel_occupancy_serializes(self):
        dram = make_dram()
        a = dram.access(0x0, now=0)
        b = dram.access(0x80, now=0)  # same channel, must wait transfer
        assert b >= 4 + 10  # starts after the 4-cycle transfer slot

    def test_different_channels_independent(self):
        dram = make_dram()
        dram.access(0x0, now=0)
        other = dram.access(0x40, now=0)  # other channel
        assert other == 50  # no queueing

    def test_channel_idle_reporting(self):
        dram = make_dram()
        assert dram.channel_idle(0x0, 0)
        dram.access(0x0, now=0)
        assert not dram.channel_idle(0x0, 1)
        assert dram.channel_idle(0x0, 4)


class TestAccounting:
    def test_kinds_counted_separately(self):
        dram = make_dram()
        dram.access(0x0, 0, kind="demand")
        dram.access(0x40, 0, kind="prefetch")
        dram.access(0x80, 100, kind="writeback")
        assert dram.stats.demand_blocks == 1
        assert dram.stats.prefetch_blocks == 1
        assert dram.stats.writeback_blocks == 1
        assert dram.stats.bytes_transferred(64) == 3 * 64

    def test_unknown_kind_rejected(self):
        dram = make_dram()
        with pytest.raises(ValueError):
            dram.access(0x0, 0, kind="bogus")

    def test_row_hit_rate(self):
        dram = make_dram()
        dram.access(0x0, 0)
        dram.access(0x80, 50)
        assert dram.stats.row_hit_rate == pytest.approx(0.5)


class TestOpenPagePreference:
    def test_row_is_open_tracks_state(self):
        dram = make_dram()
        assert not dram.row_is_open(0x0)
        dram.access(0x0, 0)
        assert dram.row_is_open(0x0)
        assert dram.row_is_open(0x80)  # same row
