"""Tests for the multi-core co-run substrate: the 1-core degenerate case
is byte-identical to the single-core engine, N-core replay is
deterministic, per-core attribution sums to the shared counters,
cross-core prefetch pollution is charged to the evicting core, and
CoRunSpec/CoRunResult survive every serialization boundary (JSON, the
result cache, the sweep supervisor's journal)."""

import json
import os

import pytest

from repro.mem.cache import Cache
from repro.sim.cache import ResultCache
from repro.sim.multicore import (
    CORE_BASE_STRIDE,
    InterferenceMatrix,
    execute_corun,
    jain_fairness,
)
from repro.sim.runner import execute
from repro.sim.spec import CoRunSpec, RunSpec
from repro.sim.stats import CoRunResult, result_from_dict
from repro.sim.supervisor import SweepSupervisor

REFS = 1500

DEGENERATE_BENCHMARKS = ["mcf", "swim", "vpr"]
DEGENERATE_SCHEMES = ["none", "srp", "grp", "srp-adaptive"]


def corun_spec(workloads, scheme, refs=REFS):
    return CoRunSpec.create(workloads, scheme, limit_refs=refs)


class TestDegenerateEquivalence:
    """A 1-core co-run IS the single-core engine, byte for byte."""

    @pytest.mark.parametrize("bench", DEGENERATE_BENCHMARKS)
    @pytest.mark.parametrize("scheme", DEGENERATE_SCHEMES)
    def test_one_core_matches_execute(self, bench, scheme):
        solo = execute(RunSpec.create(bench, scheme, limit_refs=REFS))
        corun = execute_corun(corun_spec([bench], scheme),
                              solo_baseline=False)
        assert corun.cores[0].to_dict() == solo.to_dict()

    def test_one_core_shared_summary_is_trivial(self):
        result = execute_corun(corun_spec(["mcf"], "srp"))
        assert result.shared["slowdowns"] == [1.0]
        assert result.shared["geomean_slowdown"] == 1.0
        assert result.shared["fairness"] == 1.0
        assert result.shared["cross_core_pollution"] == 0


class TestDeterminism:
    def test_two_runs_byte_identical(self):
        spec = corun_spec(["mcf", "swim"], "srp")
        first = execute_corun(spec)
        second = execute_corun(spec)
        assert first.to_dict() == second.to_dict()

    def test_heterogeneous_schemes_per_core(self):
        spec = CoRunSpec.create(["mcf", "swim"], ["srp", "grp"],
                                limit_refs=REFS)
        result = execute_corun(spec, solo_baseline=False)
        assert result.scheme == "srp+grp"
        assert result.cores[0].scheme == "srp"
        assert result.cores[1].scheme == "grp"


class TestAttribution:
    """Per-core counters sum to the shared-structure counters."""

    @pytest.fixture(scope="class")
    def pair(self):
        from repro.sim.multicore import MultiCoreSimulator
        sim = MultiCoreSimulator(corun_spec(["mcf", "swim"], "grp"))
        sim.run()
        return sim

    def test_l2_counters_sum(self, pair):
        shared = pair.shared.l2.stats.snapshot()
        cores = [s.snapshot() for s in pair.shared.l2.core_stats]
        for key, value in shared.items():
            if key == "miss_rate":
                continue  # derived ratio, not a counter
            assert sum(c[key] for c in cores) == value, key

    def test_dram_counters_sum(self, pair):
        dram = pair.shared.dram
        for attr in ("demand_blocks", "prefetch_blocks",
                     "writeback_blocks", "row_hits", "row_misses"):
            shared = getattr(dram.stats, attr)
            assert sum(getattr(c, attr)
                       for c in dram.core_stats) == shared, attr
        assert sum(dram.core_busy_cycles) == \
            pytest.approx(sum(dram.channel_busy_cycles))

    def test_mshr_counters_sum(self, pair):
        mshrs = pair.shared.mshrs
        assert sum(c.stalls for c in mshrs.core_stats) == mshrs.stalls
        assert sum(c.merges for c in mshrs.core_stats) == mshrs.merges
        assert sum(c.allocations for c in mshrs.core_stats) == \
            mshrs.allocations

    def test_address_spaces_disjoint(self, pair):
        bases = [cell.hierarchy.space.base for cell in pair.cells]
        assert bases == [0, CORE_BASE_STRIDE]


class TestCrossCorePollution:
    """Adversarial unit test: core 1's prefetches evict core 0's lines
    from a shared set; core 0's re-misses are charged to core 1."""

    def test_prefetch_eviction_charged_to_evicter(self):
        cache = Cache("l2", size=1024, assoc=2, block_size=64, latency=10,
                      prefetch_insert="mru")
        cache.enable_core_stats(2)
        matrix = InterferenceMatrix(2)
        cache.interference = matrix
        set_stride = cache.num_sets * cache.block_size

        # Core 0 demand-fills both ways of set 0.
        cache.active_core = 0
        for i in range(2):
            block = i * set_stride
            assert not cache.access_block(block)
            cache.fill(block)

        # Core 1 prefetch-fills two different blocks into the same set,
        # evicting both of core 0's lines.
        cache.active_core = 1
        for i in range(2, 4):
            cache.fill_prefetch_block(i * set_stride)
        assert matrix.prefetch_evictions[1][0] == 2

        # Core 0 touches its data again: pollution misses, charged to
        # the evicting core in the interference matrix.
        cache.active_core = 0
        for i in range(2):
            assert not cache.access_block(i * set_stride)
        assert cache.core_stats[0].pollution_misses == 2
        assert matrix.pollution[1][0] == 2
        assert matrix.cross_core_pollution() == 2
        # Self-inflicted pollution is not cross-core interference.
        assert matrix.pollution[0][0] == 0

    def test_same_core_pollution_not_cross_core(self):
        cache = Cache("l2", size=1024, assoc=2, block_size=64, latency=10,
                      prefetch_insert="mru")
        cache.enable_core_stats(1)
        matrix = InterferenceMatrix(1)
        cache.interference = matrix
        set_stride = cache.num_sets * cache.block_size
        for i in range(2):
            cache.access_block(i * set_stride)
            cache.fill(i * set_stride)
        for i in range(2, 4):
            cache.fill_prefetch_block(i * set_stride)
        for i in range(2):
            cache.access_block(i * set_stride)
        assert cache.stats.pollution_misses == 2
        assert matrix.cross_core_pollution() == 0


class TestSpecValidation:
    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            CoRunSpec.create([], "srp")

    def test_mismatched_scheme_list_rejected(self):
        with pytest.raises(ValueError):
            CoRunSpec.create(["mcf", "swim"], ["srp"])

    def test_digest_keys_on_content(self):
        a = corun_spec(["mcf", "swim"], "srp")
        b = corun_spec(["mcf", "swim"], "srp")
        c = corun_spec(["swim", "mcf"], "srp")
        assert a.digest("salt") == b.digest("salt")
        assert a.digest("salt") != c.digest("salt")
        assert a.digest("salt") != a.digest("other-salt")

    def test_labels(self):
        spec = corun_spec(["mcf", "swim"], "srp")
        assert spec.workload == "mcf+swim"
        assert spec.scheme == "srp"
        assert spec.label() == "mcf+swim/srp"


class TestRoundTrips:
    @pytest.fixture(scope="class")
    def spec(self):
        return corun_spec(["mcf", "swim"], "srp")

    @pytest.fixture(scope="class")
    def result(self, spec):
        return execute_corun(spec)

    def test_spec_json_round_trip(self, spec):
        rebuilt = CoRunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.digest("salt") == spec.digest("salt")

    def test_result_json_round_trip(self, result):
        payload = json.loads(json.dumps(result.to_dict()))
        rebuilt = result_from_dict(payload)
        assert isinstance(rebuilt, CoRunResult)
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.n_cores == 2
        assert rebuilt.fairness == result.shared["fairness"]

    def test_result_cache_round_trip(self, spec, result, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(spec, result)
        cached = cache.get(spec)
        assert cached is not None
        assert cached.to_dict() == result.to_dict()

    def test_supervisor_journal_round_trip(self, spec, result, tmp_path):
        checkpoint = os.path.join(str(tmp_path), "sweep.ckpt")
        first = SweepSupervisor([spec], checkpoint=checkpoint).run()
        assert first[0].to_dict() == result.to_dict()
        # Resume from the journal alone: no cache, no recomputation.
        resumed = SweepSupervisor([spec], checkpoint=checkpoint,
                                  resume=True).run()
        assert resumed[0].to_dict() == result.to_dict()


class TestJainFairness:
    def test_equal_shares_are_fair(self):
        assert jain_fairness([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_unequal_shares_are_unfair(self):
        # (1 + 3)^2 / (2 * (1 + 9)) = 0.8
        assert jain_fairness([1.0, 3.0]) == pytest.approx(0.8)

    def test_empty_or_all_zero_is_zero(self):
        assert jain_fairness([]) == 0.0
        assert jain_fairness([0.0, 0.0]) == 0.0
