"""Tests for the shared workload data-structure builders."""

import random

import pytest

from repro.compiler.symbols import ArrayDecl, StructDecl, Sym
from repro.mem.space import AddressSpace
from repro.workloads.common import (
    build_binary_tree,
    build_linked_list,
    build_node_pointer_array,
    build_pointer_rows,
    materialize,
    store_index_array,
)


def list_struct():
    t = StructDecl("t")
    t.add_scalar("val", 8)
    t.add_pointer("next", target="t")
    return t


class TestMaterialize:
    def test_assigns_heap_base(self):
        space = AddressSpace()
        arr = ArrayDecl("a", 8, [100], storage="heap")
        base = materialize(space, arr)
        assert arr.base == base
        assert space.heap.contains(base)

    def test_assigns_static_base(self):
        space = AddressSpace()
        arr = ArrayDecl("a", 8, [100], storage="static")
        materialize(space, arr)
        assert space.static.contains(arr.base)

    def test_symbolic_dims_need_bindings(self):
        space = AddressSpace()
        arr = ArrayDecl("a", 8, [Sym("n")], storage="heap")
        with pytest.raises(ValueError):
            materialize(space, arr)
        materialize(space, arr, bindings={"n": 10})
        assert arr.base is not None

    def test_stagger_separates_set_mappings(self):
        """Consecutive power-of-two arrays must not be set-congruent."""
        space = AddressSpace()
        bases = []
        for k in range(4):
            arr = ArrayDecl("a%d" % k, 8, [1 << 14], storage="heap")
            bases.append(materialize(space, arr))
        offsets = {b % (32 * 1024) for b in bases}
        assert len(offsets) == len(bases)


class TestLinkedList:
    def test_sequential_links_are_in_order(self):
        space = AddressSpace()
        t = list_struct()
        head = build_linked_list(space, t, 10, layout="sequential")
        offset = t.field("next").offset
        prev, node = None, head
        count = 1
        while True:
            nxt = space.load_word(node + offset)
            if not nxt:
                break
            assert nxt > node  # allocation order
            node = nxt
            count += 1
        assert count == 10

    def test_shuffled_visits_every_node_once(self):
        space = AddressSpace()
        t = list_struct()
        head = build_linked_list(space, t, 50, layout="shuffled",
                                 rng=random.Random(3))
        offset = t.field("next").offset
        seen = set()
        node = head
        while node:
            assert node not in seen
            seen.add(node)
            node = space.load_word(node + offset) or 0
        assert len(seen) == 50

    def test_rejects_bad_layout(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            build_linked_list(space, list_struct(), 4, layout="weird")

    def test_rejects_empty(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            build_linked_list(space, list_struct(), 0)


class TestBinaryTree:
    def tree_struct(self):
        t = StructDecl("node")
        t.add_scalar("key", 8)
        t.add_pointer("left", target="node")
        t.add_pointer("right", target="node")
        return t

    def test_complete_tree_reachable(self):
        space = AddressSpace()
        t = self.tree_struct()
        root = build_binary_tree(space, t, 15)
        left, right = t.field("left"), t.field("right")
        seen = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if not node or node in seen:
                continue
            seen.add(node)
            stack.append(space.load_word(node + left.offset) or 0)
            stack.append(space.load_word(node + right.offset) or 0)
        seen.discard(0)
        assert len(seen) == 15

    def test_leaves_have_null_children(self):
        space = AddressSpace()
        t = self.tree_struct()
        root = build_binary_tree(space, t, 1)
        assert space.load_word(root + t.field("left").offset) == 0
        assert space.load_word(root + t.field("right").offset) == 0


class TestPointerRows:
    def test_rows_stored_and_heap(self):
        space = AddressSpace()
        buf = ArrayDecl("buf", 8, [8], storage="heap", is_pointer=True)
        rows = build_pointer_rows(space, buf, 8, 256)
        for k, row in enumerate(rows):
            assert space.load_word(buf.base + 8 * k) == row
            assert space.is_heap_address(row)

    def test_jitter_varies_spacing(self):
        space = AddressSpace()
        buf = ArrayDecl("buf", 8, [32], storage="heap", is_pointer=True)
        rows = build_pointer_rows(space, buf, 32, 256, jitter=256)
        gaps = {b - a for a, b in zip(rows, rows[1:])}
        assert len(gaps) > 1  # spacing is not constant

    def test_requires_pointer_array(self):
        space = AddressSpace()
        buf = ArrayDecl("buf", 8, [8], storage="heap")
        with pytest.raises(ValueError):
            build_pointer_rows(space, buf, 8, 64)


class TestIndexArray:
    def test_values_readable_by_prefetcher(self):
        space = AddressSpace()
        arr = ArrayDecl("b", 4, [32], storage="heap")
        materialize(space, arr)
        store_index_array(space, arr, list(range(32)))
        # The GRP engine reads index blocks through this API.
        block = arr.base & ~63
        values = space.read_index_block(block, 64)
        assert values[:8] == list(range(8)) or len(values) > 0

    def test_rejects_wrong_elem_size(self):
        space = AddressSpace()
        arr = ArrayDecl("b", 8, [32], storage="heap")
        materialize(space, arr)
        with pytest.raises(ValueError):
            store_index_array(space, arr, [1, 2])


class TestNodePointerArray:
    def test_heads_stored(self):
        space = AddressSpace()
        t = list_struct()
        heads = [build_linked_list(space, t, 3) for _ in range(5)]
        arr = ArrayDecl("heads", 8, [5], storage="heap", is_pointer=True)
        build_node_pointer_array(space, arr, heads)
        for k, head in enumerate(heads):
            assert space.load_word(arr.base + 8 * k) == head
