"""Unit tests for the memory controller / access prioritizer."""

import pytest

from repro.mem.controller import MemoryController, PrefetchRequest
from repro.mem.dram import DRAMConfig, DRAMSystem
from repro.mem.mshr import MSHRFile


class ListPrefetcher:
    """A minimal prefetch source for driving the controller directly."""

    def __init__(self, blocks, queued_at=0):
        self.pending = [PrefetchRequest(b, queued_at) for b in blocks]
        self.dropped = []

    def pop_candidate(self, now, dram):
        return self.pending.pop(0) if self.pending else None

    def push_back(self, request):
        self.pending.insert(0, request)

    def on_candidate_dropped(self, request):
        self.dropped.append(request.block)


def make(blocks, queued_at=0, resident=None, mshrs=None):
    dram = DRAMSystem(DRAMConfig())
    prefetcher = ListPrefetcher(blocks, queued_at)
    controller = MemoryController(dram, prefetcher)
    fills = []
    controller.fill_prefetch = lambda req, ready: fills.append(
        (req.block, ready))
    controller.is_resident = resident
    controller.mshrs = mshrs
    return controller, prefetcher, fills


class TestIdleIssue:
    def test_issues_into_idle_time(self):
        controller, _, fills = make([0x1000, 0x1040], queued_at=0)
        controller.issue_prefetches(now=100_000)
        assert [b for b, _ in fills] == [0x1000, 0x1040]

    def test_nothing_issues_at_queue_time(self):
        """A candidate queued at `now` has no idle time before `now`."""
        controller, prefetcher, fills = make([0x1000], queued_at=50)
        controller.issue_prefetches(now=50)
        assert fills == []
        assert len(prefetcher.pending) == 1  # pushed back

    def test_budget_bounds_work_per_call(self):
        blocks = [0x1000 + 64 * k for k in range(600)]
        controller, _, fills = make(blocks)
        controller.issue_prefetches(now=10_000_000, budget=100)
        assert len(fills) == 100


class TestDemandPriority:
    def test_demand_busy_blocks_prefetch(self):
        controller, prefetcher, fills = make([0x1000], queued_at=0)
        ready = controller.demand_fetch(0x9000, now=10)
        assert controller.demand_busy_until == ready
        # `now` inside the demand's flight window: nothing may issue.
        controller.issue_prefetches(now=ready - 1)
        assert fills == []

    def test_prefetch_issues_after_demand_returns(self):
        controller, prefetcher, fills = make([0x1000], queued_at=0)
        ready = controller.demand_fetch(0x9000, now=10)
        controller.issue_prefetches(now=ready + 10_000)
        assert len(fills) == 1
        # The prefetch issued no earlier than the demand's completion.
        assert fills[0][1] > ready

    def test_overlapping_demands_extend_watermark(self):
        controller, _, _ = make([])
        r1 = controller.demand_fetch(0x9000, now=0)
        r2 = controller.demand_fetch(0xA000, now=5)
        assert controller.demand_busy_until == max(r1, r2)


class TestResidencyDrop:
    def test_resident_candidate_dropped_and_reported(self):
        controller, prefetcher, fills = make(
            [0x1000, 0x2000], resident=lambda b: b == 0x1000)
        controller.issue_prefetches(now=1_000_000)
        assert prefetcher.dropped == [0x1000]
        assert [b for b, _ in fills] == [0x2000]
        assert controller.prefetches_dropped_resident == 1


class TestMSHRSharing:
    def test_prefetch_occupies_mshr(self):
        mshrs = MSHRFile(2)
        controller, _, fills = make([0x1000, 0x1040, 0x1080], mshrs=mshrs)
        controller.issue_prefetches(now=5)
        # Only as many prefetches as MSHRs can be in flight at once at
        # any instant; the third issues after one completes, which is
        # past `now`=5 -> held.
        assert len(fills) == 2
        assert mshrs.outstanding(5) == 2

    def test_blocked_counter_increments(self):
        mshrs = MSHRFile(1)
        controller, _, _ = make([0x1000, 0x1040], mshrs=mshrs)
        controller.issue_prefetches(now=10)
        assert controller.prefetches_blocked_mshr >= 1


class TestAccounting:
    def test_traffic_kinds(self):
        controller, _, _ = make([0x1000])
        controller.demand_fetch(0x9000, now=0)
        controller.writeback(0xA000, now=50)
        controller.issue_prefetches(now=1_000_000)
        stats = controller.dram.stats
        assert stats.demand_blocks == 1
        assert stats.writeback_blocks == 1
        assert stats.prefetch_blocks == 1
        assert controller.prefetches_issued == 1


class CountingQueue:
    """A head-stable region-queue stand-in that counts pops."""

    def __init__(self, blocks, queued_at=0):
        self.pending = [PrefetchRequest(b, queued_at) for b in blocks]
        self._held = None
        self.pops = 0

    def has_candidates(self):
        return self._held is not None or bool(self.pending)

    def pop_candidate(self, now, dram):
        self.pops += 1
        if self._held is not None:
            request, self._held = self._held, None
            return request
        return self.pending.pop(0) if self.pending else None

    def push_back(self, request):
        self._held = request


class QueuedPrefetcher:
    """Delegates issue to a region queue, like SRP/GRP engines."""

    def __init__(self, queue):
        self.queue = queue
        self.has_candidates = queue.has_candidates
        self.dropped = []

    def on_candidate_dropped(self, request):
        self.dropped.append(request.block)


class TestEarlyExit:
    def test_no_prefetcher_is_a_noop(self):
        controller = MemoryController(DRAMSystem(DRAMConfig()), None)
        controller.issue_prefetches(now=1_000)  # must not raise

    def test_empty_queue_skips_candidate_pop(self):
        queue = CountingQueue([])
        controller = MemoryController(
            DRAMSystem(DRAMConfig()), QueuedPrefetcher(queue))
        controller.issue_prefetches(now=1_000)
        assert queue.pops == 0


class TestBlockedIssueCache:
    def make_queued(self, blocks, queued_at=0):
        queue = CountingQueue(blocks, queued_at)
        controller = MemoryController(
            DRAMSystem(DRAMConfig()), QueuedPrefetcher(queue))
        fills = []
        controller.fill_prefetch = lambda req, ready: fills.append(
            (req.block, ready))
        return controller, queue, fills

    def test_held_candidate_skips_reprobe_until_bound(self):
        controller, queue, fills = self.make_queued([0x1000], queued_at=50)
        controller.issue_prefetches(now=50)  # no idle time yet: held
        assert fills == []
        assert queue.pops == 1
        assert controller._blocked_until == 50
        controller.issue_prefetches(now=50)  # gated: no pop
        assert queue.pops == 1
        # Bound expired: the probe issues the held candidate, then pops
        # once more and finds the queue empty.
        controller.issue_prefetches(now=51)
        assert queue.pops == 3
        assert [b for b, _ in fills] == [0x1000]
        assert controller._blocked_until == -1.0

    def test_reference_mode_probes_every_call(self):
        controller, queue, fills = self.make_queued([0x1000], queued_at=50)
        controller._cache_blocked = False
        controller.issue_prefetches(now=50)
        controller.issue_prefetches(now=50)
        assert queue.pops == 2
        assert fills == []

    def test_gate_not_armed_for_queueless_engines(self):
        controller, prefetcher, fills = make([0x1000], queued_at=50)
        controller.issue_prefetches(now=50)
        assert fills == []
        assert controller._blocked_until == -1.0
