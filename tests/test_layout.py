"""Unit tests for address arithmetic helpers."""

import pytest

from repro.mem.layout import (
    block_base,
    block_index_in_region,
    block_range,
    blocks_in_region,
    is_power_of_two,
    region_base,
)


class TestPowerOfTwo:
    def test_accepts_powers(self):
        for exp in range(20):
            assert is_power_of_two(1 << exp)

    def test_rejects_non_powers(self):
        for value in (0, -1, -4, 3, 5, 6, 7, 9, 100, 4095):
            assert not is_power_of_two(value)


class TestBlockBase:
    def test_aligned_address_is_its_own_base(self):
        assert block_base(0x1000, 64) == 0x1000

    def test_strips_offset_bits(self):
        assert block_base(0x103F, 64) == 0x1000
        assert block_base(0x1040, 64) == 0x1040

    def test_different_block_sizes(self):
        assert block_base(0x12345, 32) == 0x12340
        assert block_base(0x12345, 128) == 0x12300


class TestRegionBase:
    def test_4kb_regions(self):
        assert region_base(0x1234, 4096) == 0x1000
        assert region_base(0x1FFF, 4096) == 0x1000
        assert region_base(0x2000, 4096) == 0x2000

    def test_region_contains_block(self):
        addr = 0xDEAD40
        rb = region_base(addr, 4096)
        assert rb <= addr < rb + 4096


class TestBlocksInRegion:
    def test_paper_geometry(self):
        # 4 KB region / 64 B blocks -> the paper's 64-bit vector.
        assert blocks_in_region(4096, 64) == 64

    def test_small_region(self):
        assert blocks_in_region(512, 64) == 8


class TestBlockIndexInRegion:
    def test_first_block(self):
        assert block_index_in_region(0x1000, 4096, 64) == 0

    def test_last_block(self):
        assert block_index_in_region(0x1FC0, 4096, 64) == 63

    def test_mid_block_offset_ignored(self):
        assert block_index_in_region(0x1085, 4096, 64) == 2


class TestBlockRange:
    def test_single_block(self):
        assert list(block_range(0x1000, 8, 64)) == [0x1000]

    def test_straddles_boundary(self):
        assert list(block_range(0x103C, 8, 64)) == [0x1000, 0x1040]

    def test_spans_many_blocks(self):
        got = list(block_range(0x1000, 200, 64))
        assert got == [0x1000, 0x1040, 0x1080, 0x10C0]

    def test_zero_offset_exact_block(self):
        assert list(block_range(0x1000, 64, 64)) == [0x1000]
