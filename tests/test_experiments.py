"""Tests for the experiment harness (at miniature trace lengths)."""

import pytest

from repro.experiments import (
    ALL_BENCHMARKS,
    C_BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    PERF_BENCHMARKS,
    ExperimentContext,
)
from repro.experiments import (
    fig1,
    fig9,
    fig10_11,
    fig12,
    sensitivity,
    table1,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.common import ExperimentResult, format_table

SMALL = ["vpr", "swim", "mcf"]


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(limit_refs=3000)


class TestBenchmarkLists:
    def test_partition_is_complete(self):
        assert set(INT_BENCHMARKS) | set(FP_BENCHMARKS) == \
            set(PERF_BENCHMARKS)
        assert not set(INT_BENCHMARKS) & set(FP_BENCHMARKS)

    def test_crafty_excluded_from_perf(self):
        assert "crafty" in ALL_BENCHMARKS
        assert "crafty" not in PERF_BENCHMARKS

    def test_c_benchmarks_exclude_fortran(self):
        for name in ("wupwise", "swim", "mgrid", "applu", "apsi"):
            assert name not in C_BENCHMARKS


class TestContextCaching:
    def test_runs_are_memoized(self, ctx):
        a = ctx.run("vpr", "none")
        b = ctx.run("vpr", "none")
        assert a is b

    def test_cache_key_includes_policy_and_mode(self, ctx):
        default = ctx.run("vpr", "grp")
        conservative = ctx.run("vpr", "grp", policy="conservative")
        perfect = ctx.run("vpr", "none", mode="perfect_l2")
        assert default is not conservative
        assert perfect is not ctx.run("vpr", "none")

    def test_derived_metrics(self, ctx):
        assert ctx.speedup("vpr", "none") == pytest.approx(1.0)
        assert ctx.traffic_ratio("vpr", "none") == pytest.approx(1.0)
        assert 0.0 <= ctx.perfect_l2_gap("vpr") <= 100.0


class TestFormatting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 4]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows equal width

    def test_result_row_lookup(self):
        result = ExperimentResult("t", ["k", "v"], [["a", 1], ["b", 2]])
        assert result.row_by_key("b") == ["b", 2]
        with pytest.raises(KeyError):
            result.row_by_key("zzz")

    def test_render_includes_notes(self):
        result = ExperimentResult("t", ["k"], [["a"]], notes="hello")
        assert "hello" in result.render()


class TestExperimentsRunSmall:
    """Each experiment module must produce a well-formed result on a
    reduced benchmark set."""

    def test_table1(self, ctx):
        result = table1.run(ctx, benchmarks=SMALL)
        assert len(result.rows) == 5
        assert result.row_by_key("No prefetching")[1] == pytest.approx(1.0)

    def test_fig1(self, ctx):
        result = fig1.run(ctx, benchmarks=SMALL)
        assert len(result.rows) == len(SMALL)
        gaps = [row[5] for row in result.rows]
        assert gaps == sorted(gaps)

    def test_table3(self, ctx):
        result = table3.run(ctx, benchmarks=SMALL)
        for row in result.rows:
            assert row[1] > 0  # mem insts

    def test_table4(self, ctx):
        result = table4.run(ctx, benchmarks=["mesa"])
        row = result.rows[0]
        dist_sum = row[3] + row[4] + row[5] + row[6]
        assert dist_sum == pytest.approx(100.0, abs=0.5) or dist_sum == 0.0

    def test_table5(self, ctx):
        result = table5.run(ctx, benchmarks=SMALL)
        assert result.rows[-1][0] == "average"

    def test_table6(self, ctx):
        result = table6.run(ctx, benchmarks=["mcf", "swim"])
        assert {row[0] for row in result.rows} == {"mcf", "swim"}

    def test_fig9(self, ctx):
        result = fig9.run(ctx, benchmarks=["mcf", "twolf"])
        assert len(result.rows) == 2

    def test_fig10_11(self, ctx):
        result = fig10_11.run(ctx, benchmarks=["vpr", "mcf"])
        fp = fig10_11.run_fp(ctx, benchmarks=["swim"])
        assert len(result.rows) == 2
        assert len(fp.rows) == 1

    def test_fig12(self, ctx):
        result = fig12.run(ctx, benchmarks=SMALL)
        assert result.rows[-1][0] == "geomean"

    def test_sensitivity(self, ctx):
        result = sensitivity.run(ctx, benchmarks=SMALL)
        assert [row[0] for row in result.rows] == [
            "conservative", "default", "aggressive"]
        detail = sensitivity.run_per_benchmark(ctx, benchmarks=SMALL)
        assert len(detail.rows) == len(SMALL)


class TestPartialResults:
    """A resilient context degrades tables gracefully when cells fail."""

    @pytest.fixture(scope="class")
    def broken_ctx(self):
        from repro.sim.faults import FaultPlan, FaultRule
        # vpr/grp fails on every attempt; everything else succeeds.
        plan = FaultPlan([FaultRule("error", match="vpr/grp",
                                    attempts=(0, 1, 2, 3))])
        return ExperimentContext(limit_refs=3000, retries=1,
                                 fault_plan=plan)

    def test_ratio_helpers_return_none_for_failed_cells(self, broken_ctx):
        assert broken_ctx.speedup("vpr", "grp") is None
        assert broken_ctx.traffic_ratio("vpr", "grp") is None
        assert broken_ctx.coverage("vpr", "grp") is None
        assert broken_ctx.speedup("vpr", "srp") is not None
        assert [f.label for f in broken_ctx.failures] == ["vpr/grp"]

    def test_geomeans_skip_failed_cells(self, broken_ctx):
        with_failure = broken_ctx.geomean_speedup("grp", SMALL)
        without = broken_ctx.geomean_speedup("grp", ["swim", "mcf"])
        assert with_failure == pytest.approx(without)

    def test_tables_render_partial_with_footnote(self, broken_ctx):
        result = fig12.run(broken_ctx, benchmarks=SMALL)
        vpr_row = result.row_by_key("vpr")
        assert vpr_row[3] is None and vpr_row[1] is not None
        assert "vpr/grp" in result.notes
        assert "n/a" in result.render()
        # Row-skipping tables drop the bench and note it instead.
        t5 = table5.run(broken_ctx, benchmarks=SMALL)
        assert "vpr" not in {row[0] for row in t5.rows}
        assert "vpr/grp" in t5.notes

    def test_table1_geomeans_survive(self, broken_ctx):
        result = table1.run(broken_ctx, benchmarks=SMALL)
        assert len(result.rows) == 5
        assert "vpr/grp" in result.notes
