"""Compiler tests: pointer/recursive hints (Figure 6, Figure 8) and the
indirect and variable-region analyses (Sections 4.3-4.4).
"""

import pytest

from repro.compiler.driver import compile_hints
from repro.compiler.hints import FIXED_REGION_COEFF
from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    ForLoop,
    IndexLoad,
    Opaque,
    PointerVar,
    Program,
    PtrAssignField,
    PtrChase,
    PtrLoop,
    PtrRef,
    PtrSelect,
    Sym,
    Var,
    WhileLoop,
)
from repro.compiler.passes.region import encode_coefficient
from repro.compiler.symbols import StructDecl

L2 = 128 * 1024
BLOCK = 64


def hints_of(program, **kw):
    params = dict(l2_size=L2, block_size=BLOCK)
    params.update(kw)
    return compile_hints(program, **params)


def list_struct():
    t = StructDecl("t")
    t.add_scalar("f", 8)
    t.add_pointer("next", target="t")
    return t


class TestRecursivePointer:
    """Figure 6: while (...) { ...a->f...; a = a->next; }"""

    def make(self):
        t = list_struct()
        a = PointerVar("a", struct="t")
        field_ref = PtrRef(a, field=t.field("f"))
        chase = PtrChase(a, t.field("next"))
        loop = WhileLoop(Sym("n"), [field_ref, chase])
        return Program("fig6", [loop]), field_ref, chase

    def test_chase_marked_recursive(self):
        program, _, chase = self.make()
        result = hints_of(program)
        hint = result.hint_table.get(chase.ref_id)
        assert hint is not None and hint.recursive

    def test_field_access_marked_pointer(self):
        program, field_ref, _ = self.make()
        result = hints_of(program)
        hint = result.hint_table.get(field_ref.ref_id)
        assert hint is not None and hint.pointer

    def test_chase_to_other_struct_not_recursive(self):
        t = StructDecl("t")
        t.add_pointer("other", target="u")
        a = PointerVar("a", struct="t")
        chase = PtrChase(a, t.field("other"))
        loop = WhileLoop(Sym("n"), [chase])
        result = hints_of(Program("notrec", [loop]))
        hint = result.hint_table.get(chase.ref_id)
        assert hint is not None and hint.pointer  # pointer field access
        assert not hint.recursive


class TestPointerGrouping:
    def test_field_access_without_pointer_sibling_unmarked(self):
        """A scalar field access in a loop with no pointer-field access
        from the same struct earns no pointer hint."""
        t = StructDecl("t")
        t.add_scalar("f", 8)
        a = PointerVar("a", struct="t")
        ref = PtrRef(a, field=t.field("f"))
        loop = WhileLoop(Sym("n"), [ref])
        result = hints_of(Program("plain", [loop]))
        hint = result.hint_table.get(ref.ref_id)
        assert hint is None or not hint.pointer

    def test_different_struct_not_marked(self):
        t = list_struct()
        u = StructDecl("u")
        u.add_scalar("g", 8)
        a = PointerVar("a", struct="t")
        b = PointerVar("b", struct="u")
        chase = PtrChase(a, t.field("next"))
        other = PtrRef(b, field=u.field("g"))
        loop = WhileLoop(Sym("n"), [chase, other])
        result = hints_of(Program("twostructs", [loop]))
        hint = result.hint_table.get(other.ref_id)
        assert hint is None or not hint.pointer

    def test_tree_select_marked_recursive(self):
        t = StructDecl("node")
        t.add_scalar("key", 8)
        left = t.add_pointer("left", target="node")
        right = t.add_pointer("right", target="node")
        a = PointerVar("a", struct="node")
        select = PtrSelect(a, [left, right])
        loop = WhileLoop(Sym("n"), [select])
        result = hints_of(Program("tree", [loop]))
        hint = result.hint_table.get(select.ref_id)
        assert hint is not None and hint.recursive

    def test_assign_field_marks_pointer(self):
        t = StructDecl("node")
        t.add_scalar("key", 8)
        child = t.add_pointer("child", target="node")
        a = PointerVar("a", struct="node")
        b = PointerVar("b", struct="node")
        key = PtrRef(a, field=t.field("key"))
        assign = PtrAssignField(b, a, child)
        loop = WhileLoop(Sym("n"), [key, assign])
        result = hints_of(Program("assign", [loop]))
        assert result.hint_table.get(key.ref_id).pointer
        assert result.hint_table.get(assign.ref_id).pointer


class TestIndirect:
    """Section 4.3: a(s*b(i)+e) detection."""

    def make(self, index_sub=None):
        a = ArrayDecl("a", 8, [1 << 16], storage="heap")
        b = ArrayDecl("b", 4, [4096], storage="heap")
        i = Var("i")
        sub = index_sub if index_sub is not None else Affine.of(i)
        load = IndexLoad(b, sub, scale=2, offset=1)
        ref = ArrayRef(a, [load])
        loop = ForLoop(i, 0, 4096, [ref])
        return Program("indirect", [loop]), load

    def test_detected_with_affine_index(self):
        program, load = self.make()
        result = hints_of(program)
        assert load.ref_id in result.indirect_sites
        info = result.indirect_sites[load.ref_id]
        assert info.scale == 2
        assert info.offset == 1
        assert result.hint_table.indirect_directives == 1

    def test_index_array_access_gets_spatial_hint(self):
        program, load = self.make()
        result = hints_of(program)
        hint = result.hint_table.get(load.ref_id)
        assert hint is not None and hint.spatial

    def test_opaque_index_not_detected(self):
        program, load = self.make(
            index_sub=Opaque(lambda env, r: r.randrange(4096))
        )
        result = hints_of(program)
        assert load.ref_id not in result.indirect_sites

    def test_disabled_by_flag(self):
        program, load = self.make()
        result = hints_of(program, indirect=False)
        assert not result.indirect_sites


class TestVariableRegion:
    def test_coefficient_encoding(self):
        assert encode_coefficient(8) == 3
        assert encode_coefficient(1) == 0
        assert encode_coefficient(64) == 6
        assert encode_coefficient(1000) == 6  # saturates below 7
        with pytest.raises(ValueError):
            encode_coefficient(0)

    def make_flat_loop(self, elem=8, coef=1, nested=False):
        a = ArrayDecl("a", elem, [1 << 16], storage="heap")
        i, t = Var("i"), Var("t")
        ref = ArrayRef(a, [Affine.of(i, coef=coef)])
        loop = ForLoop(i, 0, 64, [ref])
        if nested:
            body = ForLoop(t, 0, 4, [loop])
        else:
            body = loop
        return Program("flat", [body]), ref, loop

    def test_singly_nested_loop_gets_coefficient(self):
        program, ref, loop = self.make_flat_loop()
        result = hints_of(program)
        hint = result.hint_table.get(ref.ref_id)
        assert hint.region_coeff == 3  # 1 elem * 8 bytes -> 2**3
        assert loop.loop_id in result.bound_loops

    def test_nested_loop_keeps_fixed_region(self):
        program, ref, loop = self.make_flat_loop(nested=True)
        result = hints_of(program)
        hint = result.hint_table.get(ref.ref_id)
        assert hint.region_coeff == FIXED_REGION_COEFF
        assert loop.loop_id not in result.bound_loops

    def test_disabled_by_flag(self):
        program, ref, loop = self.make_flat_loop()
        result = hints_of(program, variable_regions=False)
        hint = result.hint_table.get(ref.ref_id)
        assert hint.region_coeff == FIXED_REGION_COEFF
        assert not result.bound_loops

    def test_induction_pointer_loop_gets_coefficient(self):
        p = PointerVar("p")
        deref = PtrRef(p, size=8)
        loop = PtrLoop(p, 64, 16, [deref])
        result = hints_of(Program("ptrflat", [loop]))
        hint = result.hint_table.get(deref.ref_id)
        assert hint.region_coeff == 4  # step 16 bytes -> 2**4
        assert loop.loop_id in result.bound_loops


class TestTable3Counts:
    def test_counts_shape(self):
        t = list_struct()
        a = PointerVar("a", struct="t")
        arr = ArrayDecl("arr", 8, [4096], storage="heap")
        i = Var("i")
        body = [
            ForLoop(i, 0, 4096, [ArrayRef(arr, [Affine.of(i)])]),
            WhileLoop(Sym("n"), [
                PtrRef(a, field=t.field("f")),
                PtrChase(a, t.field("next")),
            ]),
        ]
        result = hints_of(Program("counts", body))
        counts = result.counts()
        assert counts["mem_insts"] == 3
        assert counts["spatial"] == 1
        assert counts["pointer"] == 2
        assert counts["recursive"] == 1
        assert counts["ratio"] == pytest.approx(100.0)
        assert counts["indirect"] == 0
