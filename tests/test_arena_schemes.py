"""The arena PR's test matrix: gaze/chase engines + the arena itself.

Covers, in order:

* registry integration — the new schemes and their adaptive variants are
  registered with engine/summary metadata, and the 1.8.x version salt
  separates their cache entries from pre-arena builds;
* the shared :class:`~repro.prefetch.pending.PendingQueue` contract the
  controller's blocked-issue cache relies on (head-stable pop after
  push_back, overflow, flush);
* Gaze footprint learn/replay and chase dependence-training /
  chained-descent mechanisms against a real tiny hierarchy;
* end-to-end behavior on the pointer workloads (mcf/ammp) and the
  spatial ones (swim);
* the differential byte-identity matrix: fused vs vectorized across all
  18 workloads for both engines, the reference slow path on a subset,
  and the stepped-vs-fused co-run backends;
* :func:`repro.experiments.arena.pareto_front` semantics and the arena
  golden-CSV round trip through the result cache, the sweep supervisor,
  and the HTTP serving layer.
"""

import json
import os

import pytest

from repro.experiments.arena import (
    ARENA_COLUMNS,
    arena_rows,
    pareto_front,
    read_arena_csv,
    write_arena_csv,
)
from repro.experiments.common import ExperimentContext
from repro.mem.controller import PrefetchRequest
from repro.mem.hierarchy import Hierarchy
from repro.mem.space import AddressSpace
from repro.prefetch.chase import ChasePrefetcher
from repro.prefetch.gaze import GazePrefetcher
from repro.prefetch.pending import PendingQueue
from repro.sim import vectorized
from repro.sim.cache import ResultCache, version_salt
from repro.sim.config import MachineConfig
from repro.sim.multicore import execute_corun
from repro.sim.runner import SCHEMES, run_workload
from repro.sim.spec import CoRunSpec, RunSpec
from repro.workloads import workload_names

needs_numpy = pytest.mark.skipif(not vectorized.available(),
                                 reason="numpy unavailable")

LIMIT = 1200
NEW_SCHEMES = ("gaze", "chase", "gaze-adaptive", "chase-adaptive")


def result_json(workload, scheme, backend="fused", limit=LIMIT,
                reference=False):
    stats = run_workload(workload, scheme, limit_refs=limit,
                         backend=backend, reference=reference)
    return json.dumps(stats.to_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# Registry and cache-salt integration
# ----------------------------------------------------------------------

class TestRegistry:
    def test_new_schemes_registered(self):
        for name in NEW_SCHEMES:
            assert name in SCHEMES

    def test_every_scheme_carries_docs_metadata(self):
        for name, spec in SCHEMES.items():
            assert spec.engine is not None, name
            assert spec.summary, name

    def test_new_schemes_are_unhinted(self):
        for name in NEW_SCHEMES:
            assert not SCHEMES[name].hinted

    def test_version_salt_isolates_prearena_entries(self):
        assert version_salt() == "repro-1.8.1"

    def test_new_scheme_digests_never_alias(self):
        digests = {RunSpec.create("mcf", s, limit_refs=LIMIT).digest()
                   for s in NEW_SCHEMES}
        assert len(digests) == len(NEW_SCHEMES)

    def test_cache_round_trips_gaze_result(self, tmp_path):
        spec = RunSpec.create("swim", "gaze", limit_refs=LIMIT)
        from repro.sim.runner import execute
        stats = execute(spec)
        cache = ResultCache(str(tmp_path))
        cache.put(spec, stats)
        cached = cache.get(spec)
        assert cached is not None
        assert cached.to_dict() == stats.to_dict()


# ----------------------------------------------------------------------
# PendingQueue contract
# ----------------------------------------------------------------------

def make_queue(capacity=4):
    return PendingQueue(capacity, region_size=512, block_size=64)


class TestPendingQueue:
    def test_fifo_order(self):
        q = make_queue()
        for block in (0, 64, 128):
            q.push(PrefetchRequest(block, 0.0))
        assert [q.pop_candidate(0.0, None).block for _ in range(3)] \
            == [0, 64, 128]

    def test_push_back_is_head_stable(self):
        """The controller's blocked-issue cache needs the held candidate
        returned verbatim on the next pop."""
        q = make_queue()
        q.push(PrefetchRequest(0, 0.0))
        q.push(PrefetchRequest(64, 0.0))
        head = q.pop_candidate(0.0, None)
        q.push_back(head)
        assert len(q) == 2
        assert q.pop_candidate(1.0, None) is head

    def test_overflow_drops_oldest(self):
        q = make_queue(capacity=2)
        for block in (0, 64, 128):
            q.push(PrefetchRequest(block, 0.0))
        assert q.dropped_overflow == 1
        assert q.pop_candidate(0.0, None).block == 64

    def test_len_includes_held_candidate(self):
        q = make_queue()
        q.push(PrefetchRequest(0, 0.0))
        held = q.pop_candidate(0.0, None)
        assert len(q) == 0
        q.push_back(held)
        assert len(q) == 1
        assert q.has_candidates()

    def test_flush_counts_held_and_queued(self):
        q = make_queue()
        for block in (0, 64, 128):
            q.push(PrefetchRequest(block, 0.0))
        q.push_back(q.pop_candidate(0.0, None))
        assert q.flush() == 3
        assert not q.has_candidates()
        assert len(q) == 0


# ----------------------------------------------------------------------
# Gaze mechanism: footprint learn / commit / replay
# ----------------------------------------------------------------------

def make_hier(prefetcher, **cfg):
    config = MachineConfig.tiny(**cfg)
    space = AddressSpace()
    return Hierarchy(config, space, prefetcher), space, config


class TestGazeMechanism:
    def region(self, space, config):
        return space.malloc(config.region_size, align=config.region_size)

    def test_first_access_opens_generation(self):
        gaze = GazePrefetcher()
        hier, space, config = make_hier(gaze)
        base = self.region(space, config)
        hier.access(base, now=0, ref_id="pc1")
        snap = gaze.stats_snapshot()
        assert snap["generations_opened"] == 1
        assert snap["patterns_committed"] == 0

    def test_agt_eviction_commits_footprint(self):
        gaze = GazePrefetcher(agt_entries=1)
        hier, space, config = make_hier(gaze)
        a = self.region(space, config)
        b = self.region(space, config)
        # Touch three blocks of region A (footprint {0, 2, 5}), then one
        # of region B: A's generation is LRU-evicted and committed.
        for index in (0, 2, 5):
            hier.access(a + index * config.block_size, now=index,
                        ref_id="pc1")
        hier.access(b, now=10, ref_id="pc2")
        snap = gaze.stats_snapshot()
        assert snap["patterns_committed"] == 1
        assert snap["patterns_live"] == 1

    def test_replay_rebases_pattern_onto_new_trigger(self):
        gaze = GazePrefetcher(agt_entries=1)
        hier, space, config = make_hier(gaze)
        bsize = config.block_size
        a = self.region(space, config)
        b = self.region(space, config)
        c = self.region(space, config)
        for index in (0, 2, 5):
            hier.access(a + index * bsize, now=index, ref_id="pc1")
        hier.access(b, now=10, ref_id="other")  # commit A's pattern
        # Fresh region, same trigger PC: the footprint replays, rebased.
        hier.access(c, now=20, ref_id="pc1")
        snap = gaze.stats_snapshot()
        assert snap["replays"] == 1
        assert snap["replayed_blocks"] == 2  # deltas {2, 5}
        queued = []
        while gaze.has_candidates():
            queued.append(gaze.pop_candidate(30, None).block)
        assert queued == [c + 2 * bsize, c + 5 * bsize]

    def test_replay_skips_resident_blocks(self):
        gaze = GazePrefetcher(agt_entries=1)
        hier, space, config = make_hier(gaze)
        bsize = config.block_size
        a = self.region(space, config)
        b = self.region(space, config)
        c = self.region(space, config)
        d = self.region(space, config)
        for index in (0, 2):
            hier.access(a + index * bsize, now=index, ref_id="pc1")
        hier.access(b, now=10, ref_id="other")  # commit A's pattern (2,)
        hier.access(c + 2 * bsize, now=20, ref_id="warm")  # make resident
        hier.access(d, now=30, ref_id="other2")  # evict C's generation
        hier.access(c, now=40, ref_id="pc1")  # fresh trigger in region C
        # Delta 2 rebases onto the (already resident) warmed block: the
        # replay queues nothing, but still counts as a replay.
        snap = gaze.stats_snapshot()
        assert snap["replays"] == 1
        assert not gaze.has_candidates()

    def test_replay_capped_by_region_size_knob(self):
        gaze = GazePrefetcher(agt_entries=1)
        hier, space, config = make_hier(gaze)
        bsize = config.block_size
        a = self.region(space, config)
        b = self.region(space, config)
        c = self.region(space, config)
        for index in range(8):  # full footprint
            hier.access(a + index * bsize, now=index, ref_id="pc1")
        hier.access(b, now=10, ref_id="other")
        gaze.queue.region_size = 2 * bsize  # adaptive throttle shrinks it
        hier.access(c, now=20, ref_id="pc1")
        assert gaze.stats_snapshot()["replayed_blocks"] <= 1


# ----------------------------------------------------------------------
# Chase mechanism: dependence training and chained descent
# ----------------------------------------------------------------------

def build_list(space, nodes, stride=256, link_offset=0):
    """A singly linked list of ``nodes`` heap records; returns their
    addresses.  ``stride`` spreads nodes across distinct blocks."""
    addrs = [space.malloc(stride, align=stride) for _ in range(nodes)]
    for here, there in zip(addrs, addrs[1:]):
        space.store_word(here + link_offset, there)
    return addrs


class TestChaseMechanism:
    def walk(self, hier, addrs, ref_id="walk", start=0, step=10_000):
        for i, addr in enumerate(addrs):
            hier.access(addr, now=start + i * step, ref_id=ref_id)

    def test_walk_trains_self_dependence(self):
        chase = ChasePrefetcher(confident=2)
        hier, space, config = make_hier(chase)
        addrs = build_list(space, 6)
        self.walk(hier, addrs)
        snap = chase.stats_snapshot()
        assert snap["pointer_loads"] >= 5
        assert snap["dependences_trained"] >= 2
        assert snap["dependences_live"] == 1

    def test_confident_walk_starts_chasing(self):
        chase = ChasePrefetcher(confident=2)
        hier, space, config = make_hier(chase)
        addrs = build_list(space, 8)
        # The first few node misses only train (below the confidence
        # bar); once p = p->next is confident, the walk's own misses
        # start chases ahead of the program.
        self.walk(hier, addrs[:2])
        assert chase.stats_snapshot()["chases_started"] == 0
        self.walk(hier, addrs[2:6], start=10**6)
        snap = chase.stats_snapshot()
        assert snap["chases_started"] >= 1
        assert snap["nodes_prefetched"] >= 1

    def test_chase_descends_multiple_levels(self):
        chase = ChasePrefetcher(confident=2)
        hier, space, config = make_hier(chase, recursive_depth=3)
        addrs = build_list(space, 12)
        self.walk(hier, addrs[:4])
        hier.access(addrs[4], now=10**6, ref_id="walk")
        hier.controller.drain(now=10**7)  # let continuations fill + follow
        snap = chase.stats_snapshot()
        assert snap["links_followed"] >= 2
        assert snap["nodes_prefetched"] >= 3

    def test_unconfident_pc_never_chases(self):
        chase = ChasePrefetcher(confident=2)
        hier, space, config = make_hier(chase)
        addrs = build_list(space, 6)
        self.walk(hier, addrs[:2])  # one training, below the bar
        hier.access(addrs[3], now=10**6, ref_id="never-seen")
        assert chase.stats_snapshot()["chases_started"] == 0


class TestChaseWorkloads:
    """End-to-end pointer-chase behavior on the paper's pointer codes."""

    def test_mcf_chases_with_depth(self):
        stats = run_workload("mcf", "chase", limit_refs=8000)
        pf = stats.prefetcher
        assert pf["chases_started"] > 0
        assert pf["links_followed"] > 0
        assert pf["nodes_prefetched"] > pf["chases_started"]

    def test_ammp_chase_is_accurate(self):
        base = run_workload("ammp", "none", limit_refs=8000)
        stats = run_workload("ammp", "chase", limit_refs=8000)
        assert stats.prefetcher["links_followed"] > 0
        assert stats.prefetch_accuracy > 0.5
        assert stats.coverage_over(base) > 0.2

    def test_gaze_covers_spatial_swim(self):
        # 20k refs: swim's streaming loads need a few region transitions
        # per PC before the PHT holds their footprints (each PC's first
        # region trains but cannot replay), so short horizons understate
        # coverage.
        base = run_workload("swim", "none", limit_refs=20000)
        stats = run_workload("swim", "gaze", limit_refs=20000)
        assert stats.prefetcher["replays"] > 0
        assert stats.prefetch_accuracy > 0.5
        assert stats.coverage_over(base) > 0.4
        assert stats.speedup_over(base) > 1.0


# ----------------------------------------------------------------------
# Differential byte-identity matrix
# ----------------------------------------------------------------------

@needs_numpy
class TestDifferentialMatrix:
    """Fused vs vectorized across all 18 workloads, both new engines."""

    @pytest.mark.parametrize("scheme", ("gaze", "chase"))
    @pytest.mark.parametrize("workload", workload_names())
    def test_vectorized_byte_identical(self, workload, scheme):
        assert result_json(workload, scheme, "vectorized") \
            == result_json(workload, scheme, "fused")


class TestReferencePath:
    """The unoptimized slow path agrees on a pointer-heavy subset."""

    @pytest.mark.parametrize("workload", ("mcf", "ammp", "swim", "twolf"))
    @pytest.mark.parametrize("scheme", ("gaze", "chase", "gaze-adaptive",
                                        "chase-adaptive"))
    def test_reference_byte_identical(self, workload, scheme):
        assert result_json(workload, scheme, reference=True) \
            == result_json(workload, scheme, "fused")


class TestCoRunBackends:
    @pytest.mark.parametrize("scheme", ("gaze", "chase"))
    def test_stepped_vs_fused_byte_identical(self, scheme):
        results = {}
        for backend in ("stepped", "fused"):
            spec = CoRunSpec.create(["mcf", "swim"], scheme,
                                    limit_refs=800, backend=backend)
            results[backend] = execute_corun(
                spec, solo_baseline=False).to_dict()
        assert json.dumps(results["stepped"], sort_keys=True) \
            == json.dumps(results["fused"], sort_keys=True)


# ----------------------------------------------------------------------
# Pareto frontier semantics
# ----------------------------------------------------------------------

class TestParetoFront:
    def test_dominated_point_excluded(self):
        assert pareto_front({"a": (1.0, 1.0), "b": (0.5, 0.5)}) == ["a"]

    def test_tradeoff_points_coexist(self):
        points = {"a": (1.0, 0.0), "b": (0.0, 1.0), "c": (0.4, 0.4)}
        assert pareto_front(points) == ["a", "b", "c"]

    def test_weak_domination_on_one_axis(self):
        # b matches a on x but loses on y: dominated.
        assert pareto_front({"a": (1.0, 1.0), "b": (1.0, 0.5)}) == ["a"]

    def test_coincident_points_both_survive(self):
        assert pareto_front({"a": (1.0, 1.0), "b": (1.0, 1.0)}) \
            == ["a", "b"]

    def test_none_valued_points_ignored(self):
        points = {"a": (1.0, 1.0), "broken": (None, 2.0)}
        assert pareto_front(points) == ["a"]


# ----------------------------------------------------------------------
# Arena golden-CSV round trip: cache, supervisor, serving layer
# ----------------------------------------------------------------------

ARENA_BENCHMARKS = ["mcf", "swim"]
ARENA_TEST_SCHEMES = ["none", "gaze", "chase"]
ARENA_REFS = 2000


def arena_csv_bytes(tmp_path, name, **ctx_kwargs):
    ctx = ExperimentContext(limit_refs=ARENA_REFS, **ctx_kwargs)
    rows = arena_rows(ctx, benchmarks=ARENA_BENCHMARKS,
                      schemes=ARENA_TEST_SCHEMES)
    path = os.path.join(str(tmp_path), name)
    write_arena_csv(path, rows)
    with open(path, "rb") as handle:
        return path, handle.read()


class TestArenaGoldenCSV:
    def test_cold_and_cached_runs_are_byte_identical(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        _, cold = arena_csv_bytes(tmp_path, "cold.csv", cache=cache)
        _, warm = arena_csv_bytes(tmp_path, "warm.csv", cache=cache)
        assert cold == warm

    def test_supervised_sweep_matches_direct(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        _, direct = arena_csv_bytes(tmp_path, "direct.csv", cache=cache)
        _, supervised = arena_csv_bytes(
            tmp_path, "supervised.csv", cache=cache,
            checkpoint=str(tmp_path / "sweep.ckpt"))
        assert direct == supervised

    def test_csv_reads_back_with_schema_columns(self, tmp_path):
        path, _ = arena_csv_bytes(tmp_path, "schema.csv")
        rows = read_arena_csv(path)
        assert len(rows) == len(ARENA_BENCHMARKS) * len(ARENA_TEST_SCHEMES)
        for row in rows:
            assert tuple(row) == ARENA_COLUMNS
        # 'none' anchors both frontiers in every workload.
        for row in rows:
            if row["scheme"] == "none":
                assert row["frontier_cov_traffic"] == "1"

    def test_served_cell_matches_direct_execution(self, tmp_path):
        """An arena cell run through the HTTP serving layer returns the
        byte-identical result the arena computed directly."""
        from repro.serve import JobManager, ServeClient, Server
        from repro.sim.runner import execute
        from repro.sim.stats import result_to_json

        spec = RunSpec.create("mcf", "gaze", limit_refs=ARENA_REFS)
        direct = result_to_json(execute(spec))
        manager = JobManager(cache=ResultCache(str(tmp_path / "cache")))
        server = Server(manager, port=0)
        port = server.start()
        try:
            client = ServeClient("http://127.0.0.1:%d" % port)
            submitted = client.submit([spec])
            client.wait(submitted["job"])
            _status, body, _etag = client.result_bytes(
                submitted["digests"][0])
            assert body.decode() == direct
        finally:
            server.stop()
