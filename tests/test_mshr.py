"""Unit tests for the MSHR file."""

import pytest

from repro.mem.mshr import MSHRFile


class TestAllocation:
    def test_counts_outstanding(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x1000, ready=100, now=0)
        mshrs.allocate(0x2000, ready=120, now=0)
        assert mshrs.outstanding(0) == 2

    def test_reclaims_completed(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x1000, ready=100, now=0)
        assert mshrs.outstanding(101) == 0

    def test_overflow_raises(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(0x1000, ready=100, now=0)
        mshrs.allocate(0x2000, ready=100, now=0)
        with pytest.raises(RuntimeError):
            mshrs.allocate(0x3000, ready=100, now=0)

    def test_needs_positive_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(0)


class TestMerging:
    def test_lookup_returns_inflight_completion(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x1000, ready=250, now=0)
        assert mshrs.lookup(0x1000, now=10) == 250
        assert mshrs.merges == 1

    def test_lookup_misses_other_blocks(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x1000, ready=250, now=0)
        assert mshrs.lookup(0x2000, now=10) is None

    def test_lookup_after_completion_misses(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x1000, ready=250, now=0)
        assert mshrs.lookup(0x1000, now=300) is None


class TestBackPressure:
    def test_free_when_space(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(0x1000, ready=500, now=0)
        assert mshrs.earliest_free(10) == 10

    def test_full_returns_earliest_completion(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(0x1000, ready=500, now=0)
        mshrs.allocate(0x2000, ready=300, now=0)
        assert mshrs.earliest_free(10, record_stall=True) == 300
        assert mshrs.stalls == 1

    def test_probe_does_not_count_a_stall(self):
        # Regression: the prefetch controller probes earliest_free once
        # per issue opportunity; a single blocked prefetch used to inflate
        # the stall counter on every probe.
        mshrs = MSHRFile(2)
        mshrs.allocate(0x1000, ready=500, now=0)
        mshrs.allocate(0x2000, ready=300, now=0)
        for _ in range(5):
            assert mshrs.earliest_free(10) == 300
        assert mshrs.stalls == 0

    def test_demand_path_counts_each_stall(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(0x1000, ready=500, now=0)
        mshrs.earliest_free(10, record_stall=True)
        mshrs.earliest_free(20, record_stall=True)
        assert mshrs.stalls == 2

    def test_no_stall_recorded_when_free(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(0x1000, ready=500, now=0)
        assert mshrs.earliest_free(10, record_stall=True) == 10
        assert mshrs.stalls == 0

    def test_mlp_bounded_by_entries(self):
        """At most `entries` fills can be overlapping at any instant."""
        mshrs = MSHRFile(8)
        now = 0
        for k in range(20):
            free_at = mshrs.earliest_free(now)
            start = max(now, free_at)
            mshrs.allocate(0x1000 + k * 64, ready=start + 200, now=start)
            assert mshrs.outstanding(start) <= 8
            now = start + 10
