"""Tests for the scheme registry, runner, and statistics."""

import pytest

from repro.sim.config import MachineConfig
from repro.sim.runner import SCHEMES, run_workload
from repro.sim.stats import geometric_mean
from repro.workloads import get_workload, workload_names

FAST = dict(limit_refs=4000)


class TestRegistry:
    def test_all_paper_schemes_present(self):
        for scheme in ("none", "stride", "srp", "pointer",
                       "pointer-recursive", "grp", "grp-fix"):
            assert scheme in SCHEMES

    def test_adaptive_schemes_present(self):
        assert "srp-adaptive" in SCHEMES
        assert "grp-adaptive" in SCHEMES
        assert not SCHEMES["srp-adaptive"].hinted  # hint-free by design
        assert SCHEMES["grp-adaptive"].hinted

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            run_workload("swim", "bogus", **FAST)

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            run_workload("nonesuch", "none", **FAST)

    def test_workload_type_checked(self):
        with pytest.raises(TypeError):
            run_workload(42, "none", **FAST)

    def test_eighteen_benchmarks_registered(self):
        assert len(workload_names()) == 18

    def test_categories_and_languages(self):
        for name in workload_names():
            workload = get_workload(name)
            assert workload.category in ("int", "fp")
            assert workload.language in ("c", "fortran")
        fortran = [n for n in workload_names()
                   if get_workload(n).language == "fortran"]
        assert sorted(fortran) == ["applu", "apsi", "mgrid", "swim",
                                   "wupwise"]


class TestRunResults:
    def test_stats_fields_populated(self):
        stats = run_workload("vpr", "grp", **FAST)
        assert stats.workload == "vpr"
        assert stats.scheme == "grp"
        assert stats.instructions > 0
        assert stats.cycles > 0
        assert 0 < stats.ipc <= 4.0
        assert stats.traffic_bytes > 0

    def test_deterministic_across_runs(self):
        a = run_workload("mcf", "srp", **FAST)
        b = run_workload("mcf", "srp", **FAST)
        assert a.cycles == b.cycles
        assert a.traffic_bytes == b.traffic_bytes

    def test_perfect_l2_bounds_real(self):
        real = run_workload("swim", "none", **FAST)
        perfect = run_workload("swim", "none", mode="perfect_l2", **FAST)
        assert perfect.ipc >= real.ipc

    def test_perfect_l1_bounds_perfect_l2(self):
        l2 = run_workload("swim", "none", mode="perfect_l2", **FAST)
        l1 = run_workload("swim", "none", mode="perfect_l1", **FAST)
        assert l1.ipc >= l2.ipc * 0.99

    def test_summary_roundtrip(self):
        stats = run_workload("gzip", "stride", **FAST)
        summary = stats.summary()
        assert summary["workload"] == "gzip"
        assert summary["ipc"] == pytest.approx(stats.ipc)

    def test_config_override_respected(self):
        big = run_workload("swim", "none",
                           config=MachineConfig.scaled(l2_size=1 << 20),
                           **FAST)
        small = run_workload("swim", "none",
                             config=MachineConfig.scaled(l2_size=1 << 15),
                             **FAST)
        assert big.l2_demand_misses <= small.l2_demand_misses

    def test_policy_passed_through(self):
        # Policies change hints, not correctness; all must run.
        for policy in ("conservative", "default", "aggressive"):
            stats = run_workload("swim", "grp", policy=policy, **FAST)
            assert stats.instructions > 0


class TestDerivedMetrics:
    def test_speedup_identity(self):
        base = run_workload("vpr", "none", **FAST)
        assert base.speedup_over(base) == pytest.approx(1.0)

    def test_traffic_ratio_identity(self):
        base = run_workload("vpr", "none", **FAST)
        assert base.traffic_ratio_over(base) == pytest.approx(1.0)

    def test_coverage_identity_is_zero(self):
        base = run_workload("vpr", "none", **FAST)
        assert base.coverage_over(base) == pytest.approx(0.0)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([1.0, 1.0, 1.0]) == pytest.approx(1.0)


class TestSchemeSanity:
    """Cheap end-to-end invariants across every (workload, scheme)."""

    @pytest.mark.parametrize("scheme", ["stride", "srp", "grp"])
    def test_no_scheme_catastrophically_degrades(self, scheme):
        for name in ("vpr", "swim", "mcf"):
            base = run_workload(name, "none", **FAST)
            stats = run_workload(name, scheme, **FAST)
            assert stats.speedup_over(base) > 0.7

    def test_grp_traffic_at_most_srp(self):
        for name in ("vpr", "bzip2", "twolf"):
            srp = run_workload(name, "srp", limit_refs=8000)
            grp = run_workload(name, "grp", limit_refs=8000)
            assert grp.traffic_bytes <= srp.traffic_bytes * 1.05

    def test_accuracy_in_unit_range(self):
        for scheme in ("stride", "srp", "grp"):
            stats = run_workload("equake", scheme, **FAST)
            assert 0.0 <= stats.prefetch_accuracy <= 1.0
