"""Differential tests for the fused multi-core co-run backend.

The fused skip-ahead scheduler must produce byte-identical
``CoRunResult.to_dict()`` output to the stepped reference loop for every
spec both can run: all 15 pairs of the representative co-run mix under
every scheme family, and the 18-core rush-hour mix.  Also covered: the
fused backend's decline-and-fall-back contract for TLB configurations,
``CoRunSpec.backend`` digest sensitivity and serialization, and the
``REPRO_CORUN_BACKEND`` resolution rules.
"""

import itertools
import json

import pytest

from repro.experiments.corun import CORUN_BENCHMARKS
from repro.sim.config import MachineConfig
from repro.sim.multicore import MultiCoreSimulator, execute_corun
from repro.sim.multicore_fused import FusedMultiCoreSimulator, supports
from repro.sim.runner import resolve_corun_backend
from repro.sim.spec import CORUN_BACKENDS, CoRunSpec

#: Small per-core trace length: long enough to exercise shared-L2
#: contention, prefetch traffic, and cross-core pollution; short enough
#: that the 15x4 differential matrix stays in tier-1 budget.
REFS = 400

PAIRS = list(itertools.combinations(CORUN_BENCHMARKS, 2))
SCHEMES = ["none", "srp", "grp", "srp-adaptive"]

RUSH_HOUR = ["mcf", "swim", "art", "ammp", "equake", "mesa"] * 3


def both_backends(workloads, scheme, refs=REFS, config=None):
    """Stepped and fused results for one co-run, as plain dicts."""
    results = {}
    for backend in ("stepped", "fused"):
        spec = CoRunSpec.create(workloads, scheme, config=config,
                                limit_refs=refs, backend=backend)
        results[backend] = execute_corun(spec, solo_baseline=False).to_dict()
    return results


class TestDifferentialMatrix:
    """Fused vs stepped over every pair x scheme: byte-identical."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("pair", PAIRS,
                             ids=["+".join(p) for p in PAIRS])
    def test_pair_byte_identical(self, pair, scheme):
        results = both_backends(list(pair), scheme)
        assert json.dumps(results["stepped"], sort_keys=True) \
            == json.dumps(results["fused"], sort_keys=True)

    def test_rush_hour_byte_identical(self):
        results = both_backends(RUSH_HOUR, "srp", refs=250)
        assert json.dumps(results["stepped"], sort_keys=True) \
            == json.dumps(results["fused"], sort_keys=True)

    def test_solo_baseline_summary_identical(self):
        """The fairness/slowdown summary block matches too."""
        outs = {}
        for backend in ("stepped", "fused"):
            spec = CoRunSpec.create(["mcf", "swim"], "srp",
                                    limit_refs=REFS, backend=backend)
            outs[backend] = execute_corun(spec).to_dict()
        assert outs["stepped"] == outs["fused"]


class TestFusedDecline:
    """TLB configs are out of the fused envelope: decline, fall back."""

    def test_supports_rejects_tlb(self):
        assert supports(MachineConfig.scaled())
        assert not supports(MachineConfig.scaled(tlb_entries=32))

    def test_constructor_rejects_tlb(self):
        spec = CoRunSpec.create(
            ["mcf", "swim"], "srp", limit_refs=REFS,
            config=MachineConfig.scaled(tlb_entries=32))
        with pytest.raises(ValueError):
            FusedMultiCoreSimulator(spec)

    def test_execute_corun_falls_back_to_stepped(self):
        """A fused request on a TLB config degrades, never errors —
        and the result equals an explicit stepped run."""
        config = MachineConfig.scaled(tlb_entries=32)
        results = both_backends(["mcf", "swim"], "srp", config=config)
        assert results["stepped"] == results["fused"]

    def test_fused_used_when_supported(self):
        """On a plain config a fused request really builds the fused
        simulator (guards against a silent always-fall-back bug)."""
        spec = CoRunSpec.create(["mcf", "swim"], "none",
                                limit_refs=REFS, backend="fused")
        assert supports(spec.machine_config())
        sim = FusedMultiCoreSimulator(spec)
        assert sim.COMPILED_CELLS
        for cell in sim.cells:
            assert cell.trace is not None
            assert cell.events is None

    def test_stepped_cells_keep_event_streams(self):
        spec = CoRunSpec.create(["mcf", "swim"], "none",
                                limit_refs=REFS, backend="stepped")
        sim = MultiCoreSimulator(spec)
        for cell in sim.cells:
            assert cell.trace is None
            assert cell.events is not None


class TestBackendField:
    """CoRunSpec.backend: validation, serialization, digest."""

    def test_create_validates_backend(self):
        with pytest.raises(ValueError):
            CoRunSpec.create(["mcf"], "none", backend="warp")

    def test_round_trip_preserves_backend(self):
        for backend in CORUN_BACKENDS:
            spec = CoRunSpec.create(["mcf", "swim"], "srp",
                                    limit_refs=REFS, backend=backend)
            again = CoRunSpec.from_dict(spec.to_dict())
            assert again.backend == backend
            assert again == spec

    def test_from_dict_rejects_unknown_backend(self):
        payload = CoRunSpec.create(["mcf"], "none").to_dict()
        payload["backend"] = "warp"
        with pytest.raises(ValueError):
            CoRunSpec.from_dict(payload)

    def test_missing_backend_means_auto(self):
        payload = CoRunSpec.create(["mcf"], "none").to_dict()
        del payload["backend"]
        assert CoRunSpec.from_dict(payload).backend == "auto"

    def test_backend_rides_in_digest(self):
        digests = {
            CoRunSpec.create(["mcf", "swim"], "srp",
                             backend=backend).digest()
            for backend in CORUN_BACKENDS
        }
        assert len(digests) == len(CORUN_BACKENDS)


class TestBackendResolution:
    """resolve_corun_backend: pins, the env var, and the auto default."""

    def test_auto_defaults_to_fused(self, monkeypatch):
        monkeypatch.delenv("REPRO_CORUN_BACKEND", raising=False)
        assert resolve_corun_backend("auto") == "fused"
        assert resolve_corun_backend(None) == "fused"

    def test_env_var_steers_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORUN_BACKEND", "stepped")
        assert resolve_corun_backend("auto") == "stepped"

    def test_explicit_pin_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORUN_BACKEND", "stepped")
        assert resolve_corun_backend("fused") == "fused"

    def test_unknown_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORUN_BACKEND", "warp")
        with pytest.raises(ValueError):
            resolve_corun_backend("auto")

    def test_unknown_pin_raises(self):
        with pytest.raises(ValueError):
            resolve_corun_backend("warp")
