"""Tests for the observability layer: prefetch timeliness, pollution
attribution, interval time series, structured tracing, and the metrics'
round-trip through SimStats, JSON, and the persistent result cache."""

import json

import pytest

from repro.mem.cache import Cache
from repro.metrics import (
    SAMPLE_COLUMNS,
    IntervalSeries,
    TraceSink,
    read_trace,
)
from repro.report.export import SUMMARY_COLUMNS, runs_to_csv
from repro.sim.batch import run_batch, trace_path_for
from repro.sim.cache import ResultCache
from repro.sim.runner import execute, run_workload
from repro.sim.spec import RunSpec
from repro.sim.stats import SimStats

FAST = dict(limit_refs=4000)


class TestIntervalSeries:
    def test_due_and_record(self):
        series = IntervalSeries(("a",), interval=100, max_points=8)
        assert not series.due(50)
        assert series.due(100)
        series.record(100, (7,))
        assert not series.due(150)
        assert series.due(200)
        assert series.points == [[100, 7]]

    def test_decimation_bounds_memory(self):
        series = IntervalSeries(("a",), interval=10, max_points=8)
        for i in range(1, 101):
            now = i * 10
            if series.due(now):
                series.record(now, (i,))
        assert len(series.points) < 8
        assert series.interval > 10

    def test_decimation_keeps_cumulative_columns_usable(self):
        # Cumulative columns survive decimation: the retained points are
        # still monotone totals, so rates can be recovered by differencing.
        series = IntervalSeries(("total",), interval=1, max_points=4)
        total = 0
        for now in range(1, 40):
            if series.due(now):
                total += 5
                series.record(now, (total,))
        values = [p[1] for p in series.points]
        assert values == sorted(values)

    def test_snapshot_is_plain_data(self):
        series = IntervalSeries(("a", "b"), interval=10, max_points=8)
        series.record(10, (1, 2))
        snap = series.snapshot()
        assert snap == json.loads(json.dumps(snap))
        assert snap["columns"] == ["a", "b"]
        assert snap["points"] == [[10, 1, 2]]

    def test_validation(self):
        with pytest.raises(ValueError):
            IntervalSeries(("a",), interval=0)
        with pytest.raises(ValueError):
            IntervalSeries(("a",), max_points=2)


class TestTraceSink:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceSink(str(path)) as sink:
            sink.emit("pf_issue", 10, block=0x1000)
            sink.emit("sample", 20.5, mshr=3)
        events = read_trace(str(path))
        assert events == [
            {"ev": "pf_issue", "t": 10, "block": 0x1000},
            {"ev": "sample", "t": 20.5, "mshr": 3},
        ]
        assert sink.events_written == 2


def make_tiny_cache():
    # One set, two ways: evictions are deterministic and easy to stage.
    return Cache("L2", 128, 2, 64, 8)


class TestPollutionAttribution:
    def test_prefetch_eviction_then_demand_miss_is_pollution(self):
        cache = make_tiny_cache()
        cache.fill(0x0)
        cache.fill(0x40)
        cache.fill(0x80, prefetched=True)  # evicts LRU 0x0
        assert cache.stats.prefetch_evictions == 1
        assert not cache.access(0x0)
        assert cache.stats.pollution_misses == 1

    def test_demand_eviction_is_not_pollution(self):
        cache = make_tiny_cache()
        cache.fill(0x0)
        cache.fill(0x40)
        cache.fill(0x80)  # demand fill evicts 0x0
        assert not cache.access(0x0)
        assert cache.stats.pollution_misses == 0
        assert cache.stats.prefetch_evictions == 0

    def test_refill_clears_shadow_entry(self):
        cache = make_tiny_cache()
        cache.fill(0x0)
        cache.fill(0x40)
        cache.fill(0x80, prefetched=True)  # shadows 0x0
        cache.fill(0x0)  # back in: pollution attribution is moot
        cache.invalidate(0x0)
        assert not cache.access(0x0)
        assert cache.stats.pollution_misses == 0

    def test_pollution_charged_once(self):
        cache = make_tiny_cache()
        cache.fill(0x0)
        cache.fill(0x40)
        cache.fill(0x80, prefetched=True)
        cache.access(0x0)
        cache.access(0x0)  # second miss to the same block
        assert cache.stats.pollution_misses == 1

    def test_shadow_is_bounded(self):
        cache = make_tiny_cache()
        cache.fill(0x0)
        cache.fill(0x40)
        for i in range(2, 50):
            cache.fill(0x40 * i, prefetched=True)
        assert len(cache._shadow) <= cache._shadow_capacity

    def test_counters_in_snapshot(self):
        cache = make_tiny_cache()
        snap = cache.stats.snapshot()
        assert snap["pollution_misses"] == 0
        assert snap["prefetch_evictions"] == 0


class RecordingObserver:
    def __init__(self):
        self.events = []

    def on_fill(self, cache, block, prefetched):
        self.events.append(("fill", block, prefetched))

    def on_evict(self, cache, block, prefetched, referenced, by_prefetch):
        self.events.append(("evict", block, by_prefetch))

    def on_demand_hit(self, cache, block, first_use):
        self.events.append(("hit", block, first_use))

    def on_demand_miss(self, cache, block, polluted):
        self.events.append(("miss", block, polluted))


class TestCacheObserver:
    def test_hooks_fire_with_expected_arguments(self):
        cache = make_tiny_cache()
        observer = RecordingObserver()
        cache.observer = observer
        cache.fill(0x0)
        cache.fill(0x40, prefetched=True)
        cache.access(0x40)  # first use of a prefetched line
        cache.fill(0x80, prefetched=True)  # evicts a victim
        cache.access(0x200)  # miss
        kinds = [e[0] for e in observer.events]
        assert kinds == ["fill", "fill", "hit", "evict", "fill", "miss"]
        assert ("hit", 0x40, True) in observer.events

    def test_no_observer_is_default(self):
        assert make_tiny_cache().observer is None


class TestTimeliness:
    @pytest.mark.parametrize("scheme", ["srp", "grp"])
    def test_classification_partitions_prefetch_fills(self, scheme):
        stats = run_workload("swim", scheme, **FAST)
        timeliness = stats.metrics["timeliness"]
        assert timeliness["prefetch_fills"] == (
            timeliness["timely"] + timeliness["late"]
            + timeliness["useless_evicted"] + timeliness["never_referenced"]
        )
        assert timeliness["prefetch_fills"] > 0

    def test_stream_buffer_scheme_has_no_l2_prefetch_fills(self):
        # Stride's stream buffers hold blocks privately (fills_l2=False),
        # so the L2-level classification is legitimately all-zero.
        stats = run_workload("swim", "stride", **FAST)
        assert stats.metrics["timeliness"]["prefetch_fills"] == 0

    def test_timely_prefetches_occur(self):
        stats = run_workload("swim", "grp", **FAST)
        assert stats.timely_prefetches > 0

    def test_baseline_has_no_prefetch_activity(self):
        stats = run_workload("swim", "none", **FAST)
        assert stats.metrics["timeliness"]["prefetch_fills"] == 0
        assert stats.pollution_misses == 0

    def test_utilization_in_unit_range(self):
        stats = run_workload("mcf", "srp", **FAST)
        dram = stats.metrics["dram"]
        assert 0.0 < stats.mean_channel_utilization <= 1.0
        for util in dram["channel_utilization"]:
            assert 0.0 <= util <= 1.0
        assert len(dram["channel_utilization"]) == 4

    def test_time_series_sampled(self):
        stats = run_workload("swim", "grp", **FAST)
        series = stats.metrics["timeseries"]
        assert series["columns"] == list(SAMPLE_COLUMNS)
        assert len(series["points"]) > 0
        cycles = [p[0] for p in series["points"]]
        assert cycles == sorted(cycles)


class TestMetricsRoundTrip:
    def test_json_round_trip_is_lossless(self):
        stats = run_workload("vpr", "grp", **FAST)
        rebuilt = SimStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert rebuilt.metrics == stats.metrics
        assert rebuilt.timely_prefetches == stats.timely_prefetches
        assert rebuilt.pollution_misses == stats.pollution_misses
        assert rebuilt.mean_channel_utilization == \
            stats.mean_channel_utilization
        assert rebuilt.summary() == stats.summary()

    def test_result_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec.create("vpr", "srp", **FAST)
        stats = execute(spec)
        cache.put(spec, stats)
        cached = cache.get(spec)
        assert cached.metrics == stats.metrics
        assert cached.to_dict() == stats.to_dict()

    def test_stale_entry_without_metrics_is_a_miss(self, tmp_path):
        # Entries written before the metrics field existed must be
        # re-simulated, not returned without their metrics.
        cache = ResultCache(tmp_path)
        spec = RunSpec.create("vpr", "srp", **FAST)
        cache.put(spec, execute(spec))
        path = cache.path_for(spec)
        payload = json.loads(path.read_text())
        del payload["stats"]["metrics"]
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None

    def test_parallel_batch_carries_metrics(self):
        specs = [
            RunSpec.create("vpr", "grp", **FAST),
            RunSpec.create("swim", "srp", **FAST),
        ]
        serial = run_batch(specs, jobs=1)
        parallel = run_batch(specs, jobs=2)
        for s, p in zip(serial, parallel):
            assert s.metrics == p.metrics
            assert s.metrics["timeliness"]["prefetch_fills"] > 0


class TestTracing:
    def test_trace_file_written_and_consistent(self, tmp_path):
        path = tmp_path / "run.jsonl"
        stats = run_workload("swim", "grp", trace_path=str(path), **FAST)
        events = read_trace(str(path))
        assert events, "trace should contain events"
        kinds = {e["ev"] for e in events}
        assert kinds <= {"pf_issue", "pf_fill", "pf_drop", "pf_use",
                         "l2_miss", "evict", "fill", "sample", "summary"}
        assert events[-1]["ev"] == "summary"
        assert events[-1]["metrics"] == stats.metrics
        uses = [e for e in events if e["ev"] == "pf_use"]
        assert len(uses) == stats.timely_prefetches + stats.late_prefetches

    def test_tracing_does_not_change_results(self, tmp_path):
        plain = run_workload("vpr", "srp", **FAST)
        traced = run_workload("vpr", "srp",
                              trace_path=str(tmp_path / "t.jsonl"), **FAST)
        assert traced.to_dict() == plain.to_dict()

    def test_batch_trace_dir_writes_per_spec_traces(self, tmp_path):
        specs = [RunSpec.create("vpr", "srp", **FAST)]
        cache = ResultCache(tmp_path / "cache")
        run_batch(specs, jobs=1, cache=cache)  # warm the cache
        trace_dir = tmp_path / "traces"
        run_batch(specs, jobs=1, cache=cache, trace_dir=str(trace_dir))
        expected = trace_path_for(str(trace_dir), specs[0])
        assert read_trace(expected), "traced rerun must bypass cache reads"


class TestExportSchema:
    def test_summary_covers_the_stable_schema(self):
        stats = run_workload("vpr", "grp", **FAST)
        assert set(SUMMARY_COLUMNS) <= set(stats.summary())

    def test_csv_headers_are_the_schema(self):
        stats = run_workload("vpr", "none", **FAST)
        header = runs_to_csv([stats]).splitlines()[0]
        assert header.split(",") == list(SUMMARY_COLUMNS)
