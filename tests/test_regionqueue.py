"""Unit tests for the SRP/GRP prefetch queue."""

import pytest

from repro.prefetch.regionqueue import RegionQueue


def make_queue(capacity=4, region=512, block=64, resident=None,
               policy="lifo"):
    return RegionQueue(capacity, region, block,
                       is_resident=resident, policy=policy)


class TestAllocation:
    def test_first_miss_excludes_miss_block(self):
        queue = make_queue()
        entry = queue.allocate_region(0x1040, now=0)
        assert entry.base == 0x1000
        assert entry.candidate_count() == 7  # 8 blocks minus the miss
        assert not (entry.bitvec >> 1) & 1  # bit of the miss block clear

    def test_index_points_after_miss(self):
        queue = make_queue()
        entry = queue.allocate_region(0x1040, now=0)
        assert entry.index == 2

    def test_resident_blocks_excluded(self):
        resident = {0x1000, 0x1080}
        queue = make_queue(resident=lambda b: b in resident)
        entry = queue.allocate_region(0x1040, now=0)
        assert entry.candidate_count() == 5

    def test_repeat_miss_clears_bit_and_moves_to_head(self):
        queue = make_queue()
        queue.allocate_region(0x1040, now=0)
        queue.allocate_region(0x2000, now=1)
        entry = queue.allocate_region(0x1080, now=2)
        assert entry.base == 0x1000
        assert not (entry.bitvec >> 2) & 1
        assert queue._entries[0] is entry
        assert len(queue) == 2  # no duplicate entry

    def test_capacity_drops_oldest(self):
        queue = make_queue(capacity=2)
        queue.allocate_region(0x1000, now=0)
        queue.allocate_region(0x2000, now=1)
        queue.allocate_region(0x3000, now=2)
        bases = [e.base for e in queue._entries]
        assert 0x1000 not in bases
        assert queue.regions_dropped == 1


class TestIssueOrder:
    def test_lifo_issues_newest_region_first(self):
        queue = make_queue()
        queue.allocate_region(0x1000, now=0)
        queue.allocate_region(0x2000, now=1)
        request = queue.pop_candidate(now=10)
        assert 0x2000 <= request.block < 0x2200

    def test_fifo_issues_oldest_region_first(self):
        queue = make_queue(policy="fifo")
        queue.allocate_region(0x1000, now=0)
        queue.allocate_region(0x2000, now=1)
        request = queue.pop_candidate(now=10)
        assert 0x1000 <= request.block < 0x1200

    def test_candidates_start_after_miss_and_wrap(self):
        queue = make_queue()
        queue.allocate_region(0x1080, now=0)  # miss on block 2 of 8
        blocks = []
        while True:
            req = queue.pop_candidate(now=10)
            if req is None:
                break
            blocks.append(req.block)
        expected = [0x1000 + 64 * i for i in (3, 4, 5, 6, 7, 0, 1)]
        assert blocks == expected

    def test_exhausted_entry_deallocates(self):
        queue = make_queue()
        queue.allocate_region(0x1000, now=0)
        while queue.pop_candidate(now=10) is not None:
            pass
        assert len(queue) == 0

    def test_push_back_returns_same_candidate(self):
        queue = make_queue()
        queue.allocate_region(0x1000, now=0)
        request = queue.pop_candidate(now=10)
        queue.push_back(request)
        again = queue.pop_candidate(now=10)
        assert again is request


class TestOpenPagePreference:
    class FakeDram:
        def __init__(self, open_blocks):
            self.open_blocks = open_blocks

        def row_is_open(self, block):
            return block in self.open_blocks

    def test_prefers_open_page_candidate(self):
        queue = make_queue()
        queue.allocate_region(0x1000, now=0)  # miss block 0, index 1
        dram = self.FakeDram({0x1140})  # block 5 has an open page
        request = queue.pop_candidate(now=10, dram=dram)
        assert request.block == 0x1140

    def test_falls_back_to_scan_order(self):
        queue = make_queue()
        queue.allocate_region(0x1000, now=0)
        dram = self.FakeDram(set())
        request = queue.pop_candidate(now=10, dram=dram)
        assert request.block == 0x1040


class TestExplicitBlocks:
    def test_allocate_blocks_sets_named_bits(self):
        queue = make_queue()
        entries = queue.allocate_blocks([0x1080, 0x10C0], now=0, depth=3)
        assert len(entries) == 1
        assert entries[0].candidate_count() == 2
        assert entries[0].depth == 3

    def test_blocks_straddling_regions_split_per_region(self):
        # Regression: cross-region blocks were silently dropped — only the
        # first block's aligned region got an entry.
        queue = make_queue()
        entries = queue.allocate_blocks([0x1080, 0x5000], now=0)
        assert len(entries) == 2
        assert sorted(e.base for e in entries) == [0x1000, 0x5000]
        assert all(e.candidate_count() == 1 for e in entries)
        assert queue.region_splits == 1

    def test_split_issues_every_named_block(self):
        queue = make_queue()
        queue.allocate_blocks([0x11C0, 0x1200], now=0)  # boundary straddle
        issued = set()
        while True:
            req = queue.pop_candidate(now=10)
            if req is None:
                break
            issued.add(req.block)
        assert issued == {0x11C0, 0x1200}

    def test_single_region_does_not_count_a_split(self):
        queue = make_queue()
        queue.allocate_blocks([0x1080, 0x10C0], now=0)
        assert queue.region_splits == 0

    def test_all_resident_returns_empty_list(self):
        queue = make_queue(resident=lambda b: True)
        assert queue.allocate_blocks([0x1080], now=0) == []

    def test_empty_list_returns_empty_list(self):
        queue = make_queue()
        assert queue.allocate_blocks([], now=0) == []

    def test_depth_rides_into_requests(self):
        queue = make_queue()
        queue.allocate_blocks([0x1080], now=0, depth=5)
        request = queue.pop_candidate(now=10)
        assert request.depth == 5


class TestVariableRegionSize:
    def test_small_region_allocates_fewer_blocks(self):
        queue = make_queue(region=512)
        entry = queue.allocate_region(0x1040, now=0, region_size=128)
        assert entry.nblocks == 2
        assert entry.base == 0x1000
        assert entry.candidate_count() == 1

    def test_repeat_miss_matches_small_entry_by_containment(self):
        # Regression: the repeat-miss path recomputed the region base with
        # the *caller's* region size, so a default-size repeat miss could
        # miss (or alias) an entry allocated with a different size and
        # clear the wrong bitvector bit.
        queue = make_queue(region=512)
        entry = queue.allocate_region(0x1040, now=0, region_size=128)
        same = queue.allocate_region(0x1000, now=1)  # default (512) size
        assert same is entry
        assert entry.candidate_count() == 0  # bit 0 cleared, not bit 2
        assert len(queue) == 1

    def test_repeat_index_derived_from_entry_geometry(self):
        queue = make_queue(region=512)
        entry = queue.allocate_region(0x1040, now=0, region_size=128)
        queue.allocate_region(0x1000, now=1)
        assert entry.index == 1  # (miss 0 + 1) % entry.nblocks, not % 8

    def test_miss_outside_small_entry_span_allocates_fresh(self):
        queue = make_queue(region=512)
        small = queue.allocate_region(0x1040, now=0, region_size=128)
        other = queue.allocate_region(0x1100, now=1)
        assert other is not small
        assert other.base == 0x1000
        assert other.nblocks == 8
        assert small.candidate_count() == 1  # untouched

    def test_repeat_miss_into_large_entry_with_small_size(self):
        queue = make_queue(region=512)
        entry = queue.allocate_region(0x1000, now=0)
        same = queue.allocate_region(0x1080, now=1, region_size=128)
        assert same is entry
        assert not (entry.bitvec >> 2) & 1
