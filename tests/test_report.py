"""Tests for the reporting subpackage and trace persistence."""

import json

import pytest

from repro.experiments.common import ExperimentResult
from repro.report.bars import bar_chart, chart_from_result, grouped_bar_chart
from repro.report.export import result_to_csv, results_to_json
from repro.trace.events import IndirectPrefetch, LoopBound, MemRef, Ops
from repro.trace.store import (
    format_event,
    load_trace,
    parse_event,
    save_trace,
)


class TestBarChart:
    def test_bars_scale_to_peak(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_title_and_values_rendered(self):
        text = bar_chart(["x"], [3.14159], title="T", fmt="%.2f")
        assert text.startswith("T\n=")
        assert "3.14" in text

    def test_empty_chart(self):
        assert bar_chart([], []) == ""


class TestGroupedBarChart:
    def test_groups_and_legend(self):
        text = grouped_bar_chart(
            ["swim", "mcf"],
            {"srp": [1.0, 2.0], "grp": [1.5, 2.5]},
        )
        assert "legend:" in text
        assert "#=srp" in text and "==grp" in text

    def test_series_length_checked(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a"], {"s": [1.0, 2.0]})

    def test_chart_from_result(self):
        result = ExperimentResult(
            "Figure X", ["bench", "srp", "grp"],
            [["swim", 1.0, 1.2], ["mcf", 2.0, 1.8]],
        )
        text = chart_from_result(result, {"srp": 1, "grp": 2})
        assert text.startswith("Figure X")
        assert "swim" in text and "mcf" in text


class TestExport:
    def make_result(self):
        return ExperimentResult("T", ["bench", "v"], [["a", 1.5], ["b", 2]],
                                notes="n")

    def test_csv_roundtrip_shape(self):
        text = result_to_csv(self.make_result())
        lines = text.strip().splitlines()
        assert lines[0] == "bench,v"
        assert lines[1] == "a,1.5"

    def test_json_structure(self):
        payload = json.loads(results_to_json({"t": self.make_result()}))
        assert payload["t"]["headers"] == ["bench", "v"]
        assert payload["t"]["rows"] == [["a", 1.5], ["b", 2]]
        assert payload["t"]["notes"] == "n"


class TestTraceStore:
    EVENTS = [
        MemRef("p#r1", 0x1000, 8),
        MemRef("p#r2", 0x2008, 4, is_store=True),
        Ops(17),
        LoopBound(64),
        IndirectPrefetch(0x40000, 8, 0x5000),
    ]

    def test_event_roundtrip(self):
        for event in self.EVENTS:
            back = parse_event(format_event(event))
            assert type(back) is type(event)
            assert format_event(back) == format_event(event)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt"
        count = save_trace(iter(self.EVENTS), path)
        assert count == len(self.EVENTS)
        loaded = list(load_trace(path))
        assert [format_event(e) for e in loaded] == \
            [format_event(e) for e in self.EVENTS]

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\nL p 1000 8\n")
        events = list(load_trace(path))
        assert len(events) == 1

    def test_bad_line_rejected(self):
        with pytest.raises(ValueError):
            parse_event("Z nonsense")

    def test_replay_through_simulator(self, tmp_path):
        """A saved trace replays to identical results."""
        from repro.mem.space import AddressSpace
        from repro.sim.config import MachineConfig
        from repro.sim.simulator import Simulator
        from repro.trace.interp import Interpreter
        from repro.workloads import get_workload

        space = AddressSpace()
        built = get_workload("vpr").build(space)
        interp = Interpreter(built.program, space)
        path = tmp_path / "vpr.trace"
        save_trace(interp.run(limit=2000), path)

        config = MachineConfig.scaled()

        def run(events, fresh_space):
            sim = Simulator(config, fresh_space)
            return sim.run(events, workload="vpr", scheme="none")

        space2 = AddressSpace()
        built2 = get_workload("vpr").build(space2)
        interp2 = Interpreter(built2.program, space2)
        live = run(interp2.run(limit=2000), space2)
        replayed = run(load_trace(path), space2)
        assert replayed.cycles == live.cycles
        assert replayed.traffic_bytes == live.traffic_bytes


class TestSimCLI:
    def test_single_run(self, capsys):
        from repro.sim.__main__ import main

        main(["vpr", "grp", "--refs", "2000", "--baseline"])
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "speedup" in out

    def test_experiments_cli_subset(self, capsys):
        from repro.experiments.__main__ import main

        main(["table3", "--refs", "1000"])
        out = capsys.readouterr().out
        assert "Table 3" in out
