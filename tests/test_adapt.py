"""Tests for the feedback-directed adaptive prefetch control loop."""

import json
from types import SimpleNamespace

import pytest

from repro.adapt import (
    ADAPT_POLICIES,
    AdaptiveController,
    EpochSample,
    FeedbackMonitor,
    KnobState,
    LadderPolicy,
    ThrottlePolicy,
    resolve_policy,
)
from repro.adapt.engines import AdaptiveGRPPrefetcher, AdaptiveSRPPrefetcher
from repro.mem.hierarchy import Hierarchy
from repro.mem.space import AddressSpace
from repro.sim.config import MachineConfig
from repro.sim.runner import run_workload
from repro.sim.stats import SimStats


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------

def fake_hierarchy(channels=2):
    """The minimal counter surface the monitor samples."""
    return SimpleNamespace(
        l2=SimpleNamespace(stats=SimpleNamespace(
            prefetch_fills=0, useful_prefetches=0,
            pollution_misses=0, demand_misses=0)),
        metrics=SimpleNamespace(timely_prefetch_uses=0,
                                late_prefetch_uses=0),
        dram=SimpleNamespace(channel_busy_cycles=[0.0] * channels),
    )


def mk_sample(accuracy=0.5, pollution_rate=0.0, late_fraction=0.0,
              dram_busy_frac=0.0, fills=100):
    useful = 0 if accuracy is None else int(round(accuracy * fills))
    return EpochSample(accesses=1000, cycles=5000.0, fills=fills,
                       useful=useful, accuracy=accuracy,
                       pollution_rate=pollution_rate,
                       late_fraction=late_fraction,
                       dram_busy_frac=dram_busy_frac, demand_misses=50)


GOOD = dict(accuracy=0.9, pollution_rate=0.0)
BAD = dict(accuracy=0.05, pollution_rate=0.2)
NEUTRAL = dict(accuracy=0.4, pollution_rate=0.05)

LEVELS = [
    {"region_size": 512, "issue_budget": 8, "insert_depth": 0},
    {"region_size": 1024, "issue_budget": 32, "insert_depth": 0},
    {"region_size": 4096, "issue_budget": 256, "insert_depth": 2},
]


def mk_policy(start_level=2, **overrides):
    params = dict(up_after=3, down_after=2, reenable_after=4, min_fills=16)
    params.update(overrides)
    return LadderPolicy(LEVELS, start_level, **params)


def knobs_for(policy):
    level = policy.levels[policy.level]
    return KnobState(level["region_size"], level["issue_budget"],
                     level["insert_depth"], enabled=True,
                     level=policy.level)


def make_adaptive(engine=None, **cfg):
    cfg.setdefault("adapt_epoch_accesses", 64)
    config = MachineConfig.tiny(**cfg)
    space = AddressSpace()
    engine = engine or AdaptiveSRPPrefetcher()
    hier = Hierarchy(config, space, engine)
    return hier, space, config, engine


# ----------------------------------------------------------------------
# Monitor: delta sampling, re-baselining ("reset at epoch boundaries")
# ----------------------------------------------------------------------

class TestFeedbackMonitor:
    def test_counters_rebaseline_at_epoch_boundary(self):
        hier = fake_hierarchy()
        monitor = FeedbackMonitor(hier)
        hier.l2.stats.prefetch_fills = 40
        hier.l2.stats.useful_prefetches = 10
        hier.l2.stats.demand_misses = 100
        first = monitor.sample(now=1000, accesses=512)
        assert first.fills == 40
        assert first.useful == 10
        assert first.demand_misses == 100
        assert first.cycles == 1000.0
        # Second epoch adds 20 fills / 15 useful; the sample must cover
        # only those — the cumulative counters are never zeroed.
        hier.l2.stats.prefetch_fills = 60
        hier.l2.stats.useful_prefetches = 25
        hier.l2.stats.demand_misses = 130
        second = monitor.sample(now=1800, accesses=512)
        assert second.fills == 20
        assert second.useful == 15
        assert second.demand_misses == 30
        assert second.cycles == 800.0
        assert hier.l2.stats.prefetch_fills == 60  # untouched
        assert monitor.samples_taken == 2

    def test_accuracy_none_without_fills(self):
        monitor = FeedbackMonitor(fake_hierarchy())
        sample = monitor.sample(now=100, accesses=64)
        assert sample.accuracy is None
        assert sample.fills == 0

    def test_accuracy_clamped_to_one(self):
        # First uses of fills from an earlier epoch can make the delta
        # ratio exceed 1; the signal is clamped, not wrapped.
        hier = fake_hierarchy()
        monitor = FeedbackMonitor(hier)
        hier.l2.stats.prefetch_fills = 50
        monitor.sample(now=100, accesses=64)
        hier.l2.stats.prefetch_fills = 60
        hier.l2.stats.useful_prefetches = 45
        sample = monitor.sample(now=200, accesses=64)
        assert sample.accuracy == 1.0

    def test_pollution_and_late_fractions(self):
        hier = fake_hierarchy()
        monitor = FeedbackMonitor(hier)
        hier.l2.stats.demand_misses = 200
        hier.l2.stats.pollution_misses = 50
        hier.metrics.timely_prefetch_uses = 30
        hier.metrics.late_prefetch_uses = 10
        sample = monitor.sample(now=100, accesses=64)
        assert sample.pollution_rate == pytest.approx(0.25)
        assert sample.late_fraction == pytest.approx(0.25)

    def test_dram_busy_fraction_mean_over_channels(self):
        hier = fake_hierarchy(channels=2)
        monitor = FeedbackMonitor(hier)
        hier.dram.channel_busy_cycles[0] = 300.0
        hier.dram.channel_busy_cycles[1] = 100.0
        sample = monitor.sample(now=1000, accesses=64)
        assert sample.dram_busy_frac == pytest.approx(0.2)

    def test_dram_busy_fraction_clamped(self):
        hier = fake_hierarchy(channels=1)
        monitor = FeedbackMonitor(hier)
        hier.dram.channel_busy_cycles[0] = 5000.0
        sample = monitor.sample(now=100, accesses=64)
        assert sample.dram_busy_frac == 1.0

    def test_sample_to_dict_json_safe(self):
        sample = mk_sample(accuracy=None, fills=0)
        data = json.loads(json.dumps(sample.to_dict()))
        assert data["accuracy"] is None
        assert data["fills"] == 0


# ----------------------------------------------------------------------
# LadderPolicy: classification, streaks, hysteresis
# ----------------------------------------------------------------------

class TestClassify:
    def test_high_pollution_is_bad(self):
        assert mk_policy().classify(mk_sample(**BAD)) == "bad"

    def test_low_accuracy_alone_is_neutral(self):
        # Cheap inaccuracy (no pollution, idle DRAM) is not worth
        # throttling.
        sample = mk_sample(accuracy=0.05, pollution_rate=0.0,
                           dram_busy_frac=0.1)
        assert mk_policy().classify(sample) == "neutral"

    def test_low_accuracy_with_busy_dram_is_bad(self):
        sample = mk_sample(accuracy=0.05, pollution_rate=0.0,
                           dram_busy_frac=0.95)
        assert mk_policy().classify(sample) == "bad"

    def test_good_needs_all_three_signals(self):
        policy = mk_policy()
        assert policy.classify(mk_sample(**GOOD)) == "good"
        late = mk_sample(accuracy=0.9, pollution_rate=0.0,
                         late_fraction=0.9)
        assert policy.classify(late) == "neutral"


class TestLadderHysteresis:
    def test_step_down_after_consecutive_bad(self):
        policy = mk_policy(start_level=2)
        knobs = knobs_for(policy)
        assert policy.decide(mk_sample(**BAD), knobs) is None
        settings = policy.decide(mk_sample(**BAD), knobs)
        assert settings is not None
        assert settings["level"] == 1
        assert settings["region_size"] == LEVELS[1]["region_size"]
        assert settings["enabled"] is True

    def test_step_up_after_consecutive_good(self):
        policy = mk_policy(start_level=0)
        knobs = knobs_for(policy)
        assert policy.decide(mk_sample(**GOOD), knobs) is None
        assert policy.decide(mk_sample(**GOOD), knobs) is None
        settings = policy.decide(mk_sample(**GOOD), knobs)
        assert settings is not None
        assert settings["level"] == 1

    def test_no_flapping_on_oscillating_accuracy(self):
        # The hysteresis contract: an alternating good/bad signal never
        # accumulates a streak, so the knobs never move.
        policy = mk_policy(start_level=1)
        knobs = knobs_for(policy)
        for i in range(40):
            sample = mk_sample(**(GOOD if i % 2 == 0 else BAD))
            assert policy.decide(sample, knobs) is None
        assert policy.level == 1

    def test_neutral_resets_both_streaks(self):
        policy = mk_policy(start_level=2)
        knobs = knobs_for(policy)
        assert policy.decide(mk_sample(**BAD), knobs) is None
        assert policy.decide(mk_sample(**NEUTRAL), knobs) is None
        assert policy.decide(mk_sample(**BAD), knobs) is None  # streak: 1
        assert policy.level == 2

    def test_no_signal_epoch_resets_streaks(self):
        policy = mk_policy(start_level=2, min_fills=16)
        knobs = knobs_for(policy)
        assert policy.decide(mk_sample(**BAD), knobs) is None
        quiet = mk_sample(fills=3, accuracy=0.0, pollution_rate=0.5)
        assert policy.decide(quiet, knobs) is None
        assert policy.decide(mk_sample(**BAD), knobs) is None
        assert policy.level == 2

    def test_top_rung_good_streak_holds(self):
        policy = mk_policy(start_level=len(LEVELS) - 1)
        knobs = knobs_for(policy)
        for _ in range(10):
            assert policy.decide(mk_sample(**GOOD), knobs) is None
        assert policy.level == len(LEVELS) - 1

    def test_disable_below_bottom_rung(self):
        policy = mk_policy(start_level=0)
        knobs = knobs_for(policy)
        assert policy.decide(mk_sample(**BAD), knobs) is None
        settings = policy.decide(mk_sample(**BAD), knobs)
        assert settings is not None
        assert settings["enabled"] is False

    def test_probation_reenable_after_disabled_epochs(self):
        policy = mk_policy(start_level=0, reenable_after=4)
        knobs = knobs_for(policy)
        knobs.enabled = False
        for _ in range(3):
            assert policy.decide(mk_sample(**BAD), knobs) is None
        settings = policy.decide(mk_sample(**BAD), knobs)
        assert settings is not None
        assert settings["enabled"] is True
        assert settings["level"] == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LadderPolicy([], 0)
        with pytest.raises(ValueError):
            LadderPolicy(LEVELS, len(LEVELS))

    def test_for_config_top_rung_matches_static_engine(self):
        config = MachineConfig.scaled()
        policy = LadderPolicy.for_config(config)
        start = policy.levels[policy.level]
        assert start["region_size"] == config.region_size
        assert start["insert_depth"] == 0

    def test_region_floor_two_blocks(self):
        config = MachineConfig.tiny()
        policy = LadderPolicy.for_config(config)
        for level in policy.levels:
            assert level["region_size"] >= 2 * config.block_size


class TestPolicyRegistry:
    def test_default_is_ladder(self):
        policy = resolve_policy(None, MachineConfig.tiny())
        assert isinstance(policy, LadderPolicy)

    def test_named_and_instance_specs(self):
        config = MachineConfig.tiny()
        static = resolve_policy("static", config)
        assert type(static) is ThrottlePolicy
        instance = LadderPolicy(LEVELS, 0)
        assert resolve_policy(instance, config) is instance

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            resolve_policy("bogus", MachineConfig.tiny())

    def test_registry_names(self):
        assert set(ADAPT_POLICIES) >= {"static", "ladder"}


# ----------------------------------------------------------------------
# Controller: knob application against the live hierarchy
# ----------------------------------------------------------------------

class TestKnobApplication:
    def test_controller_attached_and_discovered(self):
        hier, _, _, engine = make_adaptive()
        assert engine.adapt is not None
        assert hier.adapt is engine.adapt

    def test_static_engine_has_no_controller(self):
        config = MachineConfig.tiny()
        hier = Hierarchy(config, AddressSpace(), None)
        assert hier.adapt is None

    def test_initial_settings_are_not_knob_changes(self):
        hier, _, config, engine = make_adaptive()
        adapt = engine.adapt
        assert adapt.knob_changes == 0
        # The ladder starts on the static-equivalent rung.
        assert adapt.knobs.region_size == config.region_size
        assert adapt.knobs.insert_depth == 0
        assert adapt.knobs.enabled is True

    def test_region_size_reaches_queue(self):
        hier, _, _, engine = make_adaptive()
        engine.adapt._apply({"region_size": 128})
        assert engine.queue.region_size == 128
        assert engine.adapt.knobs.region_size == 128
        assert engine.adapt.knob_changes == 1

    def test_budget_and_depth_reach_hardware(self):
        hier, _, _, engine = make_adaptive()
        engine.adapt._apply({"issue_budget": 4, "insert_depth": 2})
        assert hier.controller.prefetch_budget == 4
        assert hier.l2.prefetch_insert_depth == 2
        # One _apply call is one knob change, however many knobs moved.
        assert engine.adapt.knob_changes == 1

    def test_noop_apply_counts_nothing(self):
        hier, _, _, engine = make_adaptive()
        knobs = engine.adapt.knobs
        engine.adapt._apply({"region_size": knobs.region_size,
                             "issue_budget": knobs.issue_budget})
        assert engine.adapt.knob_changes == 0

    def test_disable_flushes_queue_and_blocked_cache(self):
        hier, _, _, engine = make_adaptive()
        engine.queue.allocate_region(5, now=0.0)
        assert engine.queue.has_candidates()
        hier.controller._blocked_until = 999.0
        hier.controller._held_block = 7
        engine.adapt._apply({"enabled": False})
        assert not engine.adapt.knobs.enabled
        assert engine.adapt.flushed_candidates > 0
        assert not engine.queue.has_candidates()
        assert hier.controller._blocked_until == -1.0
        assert hier.controller._held_block == -1

    def test_disabled_engine_suppresses_misses(self):
        hier, space, _, engine = make_adaptive()
        engine.adapt._apply({"enabled": False})
        addr = space.malloc(1 << 14)
        hier.access(addr, now=0)
        assert engine.suppressed_misses >= 1
        assert not engine.queue.has_candidates()

    def test_epoch_boundary_fires_on_access_count(self):
        hier, _, _, engine = make_adaptive(adapt_epoch_accesses=64)
        adapt = engine.adapt
        for k in range(200):
            adapt.note_access(now=float(k))
        assert adapt.epochs == 3

    def test_epoch_accesses_must_be_positive(self):
        with pytest.raises(ValueError):
            make_adaptive(adapt_epoch_accesses=0)

    def test_trajectory_decimation_is_bounded(self):
        hier, _, config, engine = make_adaptive(adapt_epoch_accesses=8)
        adapt = AdaptiveController(engine, hier, config,
                                   policy=ThrottlePolicy(),
                                   max_trajectory=8)
        for k in range(8 * 40):
            adapt.note_access(now=float(k))
        assert adapt.epochs == 40
        trajectory = adapt.snapshot()["trajectory"]
        assert len(trajectory) <= 8
        assert adapt._traj_stride > 1
        epochs = [row["epoch"] for row in trajectory]
        assert epochs == sorted(epochs)
        # Decimation keeps rows spanning the whole run, not just a prefix.
        assert epochs[-1] > 20

    def test_snapshot_shape(self):
        hier, _, _, engine = make_adaptive()
        snap = engine.adapt.snapshot()
        assert snap["policy"] == "ladder"
        assert snap["epoch_accesses"] == 64
        assert set(snap["final"]) == {"region_size", "issue_budget",
                                      "insert_depth", "enabled", "level"}
        json.dumps(snap)  # must be JSON-serializable as-is


# ----------------------------------------------------------------------
# GRP-adaptive specifics
# ----------------------------------------------------------------------

class TestAdaptiveGRP:
    def test_region_cap_over_hint_size(self):
        hier, _, config, engine = make_adaptive(
            engine=AdaptiveGRPPrefetcher())
        cap = 2 * config.block_size
        engine.adapt._apply({"region_size": cap})

        class Hint:
            region_coeff = 0

        # No loop bound tracked yet -> the static engine would use the
        # full configured region; the adaptive knob caps it.
        assert engine._region_size_for(Hint()) == cap

    def test_stats_snapshot_reports_suppression(self):
        _, _, _, engine = make_adaptive(engine=AdaptiveGRPPrefetcher())
        snap = engine.stats_snapshot()
        assert "suppressed_misses" in snap
        assert "suppressed_directives" in snap


# ----------------------------------------------------------------------
# End to end: runner integration and serialization
# ----------------------------------------------------------------------

class TestEndToEnd:
    def test_adapt_snapshot_roundtrips_through_json(self):
        stats = run_workload(
            "mcf", "srp-adaptive", limit_refs=4000,
            config=MachineConfig.scaled(adapt_epoch_accesses=256))
        assert stats.adapt["epochs"] >= 10
        assert stats.adapt["trajectory"]
        restored = SimStats.from_dict(json.loads(json.dumps(
            stats.to_dict())))
        assert restored.adapt == stats.adapt

    def test_static_scheme_has_empty_adapt(self):
        stats = run_workload("mcf", "srp", limit_refs=2000)
        assert stats.adapt == {}

    def test_grp_adaptive_runs_and_reports(self):
        stats = run_workload(
            "swim", "grp-adaptive", limit_refs=4000,
            config=MachineConfig.scaled(adapt_epoch_accesses=256))
        assert stats.adapt["policy"] == "ladder"
        assert stats.instructions > 0

    def test_epoch_length_in_cache_key(self):
        # Different epoch lengths are different machines: the spec
        # canonicalization must keep them apart.
        from repro.sim.spec import RunSpec
        a = RunSpec.create("mcf", "srp-adaptive", limit_refs=2000,
                           config=MachineConfig.scaled(
                               adapt_epoch_accesses=256))
        b = RunSpec.create("mcf", "srp-adaptive", limit_refs=2000,
                           config=MachineConfig.scaled(
                               adapt_epoch_accesses=512))
        assert a.digest() != b.digest()
