"""Property-based tests (hypothesis) on core data structures and
invariants: cache capacity/LRU behaviour, region-queue bit accounting,
allocator non-overlap, MSHR bounds, affine arithmetic, and DRAM timing
monotonicity.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.ir import Affine
from repro.compiler.symbols import Var
from repro.mem.cache import Cache
from repro.mem.dram import DRAMConfig, DRAMSystem
from repro.mem.layout import block_base, region_base
from repro.mem.mshr import MSHRFile
from repro.mem.space import AddressSpace
from repro.prefetch.regionqueue import RegionQueue

addresses = st.integers(min_value=0, max_value=(1 << 30) - 1)


class TestCacheProperties:
    @given(st.lists(st.tuples(addresses, st.booleans()), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, ops):
        cache = Cache("c", 2048, 4, 64, 1)
        for addr, prefetched in ops:
            cache.fill(addr, prefetched=prefetched)
        assert len(cache) <= 2048 // 64
        for lines in cache._sets:
            assert len(lines) <= 4

    @given(st.lists(addresses, min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_fill_then_access_hits(self, addrs):
        cache = Cache("c", 4096, 4, 64, 1)
        addr = addrs[-1]
        cache.fill(addr)
        # Nothing else filled: the block must be resident.
        assert cache.contains(addr)

    @given(st.lists(st.tuples(addresses, st.sampled_from(["access", "fill",
                                                          "prefetch"])),
                    max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_no_duplicate_blocks_in_set(self, ops):
        cache = Cache("c", 2048, 4, 64, 1)
        for addr, op in ops:
            if op == "access":
                cache.access(addr)
            elif op == "fill":
                cache.fill(addr)
            else:
                cache.fill(addr, prefetched=True)
        blocks = list(cache.resident_blocks())
        assert len(blocks) == len(set(blocks))

    @given(st.lists(st.tuples(addresses, st.booleans(), st.booleans()),
                    max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_stats_balance(self, ops):
        cache = Cache("c", 2048, 4, 64, 1)
        for addr, is_fill, prefetched in ops:
            if is_fill:
                cache.fill(addr, prefetched=prefetched)
            else:
                cache.access(addr)
        stats = cache.stats
        assert stats.demand_hits + stats.demand_misses == \
            stats.demand_accesses
        assert stats.useful_prefetches <= stats.prefetch_fills
        assert stats.useless_evicted_prefetches <= stats.prefetch_fills


class TestRegionQueueProperties:
    @given(st.lists(addresses, min_size=1, max_size=64),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_issue_terminates_and_stays_in_region(self, misses, capacity):
        queue = RegionQueue(capacity, 4096, 64)
        for addr in misses:
            queue.allocate_region(block_base(addr, 64), now=0)
        bases = {region_base(a, 4096) for a in misses}
        issued = 0
        while True:
            req = queue.pop_candidate(now=10)
            if req is None:
                break
            issued += 1
            assert region_base(req.block, 4096) in bases
            assert issued <= capacity * 64
        assert len(queue) == 0

    @given(st.lists(addresses, min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_never_issues_missed_block(self, misses):
        """The demand miss block itself is never a prefetch candidate
        (unless a different miss re-set its region bit pattern)."""
        queue = RegionQueue(32, 4096, 64)
        addr = misses[0]
        queue.allocate_region(block_base(addr, 64), now=0)
        seen = set()
        while True:
            req = queue.pop_candidate(now=1)
            if req is None:
                break
            seen.add(req.block)
        assert block_base(addr, 64) not in seen

    @given(st.integers(min_value=0, max_value=63))
    @settings(max_examples=64, deadline=None)
    def test_candidate_count_is_blocks_minus_one(self, index):
        queue = RegionQueue(4, 4096, 64)
        entry = queue.allocate_region(0x40000 + index * 64, now=0)
        assert entry.candidate_count() == 63


class TestAllocatorProperties:
    @given(st.lists(st.integers(min_value=1, max_value=4096),
                    min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_allocations_never_overlap(self, sizes):
        space = AddressSpace()
        spans = []
        for size in sizes:
            base = space.malloc(size)
            spans.append((base, base + size))
        spans.sort()
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0

    @given(st.lists(st.integers(min_value=1, max_value=4096),
                    min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_heap_bounds_check_matches_allocations(self, sizes):
        space = AddressSpace()
        bases = [space.malloc(size) for size in sizes]
        for base, size in zip(bases, sizes):
            assert space.is_heap_address(base)
            assert space.is_heap_address(base + size - 1)


class TestMSHRProperties:
    @given(st.lists(st.tuples(addresses,
                              st.integers(min_value=1, max_value=500)),
                    max_size=100),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_outstanding_never_exceeds_capacity(self, requests, entries):
        mshrs = MSHRFile(entries)
        now = 0
        for addr, latency in requests:
            block = block_base(addr, 64)
            if mshrs.lookup(block, now) is None:
                start = max(now, mshrs.earliest_free(now))
                mshrs.allocate(block, start + latency, start)
                assert mshrs.outstanding(start) <= entries
            now += 7


class TestAffineProperties:
    @given(st.dictionaries(st.sampled_from("ijkl"),
                           st.integers(min_value=-8, max_value=8),
                           max_size=4),
           st.integers(min_value=-100, max_value=100),
           st.dictionaries(st.sampled_from("ijkl"),
                           st.integers(min_value=0, max_value=50),
                           min_size=4, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_evaluate_matches_manual_sum(self, coefs, const, env):
        affine = Affine({Var(n): c for n, c in coefs.items()}, const)
        expected = const + sum(c * env[n] for n, c in coefs.items())
        assert affine.evaluate(env) == expected

    @given(st.integers(min_value=-50, max_value=50),
           st.integers(min_value=-50, max_value=50),
           st.integers(min_value=0, max_value=20))
    @settings(max_examples=100, deadline=None)
    def test_addition_distributes(self, c1, c2, value):
        i = Var("i")
        a = Affine.of(i, coef=c1)
        b = Affine.of(i, coef=c2)
        env = {"i": value}
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)


class TestDRAMProperties:
    @given(st.lists(st.tuples(addresses,
                              st.integers(min_value=0, max_value=50)),
                    max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_completion_after_request(self, reqs):
        dram = DRAMSystem(DRAMConfig())
        now = 0
        for addr, gap in reqs:
            now += gap
            ready = dram.access(block_base(addr, 64), now)
            assert ready > now

    @given(st.lists(addresses, min_size=2, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_same_channel_transfers_never_overlap(self, addrs):
        dram = DRAMSystem(DRAMConfig(channels=1, transfer_cycles=10))
        starts = []
        for addr in addrs:
            free_before = dram.channel_free_at(block_base(addr, 64))
            dram.access(block_base(addr, 64), 0)
            starts.append(free_before)
        # channel_free times must be strictly increasing by >= transfer.
        frees = [starts[k + 1] - starts[k] for k in range(len(starts) - 1)]
        assert all(d >= 10 for d in frees)


class TestTraceProperties:
    @given(st.integers(min_value=1, max_value=5000))
    @settings(max_examples=20, deadline=None)
    def test_trace_limit_exact(self, limit):
        from repro.mem.space import AddressSpace
        from repro.trace.events import MemRef
        from repro.trace.interp import Interpreter
        from repro.workloads import get_workload

        space = AddressSpace()
        built = get_workload("vpr").build(space)
        interp = Interpreter(built.program, space)
        refs = sum(
            1 for e in interp.run(limit=limit) if isinstance(e, MemRef)
        )
        assert refs == limit
