"""Tests for the simulation service: HTTP API, job lifecycle,
byte-identical result serving, concurrent-client single-flight, ETag
revalidation, strict request validation, and graceful degradation of
crashing specs into ``failed:<kind>`` cells."""

import json
import threading

import pytest

from repro.serve import JobManager, QueueFull, ServeClient, ServeError, \
    Server
from repro.sim.cache import ResultCache, version_salt
from repro.sim.config import MachineConfig
from repro.sim.runner import execute
from repro.sim.spec import CoRunSpec, RunSpec, spec_from_dict
from repro.sim.stats import result_from_dict, result_to_json

REFS = 1500
SCHEMES = ("none", "srp", "grp", "srp-adaptive")
WORKLOADS = ("mcf", "swim", "vpr")


def tiny_spec(workload="swim", scheme="grp", refs=REFS, **kwargs):
    return RunSpec.create(workload, scheme, config=MachineConfig.tiny(),
                          limit_refs=refs, **kwargs)


def tiny_corun(workloads=("mcf", "swim"), scheme="srp", refs=800):
    return CoRunSpec.create(workloads, scheme,
                            config=MachineConfig.tiny(), limit_refs=refs)


class ServerFixture:
    """One running server + client over a private cache directory."""

    def __init__(self, cache_dir, **manager_kwargs):
        manager_kwargs.setdefault("workers", 4)
        self.manager = JobManager(cache_dir=str(cache_dir),
                                  **manager_kwargs)
        self.server = Server(self.manager, port=0)
        port = self.server.start()
        self.client = ServeClient("http://127.0.0.1:%d" % port)

    def close(self):
        self.server.stop()
        self.manager.shutdown()

    def run(self, spec, timeout=120.0):
        """Submit one spec, wait for the job, return its snapshot."""
        submitted = self.client.submit(spec)
        return submitted, self.client.wait(submitted["job"],
                                           timeout=timeout)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    fixture = ServerFixture(tmp_path_factory.mktemp("serve-cache"))
    yield fixture
    fixture.close()


class TestHealthAndStats:
    def test_healthz(self, served):
        data = served.client.healthz()
        assert data["status"] == "ok"
        assert data["version"] == version_salt()

    def test_stats_shape(self, served):
        stats = served.client.stats()
        assert stats["backlog"] > 0
        assert len(stats["workers"]) == 4
        assert {"hits", "misses", "hit_rate", "entries",
                "quarantined"} <= set(stats["cache"])
        assert set(stats["jobs"]) == {"queued", "running", "done",
                                      "failed"}


class TestByteIdenticalServing:
    """The acceptance bar: served JSON == direct execute(), per byte."""

    def test_runspec_matrix_byte_identical(self, served):
        specs = [tiny_spec(wl, sc) for wl in WORKLOADS for sc in SCHEMES]
        submitted, job = served.run(specs)
        assert job["state"] == "done"
        assert [cell["status"] for cell in job["cells"]] == \
            ["ok"] * len(specs)
        for spec, digest in zip(specs, submitted["digests"]):
            _status, body, etag = served.client.result_bytes(digest)
            assert body == result_to_json(execute(spec)).encode()
            assert etag == '"%s"' % digest

    def test_corunspec_matrix_byte_identical(self, served):
        from repro.sim.multicore import execute_corun

        specs = [tiny_corun(scheme=scheme) for scheme in SCHEMES]
        submitted, job = served.run(specs)
        assert job["state"] == "done"
        for spec, digest in zip(specs, submitted["digests"]):
            _status, body, _etag = served.client.result_bytes(digest)
            assert body == result_to_json(execute_corun(spec)).encode()

    def test_result_rehydrates(self, served):
        spec = tiny_spec("mcf", "none")
        submitted, _job = served.run(spec)
        stats = served.client.result(submitted["digests"][0])
        assert stats.workload == "mcf"
        assert stats.to_dict() == execute(spec).to_dict()


class TestCacheHitFastPath:
    def test_repeat_post_is_pure_cache_hit(self, served):
        spec = tiny_spec("swim", "srp")
        before = served.client.stats()["cells"]
        _sub1, job1 = served.run(spec)
        _sub2, job2 = served.run(spec)
        after = served.client.stats()["cells"]
        assert job1["state"] == job2["state"] == "done"
        # Exactly one simulation across both jobs; the repeat rode the
        # cache (first job may itself have been cached by an earlier
        # test, hence <=).
        assert after["computed"] - before["computed"] <= 1
        assert after["cached"] - before["cached"] >= 1

    def test_concurrent_identical_posts_compute_once(self, served):
        """N clients hammering one spec: one compute, N identical
        bodies."""
        spec = tiny_spec("vpr", "grp", refs=1700, seed=991)
        before = served.client.stats()["cells"]
        bodies, errors = [], []

        def hammer():
            try:
                submitted = served.client.submit(spec)
                served.client.wait(submitted["job"], timeout=120)
                _s, body, _e = served.client.result_bytes(
                    submitted["digests"][0])
                bodies.append(body)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        assert not errors
        assert len(bodies) == 8
        assert len(set(bodies)) == 1
        after = served.client.stats()["cells"]
        assert after["computed"] - before["computed"] == 1
        assert bodies[0] == result_to_json(execute(spec)).encode()


class TestETagRevalidation:
    def test_if_none_match_yields_304(self, served):
        submitted, _job = served.run(tiny_spec("mcf", "srp"))
        digest = submitted["digests"][0]
        status, body, etag = served.client.result_bytes(digest)
        assert status == 200 and body
        status2, body2, _ = served.client.result_bytes(digest, etag=etag)
        assert status2 == 304
        assert body2 == b""

    def test_stale_etag_yields_fresh_body(self, served):
        submitted, _job = served.run(tiny_spec("mcf", "srp"))
        digest = submitted["digests"][0]
        status, body, _ = served.client.result_bytes(
            digest, etag='"%s"' % ("0" * 64))
        assert status == 200 and body


class TestRequestValidation:
    def test_malformed_json_is_400(self, served):
        with pytest.raises(ServeError) as err:
            served.client._request("POST", "/runs", body=b"{nope")
        assert err.value.status == 400

    def test_unknown_workload_is_400(self, served):
        with pytest.raises(ServeError) as err:
            served.client.submit({"workload": "nope", "scheme": "grp"})
        assert err.value.status == 400
        assert "workload" in err.value.reason

    def test_unknown_scheme_is_400(self, served):
        with pytest.raises(ServeError) as err:
            served.client.submit({"workload": "swim", "scheme": "warp"})
        assert err.value.status == 400

    def test_unknown_field_is_400(self, served):
        with pytest.raises(ServeError) as err:
            served.client.submit({"workload": "swim", "scheme": "none",
                                  "frobnicate": 1})
        assert err.value.status == 400
        assert "frobnicate" in err.value.reason

    def test_bad_types_are_400(self, served):
        for field, value in (("limit_refs", -5), ("limit_refs", "x"),
                             ("scale", 0), ("seed", "abc"),
                             ("backend", "warp"), ("mode", "dreamy")):
            with pytest.raises(ServeError) as err:
                served.client.submit({"workload": "swim",
                                      "scheme": "none", field: value})
            assert err.value.status == 400

    def test_bad_corun_cell_is_400(self, served):
        with pytest.raises(ServeError) as err:
            served.client.submit({"corun": True, "cells": [
                {"workload": "swim", "scheme": "none"},
                {"workload": "bogus", "scheme": "none"},
            ]})
        assert err.value.status == 400
        assert "cell 1" in err.value.reason

    def test_empty_specs_list_is_400(self, served):
        with pytest.raises(ServeError) as err:
            served.client._request("POST", "/runs",
                                   body=json.dumps({"specs": []}).encode())
        assert err.value.status == 400

    def test_unknown_digest_is_404(self, served):
        with pytest.raises(ServeError) as err:
            served.client.result_bytes("f" * 64)
        assert err.value.status == 404

    def test_traversal_digest_is_404(self, served):
        with pytest.raises(ServeError) as err:
            served.client._request("GET", "/results/..%2f..%2fetc")
        assert err.value.status == 404

    def test_unknown_job_is_404(self, served):
        with pytest.raises(ServeError) as err:
            served.client.job("j999999")
        assert err.value.status == 404

    def test_unknown_endpoint_is_404(self, served):
        with pytest.raises(ServeError) as err:
            served.client._get_json("/frobnicate")
        assert err.value.status == 404

    def test_wrong_method_is_405(self, served):
        with pytest.raises(ServeError) as err:
            served.client._request("POST", "/healthz", body=b"{}")
        assert err.value.status == 405


class TestProgressStreaming:
    def test_stream_ends_with_job_snapshot(self, served):
        submitted = served.client.submit(tiny_spec("swim", "none"))
        records = list(served.client.stream_job(submitted["job"]))
        assert records, "stream must carry at least the terminal record"
        assert records[-1]["kind"] == "job"
        assert records[-1]["job"]["state"] == "done"
        kinds = {record["kind"] for record in records}
        assert "cell" in kinds or "sweep" in kinds

    def test_job_snapshot_reports_journal_progress(self, served):
        _submitted, job = served.run(tiny_spec("mcf", "grp"))
        journal = job["journal"]
        assert journal["done"] + journal["failed"] == journal["total"]
        assert journal["total"] == 1


class TestGracefulDegradation:
    def test_crashing_spec_degrades_to_failed_cell(self, tmp_path,
                                                   monkeypatch):
        plan = {"faults": [{"kind": "crash", "match": "gzip/stride",
                            "attempts": [0, 1, 2]}]}
        monkeypatch.setenv("REPRO_FAULT_PLAN", json.dumps(plan))
        fixture = ServerFixture(tmp_path / "cache", workers=1)
        try:
            good = tiny_spec("swim", "none")
            bad = tiny_spec("gzip", "stride")
            submitted, job = fixture.run([bad, good], timeout=120)
            assert job["state"] == "done"
            statuses = {cell["label"]: cell["status"]
                        for cell in job["cells"]}
            assert statuses["gzip/stride"] == "failed:crash"
            assert statuses["swim/none"] == "ok"
            # The failed cell has no result; the good one serves fine.
            with pytest.raises(ServeError) as err:
                fixture.client.result_bytes(submitted["digests"][0])
            assert err.value.status == 404
            _s, body, _e = fixture.client.result_bytes(
                submitted["digests"][1])
            assert body == result_to_json(execute(good)).encode()
            assert fixture.client.stats()["cells"]["failed"] == 1
            failed_cell = job["cells"][0]
            assert failed_cell["result"] is None
        finally:
            fixture.close()


class TestBackpressure:
    def test_bounded_queue_rejects_overflow(self, tmp_path):
        manager = JobManager(cache_dir=str(tmp_path / "cache"),
                             backlog=2)  # workers never started
        manager.submit([tiny_spec("swim", "none")])
        manager.submit([tiny_spec("mcf", "none")])
        with pytest.raises(QueueFull):
            manager.submit([tiny_spec("vpr", "none")])
        # The rejected job leaves no record behind.
        assert len(manager.jobs()) == 2


class TestSpecValidationUnit:
    """spec_from_dict(strict=True) — the POST /runs deserializer."""

    def test_round_trips_both_kinds(self):
        run = tiny_spec("swim", "grp")
        corun = tiny_corun()
        assert spec_from_dict(run.to_dict(), strict=True) == run
        assert spec_from_dict(corun.to_dict(), strict=True) == corun

    def test_dispatches_on_corun_marker(self):
        assert isinstance(spec_from_dict(tiny_corun().to_dict()),
                          CoRunSpec)
        assert isinstance(spec_from_dict(tiny_spec().to_dict()), RunSpec)

    def test_lenient_mode_still_constructs(self):
        data = {"workload": "swim", "scheme": "grp"}
        assert spec_from_dict(data).workload == "swim"

    def test_strict_rejects_non_dict(self):
        with pytest.raises(ValueError):
            spec_from_dict([1, 2], strict=True)

    def test_strict_rejects_missing_required(self):
        with pytest.raises(ValueError, match="workload"):
            spec_from_dict({"scheme": "grp"}, strict=True)

    def test_strict_rejects_bool_refs(self):
        with pytest.raises(ValueError, match="limit_refs"):
            spec_from_dict({"workload": "swim", "scheme": "none",
                            "limit_refs": True}, strict=True)

    def test_strict_rejects_bad_config(self):
        with pytest.raises(ValueError, match="config"):
            spec_from_dict({"workload": "swim", "scheme": "none",
                            "config": {"l1_size": 1024,
                                       "warp_factor": 9}}, strict=True)

    def test_strict_accepts_full_config(self):
        data = tiny_spec().to_dict()
        spec = spec_from_dict(data, strict=True)
        assert spec.machine_config().l1_size == \
            MachineConfig.tiny().l1_size

    def test_strict_rejects_empty_corun_cells(self):
        with pytest.raises(ValueError, match="cells"):
            spec_from_dict({"corun": True, "cells": []}, strict=True)


class TestDigestAddressing:
    """ResultCache.get_digest — the /results lookup primitive."""

    def test_digest_lookup_matches_spec_lookup(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec("swim", "none")
        stats = execute(spec)
        cache.put(spec, stats)
        digest = spec.digest(version_salt())
        assert cache.get_digest(digest).to_dict() == stats.to_dict()

    def test_digest_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_digest("e" * 64) is None
        assert cache.misses == 1

    def test_corrupt_digest_entry_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec("swim", "none")
        cache.put(spec, execute(spec))
        digest = spec.digest(version_salt())
        cache.path_for_digest(digest).write_text("{broken")
        assert cache.get_digest(digest) is None
        assert cache.quarantined == 1
