"""Tests for the resilient sweep supervisor: checkpoint/resume after a
kill, deterministic fault injection with retry-and-backoff, the failure
budget, and graceful degradation into RunFailure result slots."""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.report.export import SUMMARY_COLUMNS, runs_from_json, \
    runs_to_csv, runs_to_json
from repro.sim.batch import run_batch
from repro.sim.cache import ResultCache
from repro.sim.faults import FAULT_PLAN_ENV, FaultInjected, FaultPlan, \
    FaultRule
from repro.sim.spec import RunSpec
from repro.sim.stats import RunFailure, result_from_dict
from repro.sim.supervisor import Checkpoint, SweepAborted, SweepSupervisor

REFS = 2000

SPECS = [
    RunSpec.create("gzip", "none", limit_refs=REFS),
    RunSpec.create("gzip", "stride", limit_refs=REFS),
    RunSpec.create("swim", "none", limit_refs=REFS),
    RunSpec.create("swim", "grp", limit_refs=REFS),
]


def dicts(results):
    return [r.to_dict() for r in results]


@pytest.fixture(scope="module")
def baseline():
    return run_batch(SPECS, jobs=1)


class TestSupervisorMatchesBatch:
    def test_serial_supervised_equals_run_batch(self, baseline):
        supervisor = SweepSupervisor(SPECS, jobs=1)
        assert dicts(supervisor.run()) == dicts(baseline)
        assert supervisor.failures == []

    def test_parallel_with_checkpoint_equals_serial(self, baseline,
                                                    tmp_path):
        supervisor = SweepSupervisor(
            SPECS, jobs=2, checkpoint=str(tmp_path / "sweep.ckpt"))
        assert dicts(supervisor.run()) == dicts(baseline)

    def test_duplicate_specs_resolve_once(self, baseline):
        doubled = SPECS + SPECS[:2]
        seen = []
        supervisor = SweepSupervisor(
            doubled, progress=lambda d, t, s, c: seen.append((d, t)))
        results = supervisor.run()
        assert dicts(results[:len(SPECS)]) == dicts(baseline)
        assert dicts(results[len(SPECS):]) == dicts(baseline[:2])
        assert seen[-1] == (len(SPECS), len(SPECS))  # uniques only

    def test_cache_hits_are_journaled(self, baseline, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_batch(SPECS, jobs=1, cache=cache)
        ckpt = str(tmp_path / "sweep.ckpt")
        flags = []
        SweepSupervisor(SPECS, cache=cache, checkpoint=ckpt,
                        progress=lambda d, t, s, c: flags.append(c)).run()
        assert all(flags), "everything should come from the cache"
        # ...and the journal alone can now resurrect the whole sweep.
        resumed = SweepSupervisor(SPECS, cache=None, checkpoint=ckpt,
                                  resume=True)
        assert dicts(resumed.run()) == dicts(baseline)


class TestCheckpointResume:
    def test_resume_skips_done_cells(self, baseline, tmp_path):
        ckpt = str(tmp_path / "sweep.ckpt")
        SweepSupervisor(SPECS[:2], checkpoint=ckpt).run()
        cached_flags = {}
        supervisor = SweepSupervisor(
            SPECS, checkpoint=ckpt, resume=True,
            progress=lambda d, t, s, c: cached_flags.setdefault(s, c))
        assert dicts(supervisor.run()) == dicts(baseline)
        assert cached_flags[SPECS[0]] and cached_flags[SPECS[1]]
        assert not cached_flags[SPECS[2]] and not cached_flags[SPECS[3]]

    def test_resume_after_parent_sigkill(self, baseline, tmp_path):
        # A subprocess supervises the sweep serially and SIGKILLs itself
        # after two cells complete; the journal must carry those cells.
        ckpt = str(tmp_path / "sweep.ckpt")
        driver = (
            "import os, signal\n"
            "from repro.sim.spec import RunSpec\n"
            "from repro.sim.supervisor import SweepSupervisor\n"
            "specs = [RunSpec.create(b, s, limit_refs=%d) for b, s in %r]\n"
            "def die(done, total, spec, cached):\n"
            "    if done >= 2:\n"
            "        os.kill(os.getpid(), signal.SIGKILL)\n"
            "SweepSupervisor(specs, jobs=1, checkpoint=%r,\n"
            "                progress=die).run()\n"
            % (REFS, [(s.workload, s.scheme) for s in SPECS], ckpt))
        proc = subprocess.run(
            [sys.executable, "-c", driver],
            env=dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path)),
            capture_output=True, timeout=600)
        assert proc.returncode == -signal.SIGKILL
        done = [r for r in Checkpoint.load(ckpt).values()
                if r.get("state") == "done"]
        assert len(done) == 2
        resumed = SweepSupervisor(SPECS, jobs=2, checkpoint=ckpt,
                                  resume=True)
        assert runs_to_csv(resumed.run()) == runs_to_csv(baseline)

    def test_journal_tolerates_torn_tail(self, baseline, tmp_path):
        ckpt = str(tmp_path / "sweep.ckpt")
        SweepSupervisor(SPECS, checkpoint=ckpt).run()
        with open(ckpt, "a") as handle:
            handle.write('{"kind": "cell", "digest": "abc", "sta')
        resumed = SweepSupervisor(SPECS, checkpoint=ckpt, resume=True)
        flags = []
        resumed.progress = lambda d, t, s, c: flags.append(c)
        assert dicts(resumed.run()) == dicts(baseline)
        assert all(flags), "torn tail must not invalidate earlier records"

    def test_fresh_run_truncates_stale_journal(self, tmp_path):
        ckpt = str(tmp_path / "sweep.ckpt")
        SweepSupervisor(SPECS[:1], checkpoint=ckpt).run()
        SweepSupervisor(SPECS[1:2], checkpoint=ckpt).run()  # no resume
        states = Checkpoint.load(ckpt)
        assert len(states) == 1, "non-resume runs start a fresh journal"


class TestFaultRecovery:
    def test_crash_then_succeed(self, baseline):
        plan = FaultPlan([FaultRule("crash", match="gzip/stride",
                                    attempts=(0,))])
        supervisor = SweepSupervisor(SPECS, retries=1, retry_base=0.01,
                                     fault_plan=plan)
        assert dicts(supervisor.run()) == dicts(baseline)
        assert supervisor.failures == []

    def test_flaky_error_retries_until_success(self, baseline):
        plan = FaultPlan([FaultRule("error", match="swim/*",
                                    attempts=(0, 1))])
        supervisor = SweepSupervisor(SPECS, retries=2, retry_base=0.01,
                                     fault_plan=plan)
        assert dicts(supervisor.run()) == dicts(baseline)

    def test_hang_killed_at_timeout_then_retried(self, baseline):
        plan = FaultPlan([FaultRule("hang", match="gzip/none",
                                    attempts=(0,), seconds=60.0)])
        supervisor = SweepSupervisor(SPECS, retries=1, retry_base=0.01,
                                     timeout=1.0, fault_plan=plan)
        assert dicts(supervisor.run()) == dicts(baseline)

    def test_exhausted_retries_degrade_to_runfailure(self, baseline):
        plan = FaultPlan([FaultRule("error", match="gzip/stride",
                                    attempts=(0, 1, 2, 3))])
        supervisor = SweepSupervisor(SPECS, retries=1, retry_base=0.01,
                                     fault_plan=plan)
        results = supervisor.run()
        failure = results[1]
        assert not failure.ok
        assert failure.kind == "error"
        assert failure.attempts == 2
        assert "FaultInjected" in failure.error
        assert [r.label for r in supervisor.failures] == ["gzip/stride"]
        # Every other slot is untouched.
        others = [results[0], results[2], results[3]]
        assert dicts(others) == dicts(
            [baseline[0], baseline[2], baseline[3]])

    def test_failure_budget_aborts_sweep(self):
        plan = FaultPlan([FaultRule("error", attempts=(0, 1))])
        supervisor = SweepSupervisor(SPECS, retries=1, retry_base=0.01,
                                     max_failures=0, fault_plan=plan)
        with pytest.raises(SweepAborted) as excinfo:
            supervisor.run()
        assert excinfo.value.failures
        assert excinfo.value.failures[0].kind == "error"

    def test_corrupt_fault_reaches_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = SPECS[0]
        plan = FaultPlan([FaultRule("corrupt", match=spec.label())])
        SweepSupervisor([spec], cache=cache, fault_plan=plan).run()
        assert cache.get(spec) is None
        assert cache.quarantined == 1


class TestFaultPlan:
    def test_round_trip_and_env_inline(self):
        plan = FaultPlan([FaultRule("crash", match="a/*", attempts=(0, 2)),
                          FaultRule("error", rate=0.5, seed=7)])
        rebuilt = FaultPlan.from_dict(
            json.loads(json.dumps(plan.to_dict())))
        assert rebuilt.to_dict() == plan.to_dict()
        env = {FAULT_PLAN_ENV: json.dumps(plan.to_dict())}
        assert FaultPlan.from_env(env).to_dict() == plan.to_dict()
        assert FaultPlan.from_env({}) is None

    def test_env_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"faults": [{"kind": "error", "match": "x/*"}]}))
        plan = FaultPlan.from_env({FAULT_PLAN_ENV: str(path)})
        assert len(plan) == 1
        assert plan.rules[0].kind == "error"

    def test_attempt_matching(self):
        rule = FaultRule("error", match="swim/*", attempts=(0, 2))
        assert rule.applies("swim/grp", 0)
        assert not rule.applies("swim/grp", 1)
        assert rule.applies("swim/grp", 2)
        assert not rule.applies("gzip/grp", 0)

    def test_rate_is_deterministic_and_roughly_calibrated(self):
        rule = FaultRule("crash", rate=0.3, seed=42)
        decisions = [rule.applies("bench%d/grp" % i, 0)
                     for i in range(400)]
        assert decisions == [rule.applies("bench%d/grp" % i, 0)
                             for i in range(400)]
        assert 0.2 < sum(decisions) / 400.0 < 0.4

    def test_unknown_kind_and_keys_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("explode")
        with pytest.raises(ValueError):
            FaultRule.from_dict({"kind": "crash", "when": "now"})

    def test_inject_error(self):
        plan = FaultPlan([FaultRule("error", match="a/b")])
        with pytest.raises(FaultInjected):
            plan.inject("a/b", 0)
        plan.inject("other/cell", 0)  # no-op


class TestGracefulExports:
    def test_failure_csv_and_json_round_trip(self, baseline):
        failure = RunFailure("gzip", "stride", kind="timeout",
                             error="worker exceeded the 1.0s timeout",
                             attempts=3)
        mixed = [baseline[0], failure]
        text = runs_to_csv(mixed)
        header, ok_row, failed_row = text.strip().splitlines()
        assert header.split(",") == list(SUMMARY_COLUMNS)
        # The trailing core/corun columns stay blank for single-core rows.
        assert ok_row.endswith(",ok,,")
        cells = failed_row.split(",")
        assert cells[0] == "gzip" and cells[1] == "stride"
        status = SUMMARY_COLUMNS.index("status")
        assert cells[status] == "failed:timeout"
        assert all(c == "" for c in cells[2:status])
        assert all(c == "" for c in cells[status + 1:])

        rebuilt = runs_from_json(runs_to_json(mixed))
        assert rebuilt[0].ok and rebuilt[0].to_dict() == \
            baseline[0].to_dict()
        assert not rebuilt[1].ok
        assert rebuilt[1].to_dict() == failure.to_dict()

    def test_result_from_dict_dispatch(self, baseline):
        assert result_from_dict(baseline[0].to_dict()).ok
        assert not result_from_dict(
            RunFailure("a", "b").to_dict()).ok


class TestJournalTailer:
    """Incremental journal following: the serve progress-stream source."""

    def write_journal(self, path, records):
        with open(path, "a") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")

    def test_incremental_polls_return_only_new_records(self, tmp_path):
        from repro.sim.supervisor import JournalTailer

        path = tmp_path / "job.ckpt"
        tailer = JournalTailer(path)
        assert tailer.poll() == []  # not created yet: empty, not an error
        self.write_journal(path, [{"kind": "sweep", "total": 2}])
        first = tailer.poll()
        assert [r["kind"] for r in first] == ["sweep"]
        assert tailer.poll() == []
        self.write_journal(path, [
            {"kind": "cell", "state": "running", "digest": "d1"},
            {"kind": "cell", "state": "done", "digest": "d1"},
        ])
        second = tailer.poll()
        assert [r["state"] for r in second] == ["running", "done"]
        assert tailer.cells["d1"]["state"] == "done"

    def test_progress_counts_latest_state_per_cell(self, tmp_path):
        from repro.sim.supervisor import JournalTailer

        path = tmp_path / "job.ckpt"
        self.write_journal(path, [
            {"kind": "sweep", "total": 3},
            {"kind": "cell", "state": "running", "digest": "d1"},
            {"kind": "cell", "state": "done", "digest": "d1"},
            {"kind": "cell", "state": "running", "digest": "d2"},
            {"kind": "cell", "state": "retry", "digest": "d2"},
            {"kind": "cell", "state": "failed", "digest": "d3"},
        ])
        tailer = JournalTailer(path)
        tailer.poll()
        progress = tailer.progress()
        assert progress == {"done": 1, "failed": 1, "running": 0,
                            "retrying": 1, "total": 3}

    def test_torn_tail_stays_buffered_until_completed(self, tmp_path):
        from repro.sim.supervisor import JournalTailer

        path = tmp_path / "job.ckpt"
        with open(path, "w") as handle:
            handle.write(json.dumps({"kind": "sweep", "total": 1}) + "\n")
            handle.write('{"kind": "cell", "state": "do')  # torn write
        tailer = JournalTailer(path)
        assert [r["kind"] for r in tailer.poll()] == ["sweep"]
        with open(path, "a") as handle:  # the write completes later
            handle.write('ne", "digest": "d1"}\n')
        completed = tailer.poll()
        assert [r["state"] for r in completed] == ["done"]

    def test_matches_checkpoint_load_on_a_real_sweep(self, tmp_path):
        from repro.sim.supervisor import JournalTailer

        ckpt = str(tmp_path / "sweep.ckpt")
        SweepSupervisor(SPECS[:2], checkpoint=ckpt).run()
        tailer = JournalTailer(ckpt)
        tailer.poll()
        assert {d: r["state"] for d, r in tailer.cells.items()} == \
            {d: r["state"] for d, r in Checkpoint.load(ckpt).items()}
        progress = tailer.progress()
        assert progress["done"] == 2 and progress["total"] == 2
