"""Per-workload construction and characterization tests.

Each workload must (a) build into a fresh address space, (b) produce a
deterministic trace, and (c) exhibit the access-pattern signature the
paper attributes to its benchmark — those signatures are what the whole
reproduction rests on (see DESIGN.md section 2).
"""

import pytest

from repro.compiler.driver import compile_hints
from repro.mem.space import AddressSpace
from repro.sim.runner import run_workload
from repro.trace.events import MemRef
from repro.trace.interp import Interpreter
from repro.workloads import get_workload, workload_names


def hint_counts(name):
    space = AddressSpace()
    built = get_workload(name).build(space)
    result = compile_hints(built.program, l2_size=128 * 1024, block_size=64)
    return result.counts(), result


@pytest.mark.parametrize("name", workload_names())
class TestEveryWorkload:
    def test_builds_and_traces(self, name):
        space = AddressSpace()
        built = get_workload(name).build(space)
        interp = Interpreter(built.program, space)
        for pname, addr in built.pointer_bindings.items():
            interp.bind_pointer(pname, addr)
        refs = [e for e in interp.run(limit=2000) if isinstance(e, MemRef)]
        assert len(refs) == 2000

    def test_addresses_inside_segments(self, name):
        space = AddressSpace()
        built = get_workload(name).build(space)
        interp = Interpreter(built.program, space)
        for pname, addr in built.pointer_bindings.items():
            interp.bind_pointer(pname, addr)
        for event in interp.run(limit=2000):
            if isinstance(event, MemRef):
                assert (space.heap.contains(event.addr)
                        or space.static.contains(event.addr)), (
                    "%s touches unmapped address 0x%x" % (name, event.addr))

    def test_compiles_under_all_policies(self, name):
        space = AddressSpace()
        built = get_workload(name).build(space)
        for policy in ("conservative", "default", "aggressive"):
            result = compile_hints(built.program, policy=policy)
            assert result.counts()["mem_insts"] > 0


class TestTable3Signatures:
    """The static hint mix must match the paper's Table 3 shape."""

    def test_fortran_codes_have_no_pointer_hints(self):
        for name in ("wupwise", "swim", "mgrid", "applu", "apsi"):
            counts, _ = hint_counts(name)
            assert counts["pointer"] == 0, name
            assert counts["recursive"] == 0, name
            assert counts["spatial"] > 0, name

    def test_recursive_benchmarks(self):
        # Table 3: parser, twolf, mcf (and sphinx/mesa/vpr) have
        # recursive hints.
        for name in ("parser", "twolf", "mcf", "sphinx"):
            counts, _ = hint_counts(name)
            assert counts["recursive"] > 0, name

    def test_indirect_benchmarks(self):
        for name in ("vpr", "bzip2"):
            counts, _ = hint_counts(name)
            assert counts["indirect"] > 0, name

    def test_pointer_benchmarks(self):
        for name in ("mcf", "ammp", "parser", "twolf", "equake", "gap",
                     "mesa", "sphinx"):
            counts, _ = hint_counts(name)
            assert counts["pointer"] > 0, name

    def test_hint_ratio_plausible(self):
        for name in workload_names():
            counts, _ = hint_counts(name)
            assert 0.0 <= counts["ratio"] <= 100.0

    def test_variable_region_benchmarks_have_size_hints(self):
        # mesa / sphinx carry region coefficients (Table 4).
        from repro.compiler.hints import FIXED_REGION_COEFF

        for name in ("mesa", "sphinx"):
            _, result = hint_counts(name)
            coeffs = [
                h.region_coeff
                for rid in result.program.static_refs()
                for h in [result.hint_table.get(rid)]
                if h is not None
            ]
            assert any(c != FIXED_REGION_COEFF for c in coeffs), name


class TestTable6Characteristics:
    """Behavioral signatures of the stubborn benchmarks."""

    def test_crafty_low_miss_rate(self):
        stats = run_workload("crafty", "none", limit_refs=20_000)
        # The paper excludes crafty because its L2 miss rate is 0.4%.
        assert stats.dram_demand_blocks < stats.instructions * 0.01

    def test_mcf_stays_far_from_perfect(self):
        grp = run_workload("mcf", "grp", limit_refs=15_000)
        perfect = run_workload("mcf", "none", mode="perfect_l2",
                               limit_refs=15_000)
        gap = 1.0 - grp.ipc / perfect.ipc
        assert gap > 0.45  # paper: 63.9%

    def test_bzip2_indirect_prefetching_wins(self):
        srp = run_workload("bzip2", "srp", limit_refs=15_000)
        grp = run_workload("bzip2", "grp", limit_refs=15_000)
        assert grp.ipc > srp.ipc
        assert grp.traffic_bytes < srp.traffic_bytes * 0.5

    def test_ammp_srp_is_all_pollution(self):
        base = run_workload("ammp", "none", limit_refs=15_000)
        srp = run_workload("ammp", "srp", limit_refs=15_000)
        grp = run_workload("ammp", "grp", limit_refs=15_000)
        assert srp.traffic_ratio_over(base) > 5.0
        assert grp.traffic_ratio_over(base) < 2.0

    def test_equake_pointer_prefetching_helps(self):
        base = run_workload("equake", "none", limit_refs=15_000)
        ptr = run_workload("equake", "pointer", limit_refs=15_000)
        # Figure 9's headline: pointer prefetching boosts equake by
        # prefetching the heap row arrays.
        assert ptr.speedup_over(base) > 1.1
