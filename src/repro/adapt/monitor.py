"""Epoch-based feedback monitor for adaptive prefetch control.

The monitor is the "hardware counter sampling" half of the feedback loop
(cf. Srinath et al.'s feedback-directed prefetching and Prat et al.'s
runtime-guided reconfiguration on POWER7): nothing is computed per
access.  The core's replay loops count memory references and call
:meth:`~repro.adapt.controller.AdaptiveController.note_access` once per
reference; when an access-count epoch completes, the controller asks the
monitor for one :class:`EpochSample`.

Epochs are defined in *accesses*, not wall cycles, deliberately: a
cycle-based epoch would sample more often exactly when prefetching is
working (IPC up, cycles per access down), coupling the control loop's
gain to its own output.  An access-count epoch gives every policy
decision the same amount of program behavior to judge.

The sample is computed as **deltas** of counters the simulator already
maintains (L2 cache stats, the metrics collector's timeliness counters,
DRAM channel busy cycles).  Sampling re-baselines the monitor, so each
epoch's sample covers exactly that epoch — the "counters reset at epoch
boundaries" contract the tests pin down — without ever zeroing the
underlying cumulative statistics the run's final report uses.
"""


class EpochSample:
    """Derived feedback signals for one completed epoch."""

    __slots__ = (
        "accesses", "cycles", "fills", "useful", "accuracy",
        "pollution_rate", "late_fraction", "dram_busy_frac",
        "demand_misses",
    )

    def __init__(self, accesses, cycles, fills, useful, accuracy,
                 pollution_rate, late_fraction, dram_busy_frac,
                 demand_misses):
        #: Memory references in the epoch (the epoch length).
        self.accesses = accesses
        #: Core cycles the epoch spanned.
        self.cycles = cycles
        #: L2 prefetch fills during the epoch.
        self.fills = fills
        #: Prefetched lines first-touched by demand during the epoch.
        self.useful = useful
        #: ``useful / fills`` clamped to [0, 1]; None when no fills
        #: happened (no signal to judge).
        self.accuracy = accuracy
        #: Fraction of the epoch's L2 demand misses attributed to
        #: prefetch-caused evictions (shadow-tag pollution).
        self.pollution_rate = pollution_rate
        #: Of the prefetched lines first-used this epoch, the fraction
        #: whose data had not fully arrived (late prefetches).
        self.late_fraction = late_fraction
        #: Mean DRAM channel busy fraction over the epoch's cycles.
        self.dram_busy_frac = dram_busy_frac
        #: L2 demand misses during the epoch.
        self.demand_misses = demand_misses

    def to_dict(self):
        """Plain-data form for the knob trajectory (JSON-safe, rounded)."""
        return {
            "accesses": self.accesses,
            "fills": self.fills,
            "useful": self.useful,
            "accuracy": (None if self.accuracy is None
                         else round(self.accuracy, 6)),
            "pollution_rate": round(self.pollution_rate, 6),
            "late_fraction": round(self.late_fraction, 6),
            "dram_busy_frac": round(self.dram_busy_frac, 6),
            "demand_misses": self.demand_misses,
        }

    def __repr__(self):
        return ("EpochSample(acc=%s poll=%.3f late=%.3f busy=%.3f "
                "fills=%d)" % (
                    "-" if self.accuracy is None
                    else "%.3f" % self.accuracy,
                    self.pollution_rate, self.late_fraction,
                    self.dram_busy_frac, self.fills))


class FeedbackMonitor:
    """Delta-samples the hierarchy's counters at epoch boundaries.

    Constructed while the prefetcher attaches, which is *before* the
    hierarchy's metrics collector exists — so the baseline starts at
    all-zero counters (correct: every counter starts at zero) and the
    hierarchy is re-read lazily at each sample.
    """

    def __init__(self, hierarchy):
        self.hierarchy = hierarchy
        self.samples_taken = 0
        self._last_cycle = 0.0
        # Baseline counter values at the previous epoch boundary:
        # (fills, useful, timely, late, pollution, demand_misses, busy).
        self._last = (0, 0, 0, 0, 0, 0, 0.0)

    def sample(self, now, accesses):
        """Close the current epoch at cycle ``now``; return its sample.

        ``accesses`` is the number of references the epoch covered.
        Re-baselines the monitor as a side effect.
        """
        hierarchy = self.hierarchy
        # Per-core view: inside a multi-core co-run each controller judges
        # its own core's fills/pollution, not the whole shared L2.  The
        # DRAM busy fraction deliberately stays shared-level — channel
        # pressure from *other* cores is exactly the contention signal the
        # throttle should back off from.  (Fall back to the raw shared
        # stats for minimal hierarchy stand-ins without the view method.)
        view = getattr(hierarchy, "l2_stats_view", None)
        l2 = view() if view is not None else hierarchy.l2.stats
        metrics = hierarchy.metrics
        channel_busy = hierarchy.dram.channel_busy_cycles
        busy = 0.0
        for cycles in channel_busy:
            busy += cycles
        current = (
            l2.prefetch_fills, l2.useful_prefetches,
            metrics.timely_prefetch_uses, metrics.late_prefetch_uses,
            l2.pollution_misses, l2.demand_misses, busy,
        )
        last = self._last
        fills = current[0] - last[0]
        useful = current[1] - last[1]
        timely = current[2] - last[2]
        late = current[3] - last[3]
        pollution = current[4] - last[4]
        misses = current[5] - last[5]
        busy_delta = current[6] - last[6]
        cycle_delta = float(now) - self._last_cycle
        self._last = current
        self._last_cycle = float(now)
        self.samples_taken += 1

        accuracy = None
        if fills > 0:
            accuracy = useful / fills
            # First uses of fills from *earlier* epochs can push the
            # ratio past 1; clamp — the signal means "at least this good".
            if accuracy > 1.0:
                accuracy = 1.0
        uses = timely + late
        late_fraction = late / uses if uses > 0 else 0.0
        pollution_rate = pollution / misses if misses > 0 else 0.0
        denom = cycle_delta * len(channel_busy)
        dram_busy_frac = busy_delta / denom if denom > 0 else 0.0
        if dram_busy_frac > 1.0:
            dram_busy_frac = 1.0
        return EpochSample(
            accesses=accesses, cycles=cycle_delta, fills=fills,
            useful=useful, accuracy=accuracy,
            pollution_rate=pollution_rate, late_fraction=late_fraction,
            dram_busy_frac=dram_busy_frac, demand_misses=misses,
        )
