"""Feedback-directed adaptive prefetch control.

Closes the loop from the observability counters (PR 2) to the
prefetcher/controller knobs: a cheap access-count-epoch
:class:`FeedbackMonitor` feeds a pluggable :class:`ThrottlePolicy`
(default: :class:`LadderPolicy`, an aggressiveness ladder with
hysteresis), and an :class:`AdaptiveController` applies the decisions to
the live machine between epochs.  The adaptive engines themselves
(``srp-adaptive``, ``grp-adaptive``) live in
:mod:`repro.adapt.engines`.
"""

from repro.adapt.controller import AdaptiveController
from repro.adapt.monitor import EpochSample, FeedbackMonitor
from repro.adapt.policy import (
    ADAPT_POLICIES,
    KnobState,
    LadderPolicy,
    ThrottlePolicy,
    resolve_policy,
)

__all__ = [
    "ADAPT_POLICIES",
    "AdaptiveController",
    "EpochSample",
    "FeedbackMonitor",
    "KnobState",
    "LadderPolicy",
    "ThrottlePolicy",
    "resolve_policy",
]
