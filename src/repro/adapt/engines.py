"""Adaptive variants of the SRP and GRP prefetch engines.

Each subclass is the static engine plus an
:class:`~repro.adapt.controller.AdaptiveController` built at attach
time.  The engine exposes two callbacks the controller's knob
application uses (:meth:`apply_region_size`, :meth:`flush_pending`) and
gates its own miss/directive triggers on the ``enabled`` knob.  All
other knobs (issue budget, insertion depth) live in the memory
controller and the L2 and need no engine cooperation.

The hierarchy discovers the controller through the engine's ``adapt``
attribute after attach and hands it to the CPU replay loops, which call
``adapt.note_access`` per memory reference.
"""

from repro.adapt.controller import AdaptiveController
from repro.prefetch.chase import ChasePrefetcher
from repro.prefetch.gaze import GazePrefetcher
from repro.prefetch.grp import GRPPrefetcher
from repro.prefetch.srp import SRPPrefetcher
from repro.trace.events import IndirectPrefetch


class _ThrottledEngineMixin:
    """Knob plumbing shared by the adaptive engines."""

    def _attach_adapt(self, hierarchy, config):
        self.adapt = AdaptiveController(
            self, hierarchy, config, policy=self._policy_spec)

    # -- knob application callbacks ------------------------------------
    def apply_region_size(self, region_size):
        """Shrink/grow the default region allocated per qualifying miss."""
        self.queue.region_size = region_size

    def flush_pending(self):
        """Drop all queued candidates (the disable transition).

        Also disarms the memory controller's blocked-issue cache: its
        cached bound describes the held candidate that was just
        discarded, and the next probe must observe the empty queue.
        Returns the number of candidate blocks dropped.
        """
        flushed = self.queue.flush()
        controller = self.hierarchy.controller
        controller._blocked_until = -1.0
        controller._held_block = -1
        return flushed

    def stats_snapshot(self):
        snap = super().stats_snapshot()
        snap["suppressed_misses"] = self.suppressed_misses
        return snap


class AdaptiveSRPPrefetcher(_ThrottledEngineMixin, SRPPrefetcher):
    """SRP under feedback control: hint-free throttling.

    The interesting comparison: plain SRP's weakness is indiscriminate
    aggression (huge traffic, pollution on low-spatial-locality codes),
    which GRP suppresses with compiler hints.  This engine suppresses it
    with runtime feedback instead — no hints, no recompilation.
    """

    name = "srp-adaptive"

    def __init__(self, policy=None):
        super().__init__()
        self._policy_spec = policy
        self.adapt = None
        #: L2 misses ignored while the throttle had the engine disabled.
        self.suppressed_misses = 0

    def attach(self, hierarchy, space, config):
        super().attach(hierarchy, space, config)
        self._attach_adapt(hierarchy, config)

    def on_l2_miss(self, block, addr, ref_id, hint, now):
        if not self.adapt.knobs.enabled:
            self.suppressed_misses += 1
            return
        self.queue.allocate_region(block, now)


class AdaptiveGRPPrefetcher(_ThrottledEngineMixin, GRPPrefetcher):
    """GRP with the same runtime control plane layered over the hints.

    The compiler hints already do the coarse filtering; the feedback
    loop adds a safety net for phases where even hinted prefetching
    misbehaves (hints are static, behavior is not).  The region-size
    knob acts as a *cap* over the hint-derived size, so variable-size
    regions keep working below the cap.
    """

    name = "grp-adaptive"

    def __init__(self, hint_table=None, variable_regions=True, policy=None):
        super().__init__(hint_table, variable_regions=variable_regions)
        self._policy_spec = policy
        self.adapt = None
        self.suppressed_misses = 0
        #: Indirect-prefetch directives ignored while disabled.
        self.suppressed_directives = 0

    def attach(self, hierarchy, space, config):
        super().attach(hierarchy, space, config)
        self._attach_adapt(hierarchy, config)

    def _region_size_for(self, hint):
        size = super()._region_size_for(hint)
        cap = self.adapt.knobs.region_size
        return size if size <= cap else cap

    def on_l2_miss(self, block, addr, ref_id, hint, now):
        if not self.adapt.knobs.enabled:
            self.suppressed_misses += 1
            return
        super().on_l2_miss(block, addr, ref_id, hint, now)

    def on_directive(self, event, now):
        # Loop bounds and indirect-base registers are *state*, not
        # prefetches: keep tracking them while disabled so a re-enable
        # resumes with current values.  Only the directive that actually
        # issues prefetches is gated.
        if isinstance(event, IndirectPrefetch) \
                and not self.adapt.knobs.enabled:
            self.suppressed_directives += 1
            return
        super().on_directive(event, now)

    def stats_snapshot(self):
        snap = super().stats_snapshot()
        snap["suppressed_directives"] = self.suppressed_directives
        return snap


class AdaptiveGazePrefetcher(_ThrottledEngineMixin, GazePrefetcher):
    """Gaze under feedback control.

    The region-size knob caps how many footprint blocks one replay may
    queue (Gaze reads it from its pending queue at trigger time), the
    issue-budget and insertion-depth knobs apply in the controller and
    L2 as for every engine, and the disable transition flushes the
    pending queue.  Footprint *learning* continues while disabled —
    patterns are state, not prefetches — so a re-enable replays with
    current knowledge, mirroring grp-adaptive's treatment of directive
    state.
    """

    name = "gaze-adaptive"

    def __init__(self, policy=None):
        super().__init__()
        self._policy_spec = policy
        self.adapt = None
        self.suppressed_misses = 0

    def attach(self, hierarchy, space, config):
        super().attach(hierarchy, space, config)
        self._attach_adapt(hierarchy, config)

    def on_l2_miss(self, block, addr, ref_id, hint, now):
        if not self.adapt.knobs.enabled:
            self.suppressed_misses += 1
            return
        super().on_l2_miss(block, addr, ref_id, hint, now)


class AdaptiveChasePrefetcher(_ThrottledEngineMixin, ChasePrefetcher):
    """The pointer-chase engine under feedback control.

    Chases never start while disabled, and in-flight chains stop
    descending (their continuation fills are suppressed); dependence
    *learning* continues, as with the other adaptive engines.  The
    region-size knob has no chase analogue — the engine queues explicit
    node blocks, not regions — so it lands in the pending queue unused.
    """

    name = "chase-adaptive"

    def __init__(self, policy=None):
        super().__init__()
        self._policy_spec = policy
        self.adapt = None
        self.suppressed_misses = 0
        #: Chain continuations dropped while the throttle had the engine
        #: disabled.
        self.suppressed_links = 0

    def attach(self, hierarchy, space, config):
        super().attach(hierarchy, space, config)
        self._attach_adapt(hierarchy, config)

    def on_l2_miss(self, block, addr, ref_id, hint, now):
        if not self.adapt.knobs.enabled:
            self.suppressed_misses += 1
            return
        super().on_l2_miss(block, addr, ref_id, hint, now)

    def on_prefetch_fill(self, request, ready):
        if request.meta is not None and request.depth > 0 \
                and not self.adapt.knobs.enabled:
            self.suppressed_links += 1
            return
        super().on_prefetch_fill(request, ready)

    def stats_snapshot(self):
        snap = super().stats_snapshot()
        snap["suppressed_links"] = self.suppressed_links
        return snap
