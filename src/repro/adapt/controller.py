"""The adaptive controller: epoch machinery plus knob application.

One :class:`AdaptiveController` is owned by one adaptive prefetch engine
(see :mod:`repro.adapt.engines`) and created when the engine attaches to
its hierarchy.  The CPU replay loops — both :meth:`Core.execute` and the
fused :meth:`Core.execute_compiled` — call :meth:`note_access` once per
memory reference with the post-issue clock; every
``config.adapt_epoch_accesses`` references the controller closes an
epoch: the :class:`~repro.adapt.monitor.FeedbackMonitor` produces a
delta sample, the :class:`~repro.adapt.policy.ThrottlePolicy` decides,
and any returned settings are applied to the live hardware knobs:

============== ===================================================
knob           hardware site
============== ===================================================
region_size    the engine's region queue default / GRP size cap
issue_budget   ``MemoryController.prefetch_budget`` (per-call cap)
insert_depth   ``Cache.set_prefetch_insert`` on the L2
enabled        engine miss-gating + queue flush on disable
============== ===================================================

Everything the boundary touches is identical on the fast and slow paths
(it reads counters both paths update the same way, at the same point in
the instruction stream, with the same clock), so adaptive runs preserve
the fast==slow byte-identical equivalence contract.

The controller also records a bounded knob/sample trajectory for the
run's statistics: when the row list hits ``max_trajectory`` it is
decimated (keep every other row, double the recording stride), the same
scheme the metrics layer's interval series uses — deterministic, bounded
memory, and the surviving rows still span the whole run.
"""

from repro.adapt.monitor import FeedbackMonitor
from repro.adapt.policy import KnobState, resolve_policy


class AdaptiveController:
    """Epoch loop + knob application for one adaptive engine."""

    def __init__(self, engine, hierarchy, config, policy=None,
                 max_trajectory=256):
        self.engine = engine
        self.hierarchy = hierarchy
        self.config = config
        self.policy = resolve_policy(policy, config)
        self.epoch_accesses = config.adapt_epoch_accesses
        if self.epoch_accesses <= 0:
            raise ValueError("adapt_epoch_accesses must be positive")
        self.monitor = FeedbackMonitor(hierarchy)
        self.knobs = KnobState(
            region_size=config.region_size,
            issue_budget=hierarchy.controller.prefetch_budget,
            insert_depth=hierarchy.l2.prefetch_insert_depth,
            enabled=True, level=0,
        )
        self.epochs = 0
        self.knob_changes = 0
        self.disabled_epochs = 0
        self.flushed_candidates = 0
        self._accesses = 0
        self._next_boundary = self.epoch_accesses
        self._trajectory = []
        self._traj_stride = 1
        self._max_trajectory = max_trajectory
        initial = self.policy.initial()
        if initial is not None:
            self._apply(initial)
            # The configured starting point is not a knob *change*.
            self.knob_changes = 0

    # ------------------------------------------------------------------
    def note_access(self, now):
        """Count one memory reference; close an epoch on the boundary.

        Called from the replay loops' per-reference path — keep it cheap.
        """
        self._accesses += 1
        if self._accesses >= self._next_boundary:
            self._epoch_boundary(now)

    def _epoch_boundary(self, now):
        self._next_boundary += self.epoch_accesses
        self.epochs += 1
        if not self.knobs.enabled:
            self.disabled_epochs += 1
        sample = self.monitor.sample(now, self.epoch_accesses)
        settings = self.policy.decide(sample, self.knobs)
        if settings is not None:
            self._apply(settings)
        if self.epochs % self._traj_stride == 0:
            self._record(sample, now)

    # ------------------------------------------------------------------
    def _apply(self, settings):
        """Push a policy's settings dict onto the live hardware knobs."""
        knobs = self.knobs
        changed = False
        enabled = settings.get("enabled")
        if enabled is not None and enabled != knobs.enabled:
            changed = True
            knobs.enabled = enabled
            if not enabled:
                self.flushed_candidates += self.engine.flush_pending()
        region_size = settings.get("region_size")
        if region_size is not None and region_size != knobs.region_size:
            changed = True
            knobs.region_size = region_size
            self.engine.apply_region_size(region_size)
        budget = settings.get("issue_budget")
        if budget is not None and budget != knobs.issue_budget:
            changed = True
            knobs.issue_budget = budget
            self.hierarchy.controller.prefetch_budget = budget
        depth = settings.get("insert_depth")
        if depth is not None and depth != knobs.insert_depth:
            changed = True
            knobs.insert_depth = depth
            self.hierarchy.l2.set_prefetch_insert(depth)
        level = settings.get("level")
        if level is not None:
            knobs.level = level
        if changed:
            self.knob_changes += 1

    def _record(self, sample, now):
        row = {
            "epoch": self.epochs,
            "cycle": round(float(now), 3),
            "level": self.knobs.level,
            "enabled": self.knobs.enabled,
            "region_size": self.knobs.region_size,
            "issue_budget": self.knobs.issue_budget,
            "insert_depth": self.knobs.insert_depth,
        }
        row.update(sample.to_dict())
        trajectory = self._trajectory
        trajectory.append(row)
        if len(trajectory) >= self._max_trajectory:
            # Decimate: keep every other row, double the stride.
            del trajectory[::2]
            self._traj_stride *= 2

    # ------------------------------------------------------------------
    def snapshot(self):
        """Plain-data summary for :class:`~repro.sim.stats.SimStats`."""
        return {
            "policy": self.policy.name,
            "epoch_accesses": self.epoch_accesses,
            "epochs": self.epochs,
            "knob_changes": self.knob_changes,
            "disabled_epochs": self.disabled_epochs,
            "flushed_candidates": self.flushed_candidates,
            "final": self.knobs.to_dict(),
            "trajectory": [dict(row) for row in self._trajectory],
        }
