"""Throttle policies: epoch samples in, knob settings out.

A policy is a pure decision function over
:class:`~repro.adapt.monitor.EpochSample` streams; it never touches the
hardware itself.  The :class:`~repro.adapt.controller.AdaptiveController`
calls :meth:`ThrottlePolicy.decide` once per epoch and applies whatever
settings dict comes back (None = hold everything).  Keeping the policies
side-effect free makes them trivially unit-testable with synthetic
samples and pluggable through :data:`ADAPT_POLICIES`.

The default :class:`LadderPolicy` is an aggressiveness ladder with
hysteresis, in the spirit of Srinath et al.'s feedback-directed
prefetching: each rung fixes a (region size, issue budget, insertion
depth) triple, consecutive *bad* epochs step down a rung, consecutive
*good* epochs step up, and a *neutral* epoch resets both streaks — which
is exactly what keeps an oscillating accuracy signal from flapping the
knobs.  Below the bottom rung the engine is disabled outright (and its
queue flushed); after a fixed number of disabled epochs the policy
re-enables at the bottom rung as a probe, giving a duty-cycled engine on
workloads that are hostile throughout.
"""


class KnobState:
    """The live knob settings of one adaptive engine."""

    __slots__ = ("region_size", "issue_budget", "insert_depth",
                 "enabled", "level")

    def __init__(self, region_size, issue_budget, insert_depth,
                 enabled=True, level=0):
        self.region_size = region_size
        self.issue_budget = issue_budget
        self.insert_depth = insert_depth
        self.enabled = enabled
        self.level = level

    def to_dict(self):
        return {
            "region_size": self.region_size,
            "issue_budget": self.issue_budget,
            "insert_depth": self.insert_depth,
            "enabled": self.enabled,
            "level": self.level,
        }

    def __repr__(self):
        return ("KnobState(region=%d budget=%d depth=%d %s level=%d)"
                % (self.region_size, self.issue_budget, self.insert_depth,
                   "on" if self.enabled else "off", self.level))


class ThrottlePolicy:
    """Base policy: never changes anything (a static engine)."""

    name = "static"

    def initial(self):
        """Settings to apply before the first epoch; None keeps the
        machine's static configuration."""
        return None

    def decide(self, sample, knobs):
        """Return a settings dict (keys: ``region_size``,
        ``issue_budget``, ``insert_depth``, ``enabled``, ``level``; any
        subset) or None to hold the current knobs."""
        return None


class LadderPolicy(ThrottlePolicy):
    """Aggressiveness ladder with streak-based hysteresis.

    State machine, evaluated once per epoch::

        enabled:
            no signal (fills < min_fills)  -> reset streaks, hold
            bad epoch                      -> bad streak += 1 (good = 0);
                                              at down_after: step down
                                              (at rung 0: disable + flush)
            good epoch                     -> good streak += 1 (bad = 0);
                                              at up_after: step up
            neutral                        -> reset both streaks, hold
        disabled:
            after reenable_after epochs    -> re-enable at rung 0 (probe)

    *Bad* means the prefetcher is hurting: pollution above
    ``pollution_hi``, or accuracy below ``accuracy_lo`` while it is also
    costing something (non-trivial pollution, or DRAM channels saturated
    past ``busy_hi``).  *Good* means clearly helping: accuracy at least
    ``accuracy_hi`` with pollution under ``pollution_lo`` and a late
    fraction at most ``late_hi``.  Everything else is neutral.
    """

    name = "ladder"

    def __init__(self, levels, start_level, up_after=3, down_after=2,
                 reenable_after=4, min_fills=16,
                 accuracy_lo=0.20, accuracy_hi=0.60,
                 pollution_lo=0.02, pollution_hi=0.10,
                 late_hi=0.60, busy_hi=0.80):
        if not levels:
            raise ValueError("ladder policy needs at least one level")
        if not 0 <= start_level < len(levels):
            raise ValueError("start_level %d out of range" % start_level)
        self.levels = [dict(level) for level in levels]
        self.level = start_level
        self.up_after = up_after
        self.down_after = down_after
        self.reenable_after = reenable_after
        self.min_fills = min_fills
        self.accuracy_lo = accuracy_lo
        self.accuracy_hi = accuracy_hi
        self.pollution_lo = pollution_lo
        self.pollution_hi = pollution_hi
        self.late_hi = late_hi
        self.busy_hi = busy_hi
        self._good = 0
        self._bad = 0
        self._idle_epochs = 0

    # ------------------------------------------------------------------
    @classmethod
    def for_config(cls, config, **overrides):
        """Build the default ladder for a machine configuration.

        The top rungs reproduce the static engine (full region, full
        budget, LRU insertion) so an adaptive run on a well-behaved
        workload is behaviorally identical to its static counterpart;
        lower rungs shrink the region (4 KB -> 2/1/0.5 KB at the default
        geometry, floored at two blocks) and the per-call issue budget
        together.  The rung above the static one raises the insertion
        depth toward mid-set — worth it only when accuracy is proven.
        """
        full_region = config.region_size
        floor = 2 * config.block_size

        def region(divisor):
            size = full_region // divisor
            return size if size > floor else floor

        levels = [
            {"region_size": region(8), "issue_budget": 8,
             "insert_depth": 0},
            {"region_size": region(4), "issue_budget": 32,
             "insert_depth": 0},
            {"region_size": region(2), "issue_budget": 128,
             "insert_depth": 0},
            {"region_size": full_region, "issue_budget": 256,
             "insert_depth": 0},
            {"region_size": full_region, "issue_budget": 256,
             "insert_depth": max(1, config.l2_assoc // 2)},
        ]
        params = dict(levels=levels, start_level=3)
        params.update(overrides)
        return cls(**params)

    # ------------------------------------------------------------------
    def _settings(self, enabled=True):
        settings = dict(self.levels[self.level])
        settings["enabled"] = enabled
        settings["level"] = self.level
        return settings

    def initial(self):
        return self._settings()

    def classify(self, sample):
        """Label one sample ``"bad"``, ``"good"``, or ``"neutral"``."""
        accuracy = sample.accuracy
        if sample.pollution_rate > self.pollution_hi:
            return "bad"
        if accuracy < self.accuracy_lo and (
                sample.pollution_rate > self.pollution_lo
                or sample.dram_busy_frac > self.busy_hi):
            return "bad"
        if (accuracy >= self.accuracy_hi
                and sample.pollution_rate < self.pollution_lo
                and sample.late_fraction <= self.late_hi):
            return "good"
        return "neutral"

    def decide(self, sample, knobs):
        if not knobs.enabled:
            self._idle_epochs += 1
            if self._idle_epochs >= self.reenable_after:
                # Probation: probe again at the least aggressive rung.
                self._idle_epochs = 0
                self._good = self._bad = 0
                self.level = 0
                return self._settings()
            return None
        if sample.fills < self.min_fills or sample.accuracy is None:
            # Too little prefetch activity to judge; a streak must be
            # built from consecutive *judgeable* epochs.
            self._good = self._bad = 0
            return None
        verdict = self.classify(sample)
        if verdict == "bad":
            self._bad += 1
            self._good = 0
            if self._bad >= self.down_after:
                self._bad = 0
                if self.level == 0:
                    self._idle_epochs = 0
                    return self._settings(enabled=False)
                self.level -= 1
                return self._settings()
        elif verdict == "good":
            self._good += 1
            self._bad = 0
            if self._good >= self.up_after:
                self._good = 0
                if self.level < len(self.levels) - 1:
                    self.level += 1
                    return self._settings()
        else:
            # Neutral epochs break both streaks: an oscillating signal
            # (good, bad, good, ...) never accumulates enough consecutive
            # verdicts to move a knob.
            self._good = self._bad = 0
        return None


def resolve_policy(policy, config):
    """Turn a policy spec (None, name, or instance) into an instance."""
    if policy is None:
        policy = "ladder"
    if isinstance(policy, str):
        try:
            factory = ADAPT_POLICIES[policy]
        except KeyError:
            raise KeyError(
                "unknown throttle policy %r (have: %s)"
                % (policy, ", ".join(sorted(ADAPT_POLICIES))))
        return factory(config)
    return policy


#: Registry of named policy factories: ``name -> factory(config)``.
ADAPT_POLICIES = {
    "static": lambda config: ThrottlePolicy(),
    "ladder": LadderPolicy.for_config,
}
