"""repro — a full reproduction of Guided Region Prefetching (ISCA 2003).

Public API highlights:

* :func:`repro.sim.runner.run_workload` — run any benchmark under any
  prefetching scheme and get back the run statistics.
* :class:`repro.sim.config.MachineConfig` — the simulated machine.
* :mod:`repro.compiler` — the hint-generating mini-compiler.
* :mod:`repro.prefetch` — GRP and every baseline engine.
* :mod:`repro.workloads` — the 18 synthetic SPEC2000-like benchmarks.
* :mod:`repro.experiments` — regenerate every table and figure.
"""

from repro.sim.config import MachineConfig
from repro.sim.runner import SCHEMES, run_workload

__version__ = "1.0.0"

__all__ = ["MachineConfig", "SCHEMES", "run_workload", "__version__"]
