"""repro — a full reproduction of Guided Region Prefetching (ISCA 2003).

Public API highlights:

* :class:`repro.sim.spec.RunSpec` / :func:`repro.sim.runner.execute` —
  describe any (benchmark, scheme) run as frozen data and execute it.
* :func:`repro.sim.runner.run_workload` — one-call convenience shim.
* :func:`repro.sim.batch.run_batch` — fan RunSpecs across cores.
* :class:`repro.sim.spec.CoRunSpec` /
  :func:`repro.sim.multicore.execute_corun` — multi-core co-runs over a
  shared L2/MSHR/DRAM with contention-aware per-core attribution.
* :class:`repro.sim.supervisor.SweepSupervisor` — resilient sweeps with
  checkpoint/resume, timeouts, retries, and a failure budget.
* :class:`repro.sim.cache.ResultCache` — persistent result cache.
* :class:`repro.sim.config.MachineConfig` — the simulated machine.
* :mod:`repro.compiler` — the hint-generating mini-compiler.
* :mod:`repro.prefetch` — GRP and every baseline engine.
* :mod:`repro.adapt` — feedback-directed adaptive prefetch control.
* :mod:`repro.workloads` — the 18 synthetic SPEC2000-like benchmarks.
* :mod:`repro.experiments` — regenerate every table and figure.
"""

from repro.sim.batch import run_batch
from repro.sim.cache import ResultCache
from repro.sim.config import MachineConfig
from repro.sim.faults import FaultPlan
from repro.sim.multicore import execute_corun
from repro.sim.runner import SCHEMES, execute, run_workload
from repro.sim.spec import CoRunSpec, RunSpec
from repro.sim.stats import (
    CoRunResult,
    RunFailure,
    RunResult,
    SimStats,
    result_from_dict,
)
from repro.sim.supervisor import SweepAborted, SweepSupervisor

# 1.6.0: vectorized replay backend + RunSpec.backend field + the
# little-endian trace format.  The bump salts ResultCache digests, so
# entries written by earlier builds (whose specs had no backend field)
# can never alias results produced under the new dispatch.
# 1.8.0: gaze/chase engines + the arena leaderboard.  The bump salts
# ResultCache digests so entries cached by pre-arena builds (which
# could not have simulated the new schemes, and whose scheme namespace
# was smaller) never alias results under the grown registry.
# 1.8.1: gaze end-of-generation fix (first-touch misses no longer
# spuriously recommit; same-PC region transitions commit the old
# generation).  Gaze results change, so cached 1.8.0 entries must not
# be served.
__version__ = "1.8.1"

__all__ = [
    "CoRunResult", "CoRunSpec", "FaultPlan", "MachineConfig", "ResultCache",
    "RunFailure", "RunResult", "RunSpec", "SCHEMES", "SimStats",
    "SweepAborted", "SweepSupervisor", "execute", "execute_corun",
    "result_from_dict", "run_batch", "run_workload", "__version__",
]
