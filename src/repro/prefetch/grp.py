"""Guided Region Prefetching — the paper's core contribution (Section 3.3).

GRP is the SRP hardware with compiler hints gating and extending it:

* **spatial** — a region entry is allocated *only* when the missing load is
  marked spatial.  Unhinted misses generate no prefetches at all; this is
  where the 180% → 23% traffic reduction comes from.
* **size** — when variable-size regions are enabled and the missing load
  carries a 3-bit coefficient (< 7), the region size is computed as
  ``loop_bound << coeff`` bytes, using the bound most recently conveyed by
  the software ``LoopBound`` directive.  Coefficient 7 selects the fixed
  (4 KB) region.
* **pointer / recursive** — on a hinted miss the returned line is scanned
  for heap pointers (the stateless base-and-bounds check) and two blocks
  are prefetched per pointer.  A 3-bit depth counter — 1 for ``pointer``,
  ``recursive_depth`` (6) for ``recursive`` — rides along in the MSHR and
  prefetch-queue entries; lines returned by those prefetches are scanned
  again until the counter runs out.
* **indirect** — the explicit indirect-prefetch instruction supplies
  ``&a[0]``, ``sizeof(a[0])`` and ``&b[i]``; the engine reads the index
  block and queues one prefetch per index value (up to 16 per block).
"""

from repro.compiler.hints import FIXED_REGION_COEFF
from repro.mem.layout import block_base, block_range
from repro.prefetch.base import Prefetcher
from repro.prefetch.regionqueue import RegionQueue
from repro.trace.events import (
    IndirectPrefetch,
    LoopBound,
    SetIndirectBase,
)


class GRPStats:
    """Counters specific to the GRP engine."""

    def __init__(self):
        self.spatial_regions = 0
        self.unhinted_misses_ignored = 0
        self.pointer_scans = 0
        self.pointers_prefetched = 0
        self.indirect_instructions = 0
        self.indirect_prefetches = 0
        self.region_size_histogram = {}

    def note_region_size(self, blocks):
        self.region_size_histogram[blocks] = (
            self.region_size_histogram.get(blocks, 0) + 1
        )


class GRPPrefetcher(Prefetcher):
    """The hint-guided region prefetching engine."""

    name = "grp"

    def __init__(self, hint_table=None, variable_regions=True):
        super().__init__()
        self.hint_table = hint_table
        self.variable_regions = variable_regions
        self.grp_stats = GRPStats()
        self._current_loop_bound = None
        #: (base, elem) register pair for the alternate indirect encoding.
        self._indirect_base = None
        #: pointer-chase depth pending per missing block (the 3-bit counter
        #: added to the L2 MSHRs in the paper).
        self._pending_scan_depth = {}

    def attach(self, hierarchy, space, config):
        super().attach(hierarchy, space, config)
        self.queue = RegionQueue(
            config.prefetch_queue_size,
            config.region_size,
            config.block_size,
            is_resident=hierarchy.l2.contains_block,
            policy=config.prefetch_queue_policy,
            resident_map=hierarchy.l2.resident_map,
        )

    # ------------------------------------------------------------------
    # Hint resolution
    # ------------------------------------------------------------------
    def _hint_for(self, ref_id, hint):
        """Prefer the hint delivered with the request; fall back to table."""
        if hint is not None:
            return hint
        if self.hint_table is not None and ref_id is not None:
            return self.hint_table.get(ref_id)
        return None

    def _region_size_for(self, hint):
        """Compute the prefetch region size in bytes for a spatial miss."""
        fixed = self.config.region_size
        if not self.variable_regions or hint.region_coeff == FIXED_REGION_COEFF:
            return fixed
        bound = self._current_loop_bound
        if bound is None or bound <= 0:
            return fixed
        size = bound << hint.region_coeff
        # Clamp to [2 blocks, fixed region], power of two (the hardware
        # region base/bitvector arithmetic requires a power-of-two size).
        size = max(size, 2 * self.config.block_size)
        size = min(size, fixed)
        # Round up to the next power of two.
        size = 1 << (size - 1).bit_length()
        return size

    # ------------------------------------------------------------------
    # L2 miss handling
    # ------------------------------------------------------------------
    def on_l2_miss(self, block, addr, ref_id, hint, now):
        hint = self._hint_for(ref_id, hint)
        if hint is None or not hint.any:
            self.grp_stats.unhinted_misses_ignored += 1
            return
        if hint.spatial:
            rsize = self._region_size_for(hint)
            self.grp_stats.spatial_regions += 1
            self.grp_stats.note_region_size(rsize // self.config.block_size)
            self.queue.allocate_region(block, now, region_size=rsize)
        if hint.indirect and self._indirect_base is not None:
            # Alternate encoding (Section 3.3.3): a miss on a hinted b[i]
            # load expands the returned index block against the base
            # register set before the loop.
            base, elem = self._indirect_base
            self._indirect_expand(base, elem, block, now)
        if hint.recursive:
            self._pending_scan_depth[block] = self.config.recursive_depth
        elif hint.pointer:
            self._pending_scan_depth[block] = 1

    def on_demand_fill(self, block, ref_id, hint, ready):
        depth = self._pending_scan_depth.pop(block, 0)
        if depth > 0:
            self._scan_and_queue(block, ready, depth)

    def on_prefetch_fill(self, request, ready):
        if request.depth > 0:
            self._scan_and_queue(request.block, ready, request.depth)

    def _scan_and_queue(self, block, now, depth):
        """The stateless pointer scan, gated by hints (depth counter > 0)."""
        self.grp_stats.pointer_scans += 1
        bsize = self.config.block_size
        for value in self.space.scan_pointers(block, bsize):
            self.grp_stats.pointers_prefetched += 1
            target = block_base(value, bsize)
            blocks = [
                target + i * bsize for i in range(self.config.pointer_blocks)
            ]
            self.queue.allocate_blocks(blocks, now, depth=depth - 1)

    # ------------------------------------------------------------------
    # Software directives
    # ------------------------------------------------------------------
    def on_directive(self, event, now):
        if isinstance(event, LoopBound):
            self._current_loop_bound = event.bound
        elif isinstance(event, IndirectPrefetch):
            self._indirect_prefetch(event, now)
        elif isinstance(event, SetIndirectBase):
            self._indirect_base = (event.base_addr, event.elem_size)

    def _indirect_prefetch(self, event, now):
        """Expand one indirect prefetch instruction into block prefetches."""
        self.grp_stats.indirect_instructions += 1
        index_block = block_base(event.index_addr, self.config.block_size)
        self._indirect_expand(event.base_addr, event.elem_size,
                              index_block, now)

    def _indirect_expand(self, base_addr, elem_size, index_block, now):
        """Read an index block and queue one prefetch per index value."""
        bsize = self.config.block_size
        indices = self.space.read_index_block(index_block, bsize)
        for idx in indices[:16]:  # up to 16 prefetches per expansion
            addr = base_addr + idx * elem_size
            blocks = list(block_range(addr, elem_size, bsize))
            self.grp_stats.indirect_prefetches += len(blocks)
            self.queue.allocate_blocks(blocks, now, depth=0)

    # ------------------------------------------------------------------
    def has_candidates(self):
        return self.queue.has_candidates()

    def pop_candidate(self, now, dram):
        return self.queue.pop_candidate(now, dram)

    def push_back(self, request):
        self.queue.push_back(request)

    def stats_snapshot(self):
        snap = super().stats_snapshot()
        g = self.grp_stats
        snap.update(
            spatial_regions=g.spatial_regions,
            unhinted_misses_ignored=g.unhinted_misses_ignored,
            pointer_scans=g.pointer_scans,
            pointers_prefetched=g.pointers_prefetched,
            indirect_instructions=g.indirect_instructions,
            indirect_prefetches=g.indirect_prefetches,
            region_size_histogram=dict(g.region_size_histogram),
            regions_allocated=self.queue.regions_allocated,
        )
        return snap
