"""Prefetcher interface.

All prefetch engines (SRP, GRP, stride stream buffers, pointer) plug into
the hierarchy through this interface.  The hierarchy calls the ``on_*``
hooks as the access stream unfolds; the memory controller pulls candidates
with :meth:`pop_candidate` whenever a DRAM channel is idle.

The base class is a correct null prefetcher: every hook is a no-op and no
candidates are ever produced, which is exactly the "no prefetching"
baseline configuration.
"""


class Prefetcher:
    """Base class and null implementation."""

    name = "none"

    #: Region schemes (SRP/GRP/pointer) install prefetched blocks in the L2
    #: (at the LRU position); stream-buffer schemes set this False and keep
    #: prefetched data in private buffer storage instead.
    fills_l2 = True

    def __init__(self):
        self.hierarchy = None
        self.space = None
        self.config = None
        #: Prefetch hits served from prefetcher-private storage (stream
        #: buffers); region schemes leave this at zero because their fills
        #: land in the L2, whose stats count usefulness.
        self.private_useful = 0
        self.private_fills = 0

    def attach(self, hierarchy, space, config):
        """Wire the engine to a hierarchy.  Called once by the hierarchy."""
        self.hierarchy = hierarchy
        self.space = space
        self.config = config

    # ------------------------------------------------------------------
    # Event hooks (called by the hierarchy)
    # ------------------------------------------------------------------
    def on_l2_access(self, block, addr, ref_id, hint, now, was_hit):
        """Every access that reaches the L2 (i.e. every L1 miss)."""

    def on_l2_miss(self, block, addr, ref_id, hint, now):
        """A demand L2 miss; the canonical trigger for region prefetching."""

    def on_demand_fill(self, block, ref_id, hint, ready):
        """The missing line arrived from DRAM (GRP scans it for pointers)."""

    def on_prefetch_fill(self, request, ready):
        """A prefetched line arrived (recursive pointer chase continues)."""

    def on_directive(self, event, now):
        """A software directive from the trace (loop bound / indirect pf)."""

    # ------------------------------------------------------------------
    # Candidate supply (called by the memory controller)
    # ------------------------------------------------------------------
    def on_candidate_dropped(self, request):
        """The controller dropped a candidate (target already resident)."""

    def probe(self, block, now):
        """Return data-ready cycle if the engine privately holds ``block``.

        Stream-buffer schemes store prefetched data outside the L2; a miss
        that hits a buffer is served from here.  Region schemes return None.
        """
        return None

    def has_candidates(self):
        """True when :meth:`pop_candidate` could return a request.

        The controller's issue loop is called before every demand access;
        this cheap probe lets it (and the hierarchy's fast path) skip the
        loop entirely while the queue is verifiably empty.  May report
        True for a queue holding only exhausted entries — pruning those is
        :meth:`pop_candidate`'s job, and some engines sample the queue
        depth before pruning.
        """
        return False

    def pop_candidate(self, now, dram):
        """Return the next :class:`PrefetchRequest` to issue, or None."""
        return None

    def push_back(self, request):
        """Return an unissuable candidate to the head of the queue."""

    # ------------------------------------------------------------------
    def stats_snapshot(self):
        """Engine-private counters folded into the run's statistics."""
        return {
            "private_useful": self.private_useful,
            "private_fills": self.private_fills,
        }


class NullPrefetcher(Prefetcher):
    """Explicit alias for the no-prefetching baseline."""

    name = "none"
