"""Gaze-style spatial-pattern prefetching (Zhang et al., arXiv 2412.05211).

A modernization of SRP's region idea: instead of blindly fetching every
block of a missed region, learn *which* blocks of a region each static
load actually touches — its spatial **footprint** — and replay only
those, in the order they were touched, the next time the same load
triggers a fresh region.

Mechanics (adapted to this simulator's trace model, where the static
reference id stands in for the PC):

* An **active generation table** (AGT) tracks regions currently being
  observed.  The first L2 access to an untracked region opens a
  *generation* anchored at that access — the trigger PC and the trigger
  block's index within the region.  Every later first touch of another
  block in the region sets its bit in the footprint bit-vector *and*
  appends its offset-from-trigger to the generation's temporal order
  list, so the footprint remembers not just *which* blocks but *in what
  order* the program wanted them.
* A generation ends when its AGT entry is evicted (LRU, fixed
  capacity), when a block already in the footprint **misses again** —
  evidence the region's lines have aged out of the L2 and the program
  has come back around — or when its **trigger PC opens a generation
  in another region** (the streaming signal: the load moved on, so the
  footprint it left behind is complete).  The closing footprint is
  committed to a **pattern history table** (PHT) keyed by the trigger
  PC.
* A demand miss that opens a generation is a **trigger**: if the PHT
  holds a pattern for the missing PC, the pattern is replayed — each
  stored delta is rebased onto the new trigger block (wrapping within
  the region) and queued in the stored temporal order, skipping blocks
  already resident.  Replay length is capped by the queue's
  ``region_size`` knob, which is what the adaptive throttle shrinks.

Prefetched lines land in the L2 like SRP/GRP region prefetches; issue
goes through the shared :class:`~repro.prefetch.pending.PendingQueue`,
so the memory controller's idle-channel prioritizer and blocked-issue
cache apply unchanged.
"""

from collections import OrderedDict

from repro.mem.controller import PrefetchRequest
from repro.prefetch.base import Prefetcher
from repro.prefetch.pending import PendingQueue


class Generation:
    """One region under observation: trigger anchor + footprint so far."""

    __slots__ = ("base", "trigger_pc", "trigger_index", "bitvec", "order",
                 "replayed", "last_touch_fresh")

    def __init__(self, base, trigger_pc, trigger_index):
        self.base = base
        self.trigger_pc = trigger_pc
        self.trigger_index = trigger_index
        self.bitvec = 1 << trigger_index
        #: Offsets-from-trigger (mod region blocks) in first-touch order;
        #: the trigger block itself (delta 0) is never recorded.
        self.order = []
        self.replayed = False
        #: Whether the most recent access to this region was a first
        #: touch.  The access hook fires before the miss hook and sets
        #: the footprint bit, so the miss hook needs this to tell a
        #: first-touch miss (footprint growth) from a genuine re-miss
        #: (the region's lines aged out of the L2).
        self.last_touch_fresh = True


class GazePrefetcher(Prefetcher):
    """Per-PC region footprints with temporal-order replay."""

    name = "gaze"

    def __init__(self, agt_entries=64, pht_entries=512, min_footprint=1):
        super().__init__()
        self.agt_entries = agt_entries
        self.pht_entries = pht_entries
        #: Minimum non-trigger blocks a footprint needs to be committed;
        #: single-block generations carry no spatial information.
        self.min_footprint = min_footprint
        self._agt = OrderedDict()  # region base -> Generation (LRU order)
        self._pht = OrderedDict()  # trigger pc -> tuple of deltas (LRU)
        #: trigger pc -> region base of the generation it anchors.  A
        #: streaming load triggers region after region; the old
        #: generation would otherwise linger in the AGT until LRU
        #: eviction, starving the PHT.  When a PC opens a generation in
        #: a *new* region, the one it anchored before has clearly ended
        #: — commit it then.
        self._by_pc = {}
        self.generations_opened = 0
        self.patterns_committed = 0
        self.replays = 0
        self.replayed_blocks = 0

    def attach(self, hierarchy, space, config):
        super().attach(hierarchy, space, config)
        self._region_mask = config.region_size - 1
        self._block_shift = config.block_size.bit_length() - 1
        self._nblocks = config.region_size // config.block_size
        self._resident_map = hierarchy.l2.resident_map
        # Same candidate headroom a full region queue could hold.
        self.queue = PendingQueue(
            config.prefetch_queue_size * self._nblocks,
            config.region_size,
            config.block_size,
        )

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def _open_generation(self, rbase, ref_id, index):
        """Start observing ``rbase``; close what this opening ends.

        Two generations end here: the one this PC anchored in another
        region (the load moved on — the streaming end-of-generation
        signal), and the AGT's LRU victim when the table is full.
        """
        agt = self._agt
        if ref_id is not None:
            old_rbase = self._by_pc.pop(ref_id, None)
            if old_rbase is not None and old_rbase != rbase:
                old = agt.pop(old_rbase, None)
                if old is not None:
                    self._commit(old)
        if len(agt) >= self.agt_entries:
            _, victim = agt.popitem(last=False)
            if victim.trigger_pc is not None \
                    and self._by_pc.get(victim.trigger_pc) == victim.base:
                del self._by_pc[victim.trigger_pc]
            self._commit(victim)
        gen = Generation(rbase, ref_id, index)
        agt[rbase] = gen
        if ref_id is not None:
            self._by_pc[ref_id] = rbase
        self.generations_opened += 1
        return gen

    def _commit(self, gen):
        """Fold a closing generation's footprint into the PHT."""
        if gen.trigger_pc is None or len(gen.order) < self.min_footprint:
            return
        pht = self._pht
        if gen.trigger_pc in pht:
            del pht[gen.trigger_pc]
        elif len(pht) >= self.pht_entries:
            pht.popitem(last=False)
        pht[gen.trigger_pc] = tuple(gen.order)
        self.patterns_committed += 1

    def on_l2_access(self, block, addr, ref_id, hint, now, was_hit):
        rbase = block & ~self._region_mask
        index = (block & self._region_mask) >> self._block_shift
        agt = self._agt
        gen = agt.get(rbase)
        if gen is None:
            self._open_generation(rbase, ref_id, index)
            return
        agt.move_to_end(rbase)
        bit = 1 << index
        if not gen.bitvec & bit:
            gen.bitvec |= bit
            gen.order.append((index - gen.trigger_index) % self._nblocks)
            gen.last_touch_fresh = True
        else:
            gen.last_touch_fresh = False

    # ------------------------------------------------------------------
    # Trigger / replay
    # ------------------------------------------------------------------
    def on_l2_miss(self, block, addr, ref_id, hint, now):
        rbase = block & ~self._region_mask
        index = (block & self._region_mask) >> self._block_shift
        gen = self._agt.get(rbase)
        if gen is None:  # reference-path robustness; access hook ran first
            gen = self._open_generation(rbase, ref_id, index)
        if (not gen.replayed and index == gen.trigger_index
                and gen.bitvec == 1 << gen.trigger_index):
            # The miss that opened this generation: a fresh trigger.
            gen.replayed = True
            self._replay(rbase, index, ref_id, now)
            return
        if gen.order and gen.bitvec & (1 << index) \
                and not gen.last_touch_fresh:
            # Re-miss on a block the footprint already recorded — not
            # the first-touch miss that just set the bit in the access
            # hook: the region's lines aged out of the L2.  Close the
            # generation and restart it, anchored (and replayed) at
            # this miss.
            self._commit(gen)
            del self._agt[rbase]
            gen = self._open_generation(rbase, ref_id, index)
            gen.replayed = True
            self._replay(rbase, index, ref_id, now)

    def _replay(self, rbase, trigger_index, ref_id, now):
        if ref_id is None:
            return
        pattern = self._pht.get(ref_id)
        if pattern is None:
            return
        self._pht.move_to_end(ref_id)
        bsize = self.config.block_size
        nblocks = self._nblocks
        # The adaptive throttle's region-size knob caps how many blocks
        # one replay may queue (the full region at the default setting).
        limit = max(1, self.queue.region_size // bsize) - 1
        resident = self._resident_map
        queued = 0
        for delta in pattern:
            if queued >= limit:
                break
            target = rbase + ((trigger_index + delta) % nblocks) * bsize
            if target in resident:
                continue
            self.queue.push(PrefetchRequest(target, now))
            queued += 1
        self.replays += 1
        self.replayed_blocks += queued

    # ------------------------------------------------------------------
    # Candidate supply (delegated to the pending queue)
    # ------------------------------------------------------------------
    def has_candidates(self):
        return self.queue.has_candidates()

    def pop_candidate(self, now, dram):
        return self.queue.pop_candidate(now, dram)

    def push_back(self, request):
        self.queue.push_back(request)

    def stats_snapshot(self):
        snap = super().stats_snapshot()
        snap.update(
            generations_opened=self.generations_opened,
            patterns_committed=self.patterns_committed,
            patterns_live=len(self._pht),
            replays=self.replays,
            replayed_blocks=self.replayed_blocks,
            candidates_queued=self.queue.candidates_queued,
            dropped_overflow=self.queue.dropped_overflow,
        )
        return snap
