"""Scheduled Region Prefetching (Lin, Reinhardt, Burger — HPCA 2001).

The hardware-only baseline that GRP builds on.  On *every* L2 demand miss,
SRP allocates a prefetch-queue entry for the whole aligned region (4 KB by
default) containing the miss, and the controller streams the candidate
blocks to the L2 whenever the DRAM channels are idle.  No software
involvement, no access-pattern filtering — which is why SRP's coverage is
high and its traffic enormous.
"""

from repro.prefetch.base import Prefetcher
from repro.prefetch.regionqueue import RegionQueue


class SRPPrefetcher(Prefetcher):
    """Hardware-only scheduled region prefetching."""

    name = "srp"

    def attach(self, hierarchy, space, config):
        super().attach(hierarchy, space, config)
        self.queue = RegionQueue(
            config.prefetch_queue_size,
            config.region_size,
            config.block_size,
            is_resident=hierarchy.l2.contains_block,
            policy=config.prefetch_queue_policy,
            resident_map=hierarchy.l2.resident_map,
        )

    def on_l2_miss(self, block, addr, ref_id, hint, now):
        self.queue.allocate_region(block, now)

    def has_candidates(self):
        return self.queue.has_candidates()

    def pop_candidate(self, now, dram):
        return self.queue.pop_candidate(now, dram)

    def push_back(self, request):
        self.queue.push_back(request)

    def stats_snapshot(self):
        snap = super().stats_snapshot()
        snap.update(
            regions_allocated=self.queue.regions_allocated,
            regions_dropped=self.queue.regions_dropped,
            candidates_issued=self.queue.candidates_issued,
        )
        return snap
