"""The SRP/GRP prefetch queue.

The queue (Section 3.1 of the paper) holds *region entries*.  Each entry
describes one aligned memory region and carries:

* the region base address,
* a bitvector of candidate blocks still to prefetch (64 bits for the
  default 4 KB region / 64 B blocks),
* an index pointing at the next candidate after the most recent miss,
* a 3-bit pointer-chase depth counter (0 for plain spatial regions; 1 for
  ``pointer``-hinted prefetches; ``recursive_depth`` for recursive ones).

New entries go to the head; the queue is fixed-size and old entries fall
off the bottom.  Issue order is LIFO (most recent region first — the paper's
scheduling policy) with an open-DRAM-page preference among a head entry's
candidate blocks.
"""

from repro.mem.controller import PrefetchRequest
from repro.mem.layout import block_index_in_region, region_base


class RegionEntry:
    """One region being prefetched."""

    __slots__ = ("base", "bitvec", "nblocks", "index", "depth", "queued_at")

    def __init__(self, base, bitvec, nblocks, index, depth, queued_at):
        self.base = base
        self.bitvec = bitvec
        self.nblocks = nblocks
        self.index = index
        self.depth = depth
        self.queued_at = queued_at

    def candidate_count(self):
        return bin(self.bitvec).count("1")

    def __repr__(self):
        return "RegionEntry(0x%x %d blocks, %d pending)" % (
            self.base,
            self.nblocks,
            self.candidate_count(),
        )


class RegionQueue:
    """Fixed-size LIFO (or FIFO, for ablation) queue of region entries."""

    def __init__(
        self,
        capacity,
        region_size,
        block_size,
        is_resident=None,
        policy="lifo",
    ):
        if policy not in ("lifo", "fifo"):
            raise ValueError("queue policy must be 'lifo' or 'fifo'")
        self.capacity = capacity
        self.region_size = region_size
        self.block_size = block_size
        self.is_resident = is_resident
        self.policy = policy
        self._entries = []  # index 0 = head (most recent)
        self._held = None  # candidate returned by push_back
        self.regions_allocated = 0
        self.regions_dropped = 0
        self.candidates_issued = 0
        self.region_splits = 0

    def __len__(self):
        return len(self._entries)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def _find_covering(self, miss_block):
        """Position of the entry whose span contains ``miss_block``, or -1.

        Entries may carry different region sizes (variable-size regions),
        so containment is tested against each entry's *own* span rather
        than a base address computed with the caller's region size —
        matching by recomputed base could alias a different entry and
        clear the wrong bitvector bit.
        """
        for pos, entry in enumerate(self._entries):
            span = entry.nblocks * self.block_size
            if entry.base <= miss_block < entry.base + span:
                return pos
        return -1

    def allocate_region(self, miss_block, now, region_size=None, depth=0):
        """Allocate (or refresh) the region containing ``miss_block``.

        On the first miss to a region the bitvector is initialised to the
        blocks not already resident in the L2 (excluding the miss block
        itself, which the demand fetch brings in).  On a repeat miss the
        existing entry's miss bit is cleared, its index advances past the
        new miss, and the entry moves to the head; indices are re-derived
        from the entry's own geometry, which may differ from ``rsize``.
        """
        rsize = region_size or self.region_size
        pos = self._find_covering(miss_block)
        if pos >= 0:
            entry = self._entries.pop(pos)
            miss_index = (miss_block - entry.base) // self.block_size
            entry.bitvec &= ~(1 << miss_index)
            entry.index = (miss_index + 1) % entry.nblocks
            entry.queued_at = now
            self._entries.insert(0, entry)
            return entry
        base = region_base(miss_block, rsize)
        nblocks = rsize // self.block_size
        miss_index = block_index_in_region(miss_block, rsize, self.block_size)
        bitvec = 0
        for i in range(nblocks):
            block = base + i * self.block_size
            if i == miss_index:
                continue
            if self.is_resident is not None and self.is_resident(block):
                continue
            bitvec |= 1 << i
        entry = RegionEntry(
            base, bitvec, nblocks, (miss_index + 1) % nblocks, depth, now
        )
        self._insert(entry)
        return entry

    def allocate_blocks(self, blocks, now, depth=0):
        """Allocate entries for an explicit block list (pointer/indirect).

        Pointer and indirect prefetches are region-style entries with only
        the named blocks' bits set (typically the target block plus its
        successor).  A block list that straddles an aligned-region boundary
        — a pointer target in the last block of a region, say — is split
        into one entry per region, so no named block is ever silently
        dropped.  Returns the list of entries created (possibly empty when
        every block is already resident).
        """
        if not blocks:
            return []
        nblocks = self.region_size // self.block_size
        groups = {}
        for block in blocks:
            groups.setdefault(
                region_base(block, self.region_size), []
            ).append(block)
        if len(groups) > 1:
            self.region_splits += 1
        entries = []
        for base, group in groups.items():
            bitvec = 0
            for block in group:
                if self.is_resident is not None and self.is_resident(block):
                    continue
                idx = block_index_in_region(
                    block, self.region_size, self.block_size
                )
                bitvec |= 1 << idx
            if bitvec == 0:
                continue
            first = block_index_in_region(
                group[0], self.region_size, self.block_size
            )
            entry = RegionEntry(base, bitvec, nblocks, first, depth, now)
            self._insert(entry)
            entries.append(entry)
        return entries

    def _insert(self, entry):
        self.regions_allocated += 1
        self._entries.insert(0, entry)
        if len(self._entries) > self.capacity:
            self._entries.pop()  # old entries fall off the bottom
            self.regions_dropped += 1

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------
    def pop_candidate(self, now, dram=None):
        """Return the next :class:`PrefetchRequest`, or None when empty."""
        if self._held is not None:
            request, self._held = self._held, None
            return request
        while self._entries:
            pos = 0 if self.policy == "lifo" else len(self._entries) - 1
            entry = self._entries[pos]
            block = self._select_block(entry, dram)
            if block is None:
                self._entries.pop(pos)
                continue
            self.candidates_issued += 1
            return PrefetchRequest(
                block, entry.queued_at, depth=entry.depth, meta=entry
            )
        return None

    def _select_block(self, entry, dram):
        """Pick (and clear) the next candidate bit of ``entry``.

        Scans from the entry's index, wrapping, and prefers the first
        candidate whose DRAM row is already open; falls back to the first
        candidate in scan order.  Returns None when no bits remain.
        """
        if entry.bitvec == 0:
            return None
        first_block = None
        first_index = None
        for step in range(entry.nblocks):
            i = (entry.index + step) % entry.nblocks
            if not (entry.bitvec >> i) & 1:
                continue
            block = entry.base + i * self.block_size
            if first_block is None:
                first_block, first_index = block, i
            if dram is not None and dram.row_is_open(block):
                entry.bitvec &= ~(1 << i)
                entry.index = (i + 1) % entry.nblocks
                return block
        entry.bitvec &= ~(1 << first_index)
        entry.index = (first_index + 1) % entry.nblocks
        return first_block

    def push_back(self, request):
        """Hold an unissuable candidate; it is returned by the next pop."""
        self._held = request
