"""The SRP/GRP prefetch queue.

The queue (Section 3.1 of the paper) holds *region entries*.  Each entry
describes one aligned memory region and carries:

* the region base address,
* a bitvector of candidate blocks still to prefetch (64 bits for the
  default 4 KB region / 64 B blocks),
* an index pointing at the next candidate after the most recent miss,
* a 3-bit pointer-chase depth counter (0 for plain spatial regions; 1 for
  ``pointer``-hinted prefetches; ``recursive_depth`` for recursive ones).

New entries go to the head; the queue is fixed-size and old entries fall
off the bottom.  Issue order is LIFO (most recent region first — the paper's
scheduling policy) with an open-DRAM-page preference among a head entry's
candidate blocks.
"""

from repro.mem.controller import PrefetchRequest
from repro.mem.layout import block_index_in_region, region_base


class RegionEntry:
    """One region being prefetched."""

    __slots__ = ("base", "bitvec", "nblocks", "index", "depth", "queued_at")

    def __init__(self, base, bitvec, nblocks, index, depth, queued_at):
        self.base = base
        self.bitvec = bitvec
        self.nblocks = nblocks
        self.index = index
        self.depth = depth
        self.queued_at = queued_at

    def candidate_count(self):
        return bin(self.bitvec).count("1")

    def __repr__(self):
        return "RegionEntry(0x%x %d blocks, %d pending)" % (
            self.base,
            self.nblocks,
            self.candidate_count(),
        )


class RegionQueue:
    """Fixed-size LIFO (or FIFO, for ablation) queue of region entries."""

    def __init__(
        self,
        capacity,
        region_size,
        block_size,
        is_resident=None,
        policy="lifo",
        resident_map=None,
    ):
        if policy not in ("lifo", "fifo"):
            raise ValueError("queue policy must be 'lifo' or 'fifo'")
        self.capacity = capacity
        self.region_size = region_size
        self.block_size = block_size
        self.is_resident = is_resident
        #: Optional live container of resident blocks (see
        #: :attr:`repro.mem.cache.Cache.resident_map`); when given it
        #: replaces an ``is_resident`` call per probed block with one
        #: ``in`` test on the region-allocation paths.
        self.resident_map = resident_map
        self.policy = policy
        self._lifo = policy == "lifo"
        self._entries = []  # index 0 = head (most recent)
        self._held = None  # candidate returned by push_back
        #: Denormalized row-probe geometry of the most recent ``dram``
        #: argument (see :meth:`pop_candidate`): the geometry fields are
        #: fixed at DRAMSystem construction, so one identity check
        #: replaces four attribute loads on every pop.
        self._geo_src = None
        self._geo = None
        self.regions_allocated = 0
        self.regions_dropped = 0
        self.candidates_issued = 0
        self.region_splits = 0

    def __len__(self):
        return len(self._entries)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def _find_covering(self, miss_block):
        """Position of the entry whose span contains ``miss_block``, or -1.

        Entries may carry different region sizes (variable-size regions),
        so containment is tested against each entry's *own* span rather
        than a base address computed with the caller's region size —
        matching by recomputed base could alias a different entry and
        clear the wrong bitvector bit.
        """
        for pos, entry in enumerate(self._entries):
            span = entry.nblocks * self.block_size
            if entry.base <= miss_block < entry.base + span:
                return pos
        return -1

    def allocate_region(self, miss_block, now, region_size=None, depth=0):
        """Allocate (or refresh) the region containing ``miss_block``.

        On the first miss to a region the bitvector is initialised to the
        blocks not already resident in the L2 (excluding the miss block
        itself, which the demand fetch brings in).  On a repeat miss the
        existing entry's miss bit is cleared, its index advances past the
        new miss, and the entry moves to the head; indices are re-derived
        from the entry's own geometry, which may differ from ``rsize``.
        """
        rsize = region_size or self.region_size
        pos = self._find_covering(miss_block)
        if pos >= 0:
            entry = self._entries.pop(pos)
            miss_index = (miss_block - entry.base) // self.block_size
            entry.bitvec &= ~(1 << miss_index)
            entry.index = (miss_index + 1) % entry.nblocks
            entry.queued_at = now
            self._entries.insert(0, entry)
            return entry
        base = region_base(miss_block, rsize)
        nblocks = rsize // self.block_size
        miss_index = block_index_in_region(miss_block, rsize, self.block_size)
        bitvec = 0
        bsize = self.block_size
        resident_map = self.resident_map
        if resident_map is not None:
            for i in range(nblocks):
                if i == miss_index or base + i * bsize in resident_map:
                    continue
                bitvec |= 1 << i
        else:
            is_resident = self.is_resident
            for i in range(nblocks):
                block = base + i * bsize
                if i == miss_index:
                    continue
                if is_resident is not None and is_resident(block):
                    continue
                bitvec |= 1 << i
        entry = RegionEntry(
            base, bitvec, nblocks, (miss_index + 1) % nblocks, depth, now
        )
        self._insert(entry)
        return entry

    def allocate_blocks(self, blocks, now, depth=0):
        """Allocate entries for an explicit block list (pointer/indirect).

        Pointer and indirect prefetches are region-style entries with only
        the named blocks' bits set (typically the target block plus its
        successor).  A block list that straddles an aligned-region boundary
        — a pointer target in the last block of a region, say — is split
        into one entry per region, so no named block is ever silently
        dropped.  Returns the list of entries created (possibly empty when
        every block is already resident).
        """
        if not blocks:
            return []
        nblocks = self.region_size // self.block_size
        groups = {}
        for block in blocks:
            groups.setdefault(
                region_base(block, self.region_size), []
            ).append(block)
        if len(groups) > 1:
            self.region_splits += 1
        entries = []
        resident_map = self.resident_map
        for base, group in groups.items():
            bitvec = 0
            for block in group:
                if resident_map is not None:
                    if block in resident_map:
                        continue
                elif self.is_resident is not None and self.is_resident(block):
                    continue
                idx = block_index_in_region(
                    block, self.region_size, self.block_size
                )
                bitvec |= 1 << idx
            if bitvec == 0:
                continue
            first = block_index_in_region(
                group[0], self.region_size, self.block_size
            )
            entry = RegionEntry(base, bitvec, nblocks, first, depth, now)
            self._insert(entry)
            entries.append(entry)
        return entries

    def flush(self):
        """Drop every queued entry (and any held candidate).

        Returns the number of candidate blocks discarded.  Used by the
        adaptive throttle policy when it disables prefetching: stale
        candidates must not keep trickling out of the queue afterwards.
        """
        count = sum(entry.candidate_count() for entry in self._entries)
        self._entries.clear()
        if self._held is not None:
            count += 1
            self._held = None
        return count

    def _insert(self, entry):
        self.regions_allocated += 1
        self._entries.insert(0, entry)
        if len(self._entries) > self.capacity:
            self._entries.pop()  # old entries fall off the bottom
            self.regions_dropped += 1

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------
    def has_candidates(self):
        """True when a pop could yield a request *or* prune an entry.

        Deliberately counts entries with exhausted bitvectors: popping
        prunes them, which changes the queue depth the metrics layer
        samples, so callers must not skip the pop while any entry exists.
        """
        return self._held is not None or bool(self._entries)

    def pop_candidate(self, now, dram=None):
        """Return the next :class:`PrefetchRequest`, or None when empty."""
        if self._held is not None:
            request, self._held = self._held, None
            return request
        entries = self._entries
        if not entries:
            return None
        lifo = self._lifo
        bsize = self.block_size
        if dram is not None:
            # Row-probe state, denormalized out of DRAMSystem: the open-row
            # preference scan below replicates row_is_open per candidate.
            # Duck-typed DRAM stands-ins (tests) keep the method call.
            # The geometry is immutable per DRAMSystem, so it is derived
            # once per distinct ``dram`` and replayed from ``_geo`` on
            # every later pop (the hottest call of the issue loop).
            if dram is not self._geo_src:
                open_rows = getattr(dram, "_open_rows", None)
                if open_rows is not None:
                    self._geo = (
                        open_rows, dram._block_shift, dram._channels,
                        dram._banks, dram._blocks_per_row,
                    )
                else:
                    self._geo = None
                self._geo_src = dram
            geo = self._geo
            if geo is not None:
                open_rows, blk_shift, n_channels, n_banks, \
                    blocks_per_row = geo
            else:
                open_rows = None
                row_is_open = dram.row_is_open
        while entries:
            pos = 0 if lifo else len(entries) - 1
            entry = entries[pos]
            # _select_block, inlined (the hottest call of the issue loop):
            # scan the set bits from the entry's index, wrapping, prefer
            # the first candidate whose DRAM row is open, fall back to the
            # first candidate in scan order.
            bitvec = entry.bitvec
            if bitvec == 0:
                entries.pop(pos)
                continue
            nblocks = entry.nblocks
            index = entry.index
            base = entry.base
            rot = ((bitvec >> index) | (bitvec << (nblocks - index))) \
                & ((1 << nblocks) - 1)
            first_index = None
            block = None
            if dram is not None:
                while rot:
                    i = index + (rot & -rot).bit_length() - 1
                    if i >= nblocks:
                        i -= nblocks
                    if first_index is None:
                        first_index = i
                    addr = base + i * bsize
                    if open_rows is not None:
                        nblk = addr >> blk_shift
                        per = nblk // n_channels // blocks_per_row
                        is_open = (
                            open_rows[nblk % n_channels][per % n_banks]
                            == per // n_banks
                        )
                    else:
                        is_open = row_is_open(addr)
                    if is_open:
                        block = addr
                        break
                    rot &= rot - 1
            else:
                first_index = index + (rot & -rot).bit_length() - 1
                if first_index >= nblocks:
                    first_index -= nblocks
            if block is None:
                i = first_index
                block = base + i * bsize
            entry.bitvec = bitvec & ~(1 << i)
            entry.index = (i + 1) % nblocks
            self.candidates_issued += 1
            return PrefetchRequest(
                block, entry.queued_at, depth=entry.depth, meta=entry
            )
        return None

    def _select_block(self, entry, dram):
        """Pick (and clear) the next candidate bit of ``entry``.

        Scans from the entry's index, wrapping, and prefers the first
        candidate whose DRAM row is already open; falls back to the first
        candidate in scan order.  Returns None when no bits remain.

        The scan rotates the bitvector so the wrapped order starts at bit
        0, then walks only the *set* bits (isolate lowest, clear, repeat)
        — same visit order as a position-by-position loop, without
        touching the empty positions.
        """
        bitvec = entry.bitvec
        if bitvec == 0:
            return None
        nblocks = entry.nblocks
        index = entry.index
        base = entry.base
        bsize = self.block_size
        rot = ((bitvec >> index) | (bitvec << (nblocks - index))) \
            & ((1 << nblocks) - 1)
        first_index = None
        while rot:
            i = index + (rot & -rot).bit_length() - 1
            if i >= nblocks:
                i -= nblocks
            if first_index is None:
                first_index = i
            if dram is not None and dram.row_is_open(base + i * bsize):
                entry.bitvec = bitvec & ~(1 << i)
                entry.index = (i + 1) % nblocks
                return base + i * bsize
            rot &= rot - 1
        entry.bitvec = bitvec & ~(1 << first_index)
        entry.index = (first_index + 1) % nblocks
        return base + first_index * bsize

    def push_back(self, request):
        """Hold an unissuable candidate; it is returned by the next pop."""
        self._held = request
