"""Head-stable FIFO candidate queue for the literature-derived engines.

The SRP/GRP :class:`~repro.prefetch.regionqueue.RegionQueue` stores
*region entries* and derives candidates from bitvectors; the Gaze and
pointer-chase engines instead compute explicit block lists at trigger
time, so they queue ready-made :class:`~repro.mem.controller.
PrefetchRequest` objects directly.  This queue gives them the same
contract the rest of the system expects from an engine's ``queue``
attribute:

* **Head stability.**  :meth:`push_back` holds the candidate in a
  dedicated slot and the next :meth:`pop_candidate` returns it verbatim,
  which is what lets the memory controller arm its blocked-issue cache
  (see ``MemoryController.issue_prefetches``) instead of re-probing the
  queue on every demand access.
* **Metrics compatibility.**  ``len(queue)`` is sampled for the
  queue-depth timeseries and ``region_splits`` is read by the metrics
  summary (always zero here: explicit block lists never straddle-split).
* **Adaptive compatibility.**  ``region_size`` is a plain attribute the
  :class:`~repro.adapt.controller.AdaptiveController`'s knob ladder can
  write (engines give it meaning — Gaze caps replay length with it), and
  :meth:`flush` drops everything for the disable transition, returning
  the count so the throttle can report it.

The queue is bounded; when full, the *oldest* pending candidate falls
off the front, mirroring the region queue's drop-from-the-bottom policy
(the newest trigger is the most likely to matter).
"""

from collections import deque


class PendingQueue:
    """Bounded FIFO of PrefetchRequests with a push-back hold slot."""

    def __init__(self, capacity, region_size, block_size):
        self.capacity = capacity
        #: Adaptive region-size knob target (bytes).  The queue itself
        #: does not consume it; the owning engine reads it at trigger
        #: time (e.g. Gaze caps how far a replay may run).
        self.region_size = region_size
        self.block_size = block_size
        #: Metrics-summary compatibility: explicit block-list engines
        #: never split an allocation across regions.
        self.region_splits = 0
        self.candidates_queued = 0
        self.candidates_issued = 0
        self.dropped_overflow = 0
        self._fifo = deque()
        self._held = None  # candidate returned by push_back

    def __len__(self):
        return len(self._fifo) + (1 if self._held is not None else 0)

    # ------------------------------------------------------------------
    def push(self, request):
        """Append one candidate; the oldest falls off when full."""
        self._fifo.append(request)
        self.candidates_queued += 1
        if len(self._fifo) > self.capacity:
            self._fifo.popleft()
            self.dropped_overflow += 1

    def has_candidates(self):
        return self._held is not None or bool(self._fifo)

    def pop_candidate(self, now, dram=None):
        """Return the next candidate (held-first), or None when empty."""
        if self._held is not None:
            request, self._held = self._held, None
            return request
        if not self._fifo:
            return None
        self.candidates_issued += 1
        return self._fifo.popleft()

    def push_back(self, request):
        """Hold an unissuable candidate; the next pop returns it."""
        self._held = request

    def flush(self):
        """Drop every queued candidate (and any held one); return count."""
        count = len(self._fifo)
        self._fifo.clear()
        if self._held is not None:
            count += 1
            self._held = None
        return count
