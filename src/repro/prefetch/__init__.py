"""Prefetch engines: the paper's GRP plus every baseline it compares to."""

from repro.prefetch.base import NullPrefetcher, Prefetcher
from repro.prefetch.regionqueue import RegionEntry, RegionQueue
from repro.prefetch.srp import SRPPrefetcher
from repro.prefetch.stride import StridePrefetcher, StrideTable, StreamBuffer
from repro.prefetch.pointer import PointerPrefetcher, RecursivePointerPrefetcher
from repro.prefetch.grp import GRPPrefetcher

__all__ = [
    "GRPPrefetcher",
    "NullPrefetcher",
    "PointerPrefetcher",
    "Prefetcher",
    "RecursivePointerPrefetcher",
    "RegionEntry",
    "RegionQueue",
    "SRPPrefetcher",
    "StreamBuffer",
    "StridePrefetcher",
    "StrideTable",
]
