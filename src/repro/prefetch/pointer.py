"""Stateless content-directed pointer prefetching (Section 3.2).

The hardware-only pointer scheme: whenever a line returns from memory, scan
its eight aligned 8-byte slots for values that pass the heap base-and-bounds
check and queue a prefetch for each — two cache blocks per pointer, because
typical SPEC structures are under 64 bytes and two blocks cover structure
misalignment.  The recursive variant keeps scanning the lines those
prefetches return, up to a fixed depth.

This is the engine evaluated alone in Figure 9 of the paper; GRP reuses the
same mechanism but gates it behind compiler ``pointer``/``recursive`` hints
(see :mod:`repro.prefetch.grp`).
"""

from repro.mem.layout import block_base
from repro.prefetch.base import Prefetcher
from repro.prefetch.regionqueue import RegionQueue


class PointerPrefetcher(Prefetcher):
    """Hardware-only greedy pointer (and optionally recursive) prefetching."""

    name = "pointer"

    def __init__(self, recursive=False):
        super().__init__()
        self.recursive = recursive
        self.pointers_found = 0
        self.scans = 0

    def attach(self, hierarchy, space, config):
        super().attach(hierarchy, space, config)
        self.queue = RegionQueue(
            config.prefetch_queue_size,
            config.region_size,
            config.block_size,
            is_resident=hierarchy.l2.contains_block,
            policy=config.prefetch_queue_policy,
            resident_map=hierarchy.l2.resident_map,
        )
        self._initial_depth = config.recursive_depth if self.recursive else 1

    # ------------------------------------------------------------------
    def _scan_and_queue(self, block, now, depth):
        """Scan a returned line; queue 2-block entries for heap pointers.

        ``depth`` is the paper's 3-bit counter: the number of further levels
        the chase may descend.  Zero means stop.
        """
        if depth <= 0:
            return
        self.scans += 1
        bsize = self.config.block_size
        for value in self.space.scan_pointers(block, bsize):
            self.pointers_found += 1
            target = block_base(value, bsize)
            blocks = [
                target + i * bsize for i in range(self.config.pointer_blocks)
            ]
            self.queue.allocate_blocks(blocks, now, depth=depth - 1)

    # ------------------------------------------------------------------
    def on_demand_fill(self, block, ref_id, hint, ready):
        self._scan_and_queue(block, ready, self._initial_depth)

    def on_prefetch_fill(self, request, ready):
        if request.depth > 0:
            self._scan_and_queue(request.block, ready, request.depth)

    def has_candidates(self):
        return self.queue.has_candidates()

    def pop_candidate(self, now, dram):
        return self.queue.pop_candidate(now, dram)

    def push_back(self, request):
        self.queue.push_back(request)

    def stats_snapshot(self):
        snap = super().stats_snapshot()
        snap.update(
            pointers_found=self.pointers_found,
            scans=self.scans,
            regions_allocated=self.queue.regions_allocated,
        )
        return snap


class RecursivePointerPrefetcher(PointerPrefetcher):
    """Pointer prefetching that chases to ``config.recursive_depth`` levels."""

    name = "pointer-recursive"

    def __init__(self):
        super().__init__(recursive=True)
