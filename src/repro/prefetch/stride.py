"""Predictor-directed stream buffers, stride predictor only (Sherwood et al.,
MICRO 2000) — the paper's pure-hardware stride baseline.

Configuration per Section 5.1 of the GRP paper: a 4-way set-associative
stride history table with 1K entries (indexed by the load's PC — in this
simulator, the static reference id), shared by 8 stream buffers of 8
entries each.  The Markov half of Sherwood's predictor is omitted, as in
the paper ("we compare to the strided stream buffers scheme only, since the
Markov predictor consumes too much state to be practical").

Mechanics:

* Every access that reaches the L2 trains the per-PC stride entry (a 2-bit
  confidence counter guards against noise).
* An L2 miss first probes the stream buffers; a hit supplies the block from
  buffer storage (waiting out any in-flight latency) and lets the buffer
  run further ahead.
* A miss that hits no buffer allocates one (LRU replacement) when the
  missing PC has a confident non-zero stride; the buffer then generates
  prefetches down the predicted stream, issued only into idle DRAM
  channels like every other prefetch in this system.
"""

from repro.mem.controller import PrefetchRequest
from repro.mem.layout import block_base
from repro.prefetch.base import Prefetcher


class StrideEntry:
    """One stride-history-table entry."""

    __slots__ = ("last_addr", "stride", "confidence")

    def __init__(self, addr):
        self.last_addr = addr
        self.stride = 0
        self.confidence = 0


class StrideTable:
    """4-way set-associative per-PC stride predictor."""

    def __init__(self, entries=1024, assoc=4, confident=2):
        self.num_sets = entries // assoc
        self.assoc = assoc
        self.confident = confident
        self._sets = [[] for _ in range(self.num_sets)]  # [(pc, entry)] LRU->MRU

    def _set_for(self, pc):
        return self._sets[hash(pc) % self.num_sets]

    def train(self, pc, addr):
        """Update the entry for ``pc`` with a new reference address."""
        ways = self._set_for(pc)
        for pos, (key, entry) in enumerate(ways):
            if key == pc:
                ways.append(ways.pop(pos))
                new_stride = addr - entry.last_addr
                if new_stride != 0 and new_stride == entry.stride:
                    entry.confidence = min(entry.confidence + 1, 3)
                elif entry.confidence > 0:
                    entry.confidence -= 1
                else:
                    entry.stride = new_stride
                entry.last_addr = addr
                return
        if len(ways) >= self.assoc:
            ways.pop(0)
        ways.append((pc, StrideEntry(addr)))

    def predict(self, pc):
        """Return the confident stride for ``pc``, or None."""
        for key, entry in self._set_for(pc):
            if key == pc:
                if entry.confidence >= self.confident and entry.stride != 0:
                    return entry.stride
                return None
        return None


class StreamBuffer:
    """One stream buffer: up to ``capacity`` prefetched blocks down a stride."""

    def __init__(self, capacity, block_size):
        self.capacity = capacity
        self.block_size = block_size
        self.active = False
        self.stride = 0
        self.next_addr = 0
        self.entries = {}  # block -> ready cycle (None while only queued)
        self.last_used = 0
        #: Allowed run-ahead depth: starts shallow and deepens by one per
        #: confirming hit, so a mispredicted stream wastes at most two
        #: fetches before its buffer is retargeted.
        self.ahead = 2

    def reset(self, addr, stride, now):
        """Retarget this buffer at the stream starting after ``addr``."""
        self.active = True
        self.stride = stride
        self.next_addr = addr + stride
        self.entries = {}
        self.last_used = now
        self.ahead = 2

    def confirm(self):
        """A hit confirms the stream: allow one more block of run-ahead."""
        if self.ahead < self.capacity:
            self.ahead += 1

    def next_block(self):
        """Advance down the stream; return the next new block to prefetch."""
        for _ in range(64):  # skip strides that stay within a block
            block = block_base(self.next_addr, self.block_size)
            self.next_addr += self.stride
            if block not in self.entries:
                return block
        return None

    def room(self):
        return len(self.entries) < self.ahead


class StridePrefetcher(Prefetcher):
    """The stride-predicted stream-buffer engine."""

    name = "stride"
    fills_l2 = False

    def __init__(self, table_entries=1024, table_assoc=4, num_buffers=8,
                 buffer_entries=8):
        super().__init__()
        self.table = StrideTable(table_entries, table_assoc)
        self.num_buffers = num_buffers
        self.buffer_entries = buffer_entries
        self.allocations = 0
        self._pending = []  # PrefetchRequests awaiting issue

    def attach(self, hierarchy, space, config):
        super().attach(hierarchy, space, config)
        self.buffers = [
            StreamBuffer(self.buffer_entries, config.block_size)
            for _ in range(self.num_buffers)
        ]

    # ------------------------------------------------------------------
    def on_l2_miss(self, block, addr, ref_id, hint, now):
        # The predictor is trained on the L2 miss address stream (as in
        # Sherwood et al.); hits never reach the prefetcher's tables.
        if ref_id is not None:
            self.table.train(ref_id, addr)
        # probe() is called by the hierarchy right after this hook; if the
        # block is in no buffer, try to start a new stream for this PC.
        for buf in self.buffers:
            if buf.active and block in buf.entries:
                return
        stride = self.table.predict(ref_id) if ref_id is not None else None
        if stride is None:
            return
        victim = min(self.buffers, key=lambda b: (b.active, b.last_used))
        victim.reset(addr, stride, now)
        self.allocations += 1
        self._refill(victim, now)

    def probe(self, block, now):
        for buf in self.buffers:
            if not buf.active or block not in buf.entries:
                continue
            ready = buf.entries.pop(block)
            buf.last_used = now
            buf.confirm()
            self._refill(buf, now)
            if ready is None:
                # Queued but never issued: no data was actually fetched, so
                # this is not a useful prefetch -- the caller falls through
                # to a normal demand miss.
                return None
            self.private_useful += 1
            return max(ready, now)
        return None

    def _refill(self, buf, now):
        """Queue prefetches until the buffer is at capacity."""
        while buf.room():
            block = buf.next_block()
            if block is None:
                break
            if self.hierarchy.l2.contains_block(block):
                continue
            buf.entries[block] = None
            self._pending.append(
                PrefetchRequest(block, now, meta=buf)
            )

    # ------------------------------------------------------------------
    def has_candidates(self):
        return bool(self._pending)

    def pop_candidate(self, now, dram):
        while self._pending:
            request = self._pending.pop(0)
            buf = request.meta
            if not buf.active or request.block not in buf.entries:
                continue  # buffer was retargeted; stale candidate
            return request
        return None

    def push_back(self, request):
        self._pending.insert(0, request)

    def on_candidate_dropped(self, request):
        # The target turned out to be resident: free the buffer slot so
        # the stream can keep running ahead instead of silting up with
        # entries that will never fill.
        buf = request.meta
        if buf.active and request.block in buf.entries and \
                buf.entries[request.block] is None:
            del buf.entries[request.block]

    def on_prefetch_fill(self, request, ready):
        buf = request.meta
        self.private_fills += 1
        if buf.active and request.block in buf.entries:
            buf.entries[request.block] = ready

    def stats_snapshot(self):
        snap = super().stats_snapshot()
        snap.update(buffer_allocations=self.allocations)
        return snap
