"""Dependence-based pointer-chase prefetching (Roth et al.; arXiv
1801.08088 surveys the family).

Where the stateless ``pointer`` scheme scans every returned line for
anything that looks like a pointer, this engine learns *which* static
loads produce addresses that later loads consume, then chases only those
dependences down the linked structure — chained, ahead of the program.

Mechanics (the static reference id stands in for the PC):

* A small window remembers the last few **produced pointer values**,
  captured through two channels: loads whose own word passes the heap
  base-and-bounds check (the link load reached the L2 itself — tree
  walks), and pointer words found by scanning each demand-filled line
  (the link rode in on a neighbouring field's miss — big-struct list
  walks whose link loads always hit the L1).  Either way the value is
  attributed to the static load that triggered it.
* Every L2 access is checked against the window: an address within
  ``max_span`` bytes *above* a recently produced value is a **consumer**
  of that producer, and the (producer PC → offset) pair gains confidence
  in the dependence table.  For a linked-list or tree walk the producer
  and consumer are the same static load (``p = p->next``), so a PC's
  own confident offsets describe where within the next node it will
  land.
* A demand **miss by a known producer** starts a chase: the produced
  value (the missed load's own word, or failing that the pointers in
  the missed line) names the next node, whose blocks
  (``config.pointer_blocks`` of them) are queued.  When the node's line
  arrives — or was already resident — the chase **continues**: the
  engine reads the node's link fields (confident learned offsets first,
  a bounded pointer scan of the node's block as fallback) and descends
  up to ``config.recursive_depth`` levels like the recursive pointer
  scheme, but only from learned dependence sites instead of from every
  demand fill in the program.

Prefetched lines land in the L2; issue goes through the shared
head-stable :class:`~repro.prefetch.pending.PendingQueue`, so the
controller's idle-channel prioritizer, MSHR bounds, and blocked-issue
cache all apply unchanged.
"""

from collections import OrderedDict, deque

from repro.mem.controller import PrefetchRequest
from repro.mem.layout import block_base
from repro.prefetch.base import Prefetcher
from repro.prefetch.pending import PendingQueue


class ChasePrefetcher(Prefetcher):
    """Learned load-to-address dependences, chased ahead of the program."""

    name = "chase"

    def __init__(self, window=16, table_entries=256, offsets_per_entry=4,
                 max_span=256, confident=2, fanout=2):
        super().__init__()
        self.window_size = window
        self.table_entries = table_entries
        self.offsets_per_entry = offsets_per_entry
        #: A consumer address must land within this many bytes above a
        #: produced value to count as dereferencing it (structure span).
        self.max_span = max_span
        self.confident = confident
        #: Link offsets followed per node when continuing a chase (trees
        #: fan out; lists need one).
        self.fanout = fanout
        self._window = deque(maxlen=window)  # (producer pc, value)
        self._table = OrderedDict()  # pc -> OrderedDict {offset: conf}
        self.pointer_loads = 0
        self.fill_scan_pointers = 0
        self.dependences_trained = 0
        self.chases_started = 0
        self.links_followed = 0
        self.scan_fallbacks = 0
        self.nodes_prefetched = 0

    def attach(self, hierarchy, space, config):
        super().attach(hierarchy, space, config)
        self._resident_map = hierarchy.l2.resident_map
        self.queue = PendingQueue(
            config.prefetch_queue_size * 8,
            config.region_size,
            config.block_size,
        )

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def _train(self, pc, offset):
        table = self._table
        entry = table.get(pc)
        if entry is None:
            if len(table) >= self.table_entries:
                table.popitem(last=False)
            entry = table[pc] = OrderedDict()
        else:
            table.move_to_end(pc)
        conf = entry.get(offset)
        if conf is None:
            if len(entry) >= self.offsets_per_entry:
                entry.popitem(last=False)
            entry[offset] = 1
        else:
            entry[offset] = min(conf + 1, 3)
            entry.move_to_end(offset)
        self.dependences_trained += 1

    def on_l2_access(self, block, addr, ref_id, hint, now, was_hit):
        if ref_id is None:
            return
        # Consumer check: does this address dereference a recent value?
        window = self._window
        for i in range(len(window) - 1, -1, -1):
            pc, value = window[i]
            delta = addr - value
            if 0 <= delta < self.max_span:
                self._train(pc, delta)
                break
        # Producer capture: does this access load a heap pointer?
        value = self.space.load_word(addr)
        if value is not None and self.space.is_heap_address(value):
            window.append((ref_id, value))
            self.pointer_loads += 1

    def on_demand_fill(self, block, ref_id, hint, ready):
        # Second producer channel: links that never miss the L1
        # themselves (a big struct's ``next`` shares a block with the
        # field whose miss fetched it) surface here, in the line the
        # miss brought back, attributed to the missing PC.
        if ref_id is None:
            return
        window = self._window
        for value in self.space.scan_pointers(block,
                                              self.config.block_size):
            window.append((ref_id, value))
            self.fill_scan_pointers += 1

    # ------------------------------------------------------------------
    # Trigger / chase
    # ------------------------------------------------------------------
    def _confident_offsets(self, pc):
        entry = self._table.get(pc)
        if entry is None:
            return ()
        offsets = [(conf, off) for off, conf in entry.items()
                   if conf >= self.confident]
        offsets.sort(key=lambda item: (-item[0], item[1]))
        return [off for _, off in offsets[:self.fanout]]

    def on_l2_miss(self, block, addr, ref_id, hint, now):
        if ref_id is None or not self._confident_offsets(ref_id):
            return
        # The produced value: the missed load's own word when it is a
        # pointer (tree walks), else the pointers riding in the missed
        # line (list walks whose links L1-hit; the fill will carry
        # them, so the chase may read them now).
        value = self.space.load_word(addr)
        if value is not None and self.space.is_heap_address(value):
            targets = (value,)
        else:
            targets = self.space.scan_pointers(
                block, self.config.block_size)[:self.fanout]
        if not targets:
            return
        self.chases_started += 1
        for target in targets:
            self._queue_node(target, ref_id, self.config.recursive_depth,
                             now)

    def _queue_node(self, node, pc, depth, now):
        """Queue the blocks of one structure node; arm the continuation."""
        self.nodes_prefetched += 1
        bsize = self.config.block_size
        base = block_base(node, bsize)
        resident = self._resident_map
        # The continuation rides on the node's first queued block; when
        # every block is already resident there is nothing to wait for,
        # so the chase continues immediately.
        meta = (node, pc) if depth > 0 else None
        for i in range(self.config.pointer_blocks):
            target = base + i * bsize
            if target in resident:
                continue
            self.queue.push(PrefetchRequest(target, now, depth=depth,
                                            meta=meta))
            meta = None
        if meta is not None:
            self._follow(node, pc, depth, now)

    def _follow(self, node, pc, depth, now):
        """Descend one level: read the node's link fields.

        Confident learned offsets are tried first (exact link slots —
        tree walks learn them directly); when none holds a pointer the
        node's base block is scanned instead, bounded by the fan-out
        (list walks whose learned offsets are data fields).
        """
        targets = []
        for offset in self._confident_offsets(pc):
            target = self.space.load_word(node + offset)
            if target is not None and target != node \
                    and self.space.is_heap_address(target):
                targets.append(target)
        if not targets:
            targets = [
                value for value in self.space.scan_pointers(
                    block_base(node, self.config.block_size),
                    self.config.block_size)
                if value != node
            ][:self.fanout]
            if targets:
                self.scan_fallbacks += 1
        for target in targets[:self.fanout]:
            self.links_followed += 1
            self._queue_node(target, pc, depth - 1, now)

    def on_prefetch_fill(self, request, ready):
        meta = request.meta
        if meta is None or request.depth <= 0:
            return
        node, pc = meta
        self._follow(node, pc, request.depth, ready)

    # ------------------------------------------------------------------
    # Candidate supply (delegated to the pending queue)
    # ------------------------------------------------------------------
    def has_candidates(self):
        return self.queue.has_candidates()

    def pop_candidate(self, now, dram):
        return self.queue.pop_candidate(now, dram)

    def push_back(self, request):
        self.queue.push_back(request)

    def stats_snapshot(self):
        snap = super().stats_snapshot()
        snap.update(
            pointer_loads=self.pointer_loads,
            fill_scan_pointers=self.fill_scan_pointers,
            scan_fallbacks=self.scan_fallbacks,
            dependences_trained=self.dependences_trained,
            dependences_live=len(self._table),
            chases_started=self.chases_started,
            links_followed=self.links_followed,
            nodes_prefetched=self.nodes_prefetched,
            candidates_queued=self.queue.candidates_queued,
            dropped_overflow=self.queue.dropped_overflow,
        )
        return snap
