"""The mini-compiler: a loop-structured IR plus the five GRP hint analyses.

This package stands in for the Scale compiler infrastructure the paper used.
Workloads are written in the IR (:mod:`repro.compiler.ir`); the passes in
:mod:`repro.compiler.passes` implement Section 4 of the paper — induction
variable recognition (including induction pointers), dependence-based
spatial-locality detection with reuse-distance screening, pointer/recursive
idiom analysis, indirect-array detection, and variable-size region
encoding — and produce a :class:`repro.compiler.hints.HintTable` that the
GRP hardware consumes at simulation time.
"""

from repro.compiler.hints import HintTable, LoadHint, FIXED_REGION_COEFF
from repro.compiler.driver import compile_hints, CompilerPolicy

__all__ = [
    "CompilerPolicy",
    "FIXED_REGION_COEFF",
    "HintTable",
    "LoadHint",
    "compile_hints",
]
