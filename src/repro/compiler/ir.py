"""The loop-structured intermediate representation.

Workloads are written as trees of these nodes.  The same tree is consumed
twice:

* the **compiler passes** (Section 4 of the paper) walk it statically —
  symbolic bounds stay symbolic — and produce load hints;
* the **interpreter** (:mod:`repro.trace.interp`) executes it against a
  simulated address space with concrete bindings, emitting the reference
  trace.

Subscript expressions
---------------------
:class:`Affine` covers everything dependence testing can analyse
(``a*i + b*j + c``).  :class:`IndexLoad` represents a value loaded from an
index array (``b[i]`` used to subscript another array — the indirect
pattern).  :class:`Opaque` is an arbitrary runtime computation the compiler
cannot see through (hash probes, RNG indices).

Reference identities
--------------------
Every static memory-reference site gets a stable ``ref_id`` string when the
:class:`Program` is finalized (a deterministic pre-order walk).  Ref ids
are the analogue of load PCs: the hint table is keyed by them and the
hardware receives them with each request.
"""

from repro.compiler.symbols import ArrayDecl, PointerVar, Sym, Var


# ----------------------------------------------------------------------
# Subscript expressions
# ----------------------------------------------------------------------
class Runtime:
    """A loop-invariant constant whose value is only known at run time.

    Models a function parameter or loop-invariant local: the compiler can
    still analyse ``a[start + i]`` as affine in ``i`` (the constant term is
    simply unknown), while the interpreter calls ``sample(env, rng)`` to
    get the concrete value.
    """

    __slots__ = ("sample", "comment")

    def __init__(self, sample, comment="runtime-const"):
        self.sample = sample
        self.comment = comment

    def __repr__(self):
        return "Runtime(%s)" % self.comment


class Affine:
    """``sum(coef * var) + const`` over loop variables.

    ``const`` may be an int or a :class:`Runtime` unknown constant.
    """

    __slots__ = ("terms", "const")

    def __init__(self, terms=None, const=0):
        self.terms = dict(terms or {})
        self.const = const

    @classmethod
    def of(cls, var, coef=1, const=0):
        """Affine in a single variable: ``coef*var + const``."""
        return cls({var: coef}, const)

    @classmethod
    def constant(cls, value):
        return cls({}, value)

    def coef(self, var):
        return self.terms.get(var, 0)

    @property
    def vars(self):
        return set(self.terms)

    def evaluate(self, env, rng=None):
        """Evaluate with concrete variable bindings."""
        const = self.const
        value = const.sample(env, rng) if isinstance(const, Runtime) else const
        for var, coef in self.terms.items():
            value += coef * env[var.name]
        return value

    def __add__(self, other):
        if isinstance(other, int):
            if isinstance(self.const, Runtime):
                raise TypeError("cannot offset a Runtime constant term")
            return Affine(self.terms, self.const + other)
        if isinstance(self.const, Runtime) or isinstance(other.const, Runtime):
            raise TypeError("cannot add affines with Runtime constant terms")
        terms = dict(self.terms)
        for var, coef in other.terms.items():
            terms[var] = terms.get(var, 0) + coef
        return Affine(terms, self.const + other.const)

    def __repr__(self):
        parts = ["%d*%s" % (c, v.name) for v, c in self.terms.items()]
        parts.append(str(self.const))
        return "Affine(%s)" % "+".join(parts)


class IndexLoad:
    """An index loaded from another array: ``scale * b[sub] + offset``.

    Itself a memory reference (reading ``b[sub]``), so it carries its own
    ``ref_id``.  When an :class:`ArrayRef` subscript contains an IndexLoad,
    the indirect-analysis pass may emit an indirect prefetch instruction.
    """

    __slots__ = ("index_array", "sub", "scale", "offset", "ref_id")

    def __init__(self, index_array, sub, scale=1, offset=0):
        self.index_array = index_array
        self.sub = sub
        self.scale = scale
        self.offset = offset
        self.ref_id = None

    def __repr__(self):
        return "IndexLoad(%s[%r])" % (self.index_array.name, self.sub)


class Opaque:
    """A subscript the compiler cannot analyse.

    ``sample(env, rng)`` computes the concrete index at run time.
    """

    __slots__ = ("sample", "comment")

    def __init__(self, sample, comment="opaque"):
        self.sample = sample
        self.comment = comment

    def __repr__(self):
        return "Opaque(%s)" % self.comment


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
class Stmt:
    """Base class for IR statements."""

    __slots__ = ()


class Block(Stmt):
    """A statement sequence (the body of a loop or a whole program)."""

    __slots__ = ("stmts",)

    def __init__(self, stmts):
        self.stmts = list(stmts)


class ForLoop(Stmt):
    """``for (var = lower; var < upper; var += step) body``.

    ``upper`` may be an int or a :class:`Sym`; induction-variable
    recognition treats ``var`` as an induction variable either way, but
    reuse distances through symbolic bounds are unknown.
    """

    __slots__ = ("var", "lower", "upper", "step", "body", "loop_id",
                 "scope_boundary")

    def __init__(self, var, lower, upper, body, step=1,
                 scope_boundary=False):
        if step == 0:
            raise ValueError("loop step must be nonzero")
        self.var = var
        self.lower = lower
        self.upper = upper
        self.step = step
        self.body = body if isinstance(body, Block) else Block(body)
        self.loop_id = None
        #: True when each iteration calls into a separate function: the
        #: paper's analyses are intra-procedural, so loops inside the body
        #: do not see this loop as enclosing them.
        self.scope_boundary = scope_boundary


class WhileLoop(Stmt):
    """A loop with a statically-unknown trip count (pointer traversals).

    ``trips`` (int or Sym) tells the interpreter how many iterations to
    run; the compiler never looks at it.
    """

    __slots__ = ("trips", "body", "loop_id", "scope_boundary")

    def __init__(self, trips, body, scope_boundary=False):
        self.trips = trips
        self.body = body if isinstance(body, Block) else Block(body)
        self.loop_id = None
        self.scope_boundary = scope_boundary


class ArrayRef(Stmt):
    """A read or write of ``array[subs...]``."""

    __slots__ = ("array", "subs", "is_store", "ref_id")

    def __init__(self, array, subs, is_store=False):
        if len(subs) != array.rank:
            raise ValueError(
                "array %s has rank %d, got %d subscripts"
                % (array.name, array.rank, len(subs))
            )
        self.array = array
        self.subs = list(subs)
        self.is_store = is_store
        self.ref_id = None


class HeapRowRef(Stmt):
    """``buf[i][j]`` where ``buf`` is ``T **`` (Figure 4 of the paper).

    Expands to two references: loading the row pointer ``buf[i]``
    (``row_ref_id``) and accessing ``row[j]`` (``elem_ref_id``).  The row
    array must be a pointer array; each row is a heap array whose element
    size is ``elem_size``.
    """

    __slots__ = ("buf", "row_sub", "col_sub", "elem_size", "is_store",
                 "row_ref_id", "elem_ref_id")

    def __init__(self, buf, row_sub, col_sub, elem_size, is_store=False):
        if not buf.is_pointer:
            raise ValueError("HeapRowRef needs a pointer array")
        self.buf = buf
        self.row_sub = row_sub
        self.col_sub = col_sub
        self.elem_size = elem_size
        self.is_store = is_store
        self.row_ref_id = None
        self.elem_ref_id = None


class PtrLoop(Stmt):
    """``for (; p < end; p += step) body`` — an induction pointer loop.

    ``trips`` is the iteration count (int or Sym) for the interpreter; the
    compiler only sees that ``ptr`` advances by ``step`` bytes per
    iteration (Figure 5 of the paper).
    """

    __slots__ = ("ptr", "trips", "step", "body", "loop_id",
                 "scope_boundary")

    def __init__(self, ptr, trips, step, body, scope_boundary=False):
        if step == 0:
            raise ValueError("pointer step must be nonzero")
        self.ptr = ptr
        self.trips = trips
        self.step = step
        self.body = body if isinstance(body, Block) else Block(body)
        self.loop_id = None
        self.scope_boundary = scope_boundary


class PtrRef(Stmt):
    """``*p`` or ``p->f``: dereference of pointer ``ptr`` at ``offset``."""

    __slots__ = ("ptr", "offset", "size", "field", "is_store", "ref_id")

    def __init__(self, ptr, offset=0, size=8, field=None, is_store=False):
        self.ptr = ptr
        self.offset = offset
        self.size = size
        #: The :class:`Field` when this is a struct field access.
        self.field = field
        self.is_store = is_store
        self.ref_id = None


class PtrChase(Stmt):
    """``ptr = ptr->field`` — the recursive-pointer idiom (Figure 6).

    A memory reference (loading the field) plus an update of ``ptr``.
    """

    __slots__ = ("ptr", "field", "ref_id")

    def __init__(self, ptr, field):
        if not field.is_pointer:
            raise ValueError("PtrChase needs a pointer field")
        self.ptr = ptr
        self.field = field
        self.ref_id = None


class PtrAssignField(Stmt):
    """``dst = src->field`` — loading a pointer field into another cursor
    (tree traversals: ``child = node->left``)."""

    __slots__ = ("dst", "src", "field", "ref_id")

    def __init__(self, dst, src, field):
        if not field.is_pointer:
            raise ValueError("PtrAssignField needs a pointer field")
        self.dst = dst
        self.src = src
        self.field = field
        self.ref_id = None


class PtrAssignFromArray(Stmt):
    """``p = heads[sub]`` — loading a pointer from an array of pointers."""

    __slots__ = ("ptr", "array", "sub", "ref_id")

    def __init__(self, ptr, array, sub):
        if not array.is_pointer:
            raise ValueError("PtrAssignFromArray needs a pointer array")
        self.ptr = ptr
        self.array = array
        self.sub = sub
        self.ref_id = None


class PtrArrayRef(Stmt):
    """``p[sub]`` — an affine-subscripted access through a pointer base.

    The pointer is loop-invariant here (typically assigned from an array
    of row pointers outside the loop, the hoisted ``row = A[i]`` idiom);
    the subscript is an affine expression over enclosing loop variables,
    so dependence testing applies exactly as to a heap array with an
    unknown base.
    """

    __slots__ = ("ptr", "sub", "elem_size", "is_store", "ref_id")

    def __init__(self, ptr, sub, elem_size=8, is_store=False):
        self.ptr = ptr
        self.sub = sub
        self.elem_size = elem_size
        self.is_store = is_store
        self.ref_id = None


class PtrSelect(Stmt):
    """``ptr = choose(candidate fields)`` — data-dependent branch in a tree
    walk (``node = key < node->key ? node->left : node->right``).

    The interpreter picks one of ``fields`` via ``chooser(env, rng)``; the
    compiler sees a pointer-field load that updates a recurrent pointer
    when every candidate field targets the pointer's own struct.
    """

    __slots__ = ("ptr", "fields", "chooser", "ref_id")

    def __init__(self, ptr, fields, chooser=None):
        if not fields or not all(f.is_pointer for f in fields):
            raise ValueError("PtrSelect needs pointer fields")
        self.ptr = ptr
        self.fields = list(fields)
        self.chooser = chooser
        self.ref_id = None


class Compute(Stmt):
    """``ops`` non-memory instructions (ALU work between references)."""

    __slots__ = ("ops",)

    def __init__(self, ops):
        if ops < 0:
            raise ValueError("op count must be non-negative")
        self.ops = ops


# ----------------------------------------------------------------------
# Program
# ----------------------------------------------------------------------
class Program:
    """A complete IR program: body + declarations + default bindings.

    ``bindings`` resolves :class:`Sym` names to concrete values at
    interpretation time (the compiler ignores them).  :meth:`finalize`
    assigns stable ref ids and loop ids; it is idempotent and is called
    automatically by the compiler driver and interpreter.
    """

    def __init__(self, name, body, bindings=None):
        self.name = name
        self.body = body if isinstance(body, Block) else Block(body)
        self.bindings = dict(bindings or {})
        self._finalized = False

    # ------------------------------------------------------------------
    def finalize(self):
        """Assign deterministic ref ids and loop ids (pre-order)."""
        if self._finalized:
            return self
        counter = {"ref": 0, "loop": 0}

        def next_ref():
            counter["ref"] += 1
            return "%s#r%d" % (self.name, counter["ref"])

        def next_loop():
            counter["loop"] += 1
            return "%s#L%d" % (self.name, counter["loop"])

        def walk(stmt):
            if isinstance(stmt, Block):
                for s in stmt.stmts:
                    walk(s)
            elif isinstance(stmt, (ForLoop, WhileLoop, PtrLoop)):
                stmt.loop_id = next_loop()
                walk(stmt.body)
            elif isinstance(stmt, ArrayRef):
                for sub in stmt.subs:
                    if isinstance(sub, IndexLoad):
                        sub.ref_id = next_ref()
                stmt.ref_id = next_ref()
            elif isinstance(stmt, HeapRowRef):
                stmt.row_ref_id = next_ref()
                stmt.elem_ref_id = next_ref()
            elif isinstance(stmt, (PtrRef, PtrArrayRef, PtrChase,
                                   PtrAssignField, PtrAssignFromArray,
                                   PtrSelect)):
                stmt.ref_id = next_ref()
            elif isinstance(stmt, Compute):
                pass
            else:
                raise TypeError("unknown IR node %r" % stmt)

        walk(self.body)
        self._finalized = True
        return self

    # ------------------------------------------------------------------
    def static_refs(self):
        """Yield every static reference site id (after finalize)."""
        self.finalize()
        out = []

        def walk(stmt):
            if isinstance(stmt, Block):
                for s in stmt.stmts:
                    walk(s)
            elif isinstance(stmt, (ForLoop, WhileLoop, PtrLoop)):
                walk(stmt.body)
            elif isinstance(stmt, ArrayRef):
                for sub in stmt.subs:
                    if isinstance(sub, IndexLoad):
                        out.append(sub.ref_id)
                out.append(stmt.ref_id)
            elif isinstance(stmt, HeapRowRef):
                out.append(stmt.row_ref_id)
                out.append(stmt.elem_ref_id)
            elif isinstance(stmt, (PtrRef, PtrArrayRef, PtrChase,
                                   PtrAssignField, PtrAssignFromArray,
                                   PtrSelect)):
                out.append(stmt.ref_id)

        walk(self.body)
        return out


# Convenience re-exports so workloads can import everything from one place.
__all__ = [
    "Affine",
    "ArrayDecl",
    "ArrayRef",
    "Block",
    "Compute",
    "ForLoop",
    "HeapRowRef",
    "IndexLoad",
    "Opaque",
    "PointerVar",
    "Program",
    "PtrArrayRef",
    "PtrAssignField",
    "PtrAssignFromArray",
    "PtrChase",
    "PtrLoop",
    "PtrRef",
    "PtrSelect",
    "Runtime",
    "Stmt",
    "Sym",
    "Var",
    "WhileLoop",
]
