"""Load-hint encoding — the software half of the hardware/software contract.

The paper encodes hints in unused Alpha VAX-format floating-point load
opcodes; the memory system propagates the bits with each request.  Here the
encoding channel is a table keyed by static reference id (the analogue of a
load PC): the compiler fills a :class:`HintTable`, the simulator attaches
the matching :class:`LoadHint` to every dynamic reference, and the GRP
engine reads the bits on L2 misses.

Five hint classes (Table 2 of the paper):

``spatial``
    The reference likely exhibits spatial locality; GRP spatial-prefetches
    only misses that carry this mark.
``size`` (``region_coeff`` + a loop-bound directive)
    A 3-bit coefficient; the hardware computes the prefetch region size as
    ``loop_bound << coeff`` bytes.  Coefficient 7 is reserved to mean
    "fixed-size region".
``indirect``
    Encoded as a separate prefetch *instruction* (a trace directive), not a
    load-hint bit; see :class:`repro.trace.events.IndirectPrefetch`.
``pointer``
    The referenced structure contains pointers the program will follow:
    scan the returned line once.
``recursive``
    The program follows those pointers recursively: scan to depth ``n``
    (6 in the paper's experiments).
"""

FIXED_REGION_COEFF = 7
"""Reserved 3-bit coefficient value selecting fixed-size region prefetch."""


class LoadHint:
    """Hint bits attached to one static memory reference."""

    __slots__ = ("spatial", "pointer", "recursive", "region_coeff",
                 "indirect")

    def __init__(
        self,
        spatial=False,
        pointer=False,
        recursive=False,
        region_coeff=FIXED_REGION_COEFF,
        indirect=False,
    ):
        if not 0 <= region_coeff <= 7:
            raise ValueError("region coefficient is a 3-bit field")
        self.spatial = spatial
        self.pointer = pointer
        self.recursive = recursive
        self.region_coeff = region_coeff
        #: The alternate indirect encoding of Section 3.3.3: instead of a
        #: full prefetch instruction per index block, a base-setting
        #: instruction before the loop plus this bit on the b[i] loads.
        self.indirect = indirect

    @property
    def any(self):
        """True when at least one hint bit is set."""
        return self.spatial or self.pointer or self.recursive or \
            self.indirect

    def merge(self, other):
        """OR-combine with another hint (a load can be spatial AND pointer)."""
        return LoadHint(
            spatial=self.spatial or other.spatial,
            pointer=self.pointer or other.pointer,
            recursive=self.recursive or other.recursive,
            region_coeff=min(self.region_coeff, other.region_coeff),
            indirect=self.indirect or other.indirect,
        )

    def __eq__(self, other):
        if not isinstance(other, LoadHint):
            return NotImplemented
        return (
            self.spatial == other.spatial
            and self.pointer == other.pointer
            and self.recursive == other.recursive
            and self.region_coeff == other.region_coeff
            and self.indirect == other.indirect
        )

    def __repr__(self):
        bits = []
        if self.spatial:
            bits.append("spatial")
        if self.pointer:
            bits.append("pointer")
        if self.recursive:
            bits.append("recursive")
        if self.region_coeff != FIXED_REGION_COEFF:
            bits.append("coeff=%d" % self.region_coeff)
        if self.indirect:
            bits.append("indirect")
        return "LoadHint(%s)" % ",".join(bits or ["none"])


class HintTable:
    """Compiler output: hints per static reference, plus summary counts."""

    def __init__(self):
        self._hints = {}
        self.indirect_directives = 0
        self.total_refs = 0

    def mark(self, ref_id, **bits):
        """Set hint bits on ``ref_id``, merging with any existing hint."""
        new = LoadHint(**bits)
        old = self._hints.get(ref_id)
        self._hints[ref_id] = new if old is None else old.merge(new)

    def get(self, ref_id):
        """Return the :class:`LoadHint` for ``ref_id``, or None."""
        return self._hints.get(ref_id)

    def __contains__(self, ref_id):
        return ref_id in self._hints

    def __len__(self):
        return len(self._hints)

    # ------------------------------------------------------------------
    # Static counts — exactly the columns of the paper's Table 3.
    # ------------------------------------------------------------------
    def counts(self):
        """Return Table 3-style static counts for this compilation unit."""
        spatial = sum(1 for h in self._hints.values() if h.spatial)
        pointer = sum(1 for h in self._hints.values() if h.pointer)
        recursive = sum(1 for h in self._hints.values() if h.recursive)
        hinted = sum(1 for h in self._hints.values() if h.any)
        ratio = 100.0 * hinted / self.total_refs if self.total_refs else 0.0
        return {
            "mem_insts": self.total_refs,
            "spatial": spatial,
            "pointer": pointer,
            "recursive": recursive,
            "ratio": ratio,
            "indirect": self.indirect_directives,
        }
