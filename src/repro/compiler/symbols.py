"""Symbol declarations shared by the IR, the compiler passes, and the
interpreter: arrays, structs with (possibly pointer) fields, scalar loop
variables, pointer variables, and symbolic constants.
"""


class Sym:
    """A symbolic constant (e.g. a loop bound unknown at compile time).

    The compiler treats ``Sym`` bounds as unknown; the interpreter resolves
    them through the program's binding environment.
    """

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return "Sym(%s)" % self.name

    def __eq__(self, other):
        return isinstance(other, Sym) and other.name == self.name

    def __hash__(self):
        return hash(("Sym", self.name))


class Var:
    """A scalar (loop induction) variable."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return "Var(%s)" % self.name

    def __eq__(self, other):
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self):
        return hash(("Var", self.name))


class PointerVar:
    """A pointer variable (induction pointer or traversal cursor).

    ``struct`` names the pointed-to structure when known, which the
    pointer/recursive idiom analysis (Figure 8) relies on.
    """

    __slots__ = ("name", "struct")

    def __init__(self, name, struct=None):
        self.name = name
        self.struct = struct

    def __repr__(self):
        return "PointerVar(%s)" % self.name

    def __eq__(self, other):
        return isinstance(other, PointerVar) and other.name == self.name

    def __hash__(self):
        return hash(("PointerVar", self.name))


class Field:
    """One field of a struct."""

    __slots__ = ("name", "offset", "size", "is_pointer", "target")

    def __init__(self, name, offset, size, is_pointer=False, target=None):
        self.name = name
        self.offset = offset
        self.size = size
        self.is_pointer = is_pointer
        #: Name of the struct this pointer field points to (when known).
        self.target = target

    def __repr__(self):
        return "Field(%s @%d)" % (self.name, self.offset)


class StructDecl:
    """A C structure layout.

    Built with :meth:`add_scalar` / :meth:`add_pointer`; field offsets are
    assigned sequentially with natural alignment, like a C compiler would.
    """

    def __init__(self, name):
        self.name = name
        self.fields = {}
        self._next_offset = 0

    def _align(self, size):
        align = min(size, 8)
        self._next_offset = (self._next_offset + align - 1) & ~(align - 1)

    def add_scalar(self, name, size=8):
        """Append a non-pointer field; returns the :class:`Field`."""
        self._align(size)
        field = Field(name, self._next_offset, size)
        self.fields[name] = field
        self._next_offset += size
        return field

    def add_pointer(self, name, target=None):
        """Append a pointer field; ``target`` names the pointed-to struct."""
        self._align(8)
        field = Field(name, self._next_offset, 8, is_pointer=True,
                      target=target)
        self.fields[name] = field
        self._next_offset += 8
        return field

    @property
    def size(self):
        """Struct size, padded to 8-byte alignment."""
        return (self._next_offset + 7) & ~7

    def field(self, name):
        return self.fields[name]

    def pointer_fields(self):
        """All pointer-typed fields, in declaration order."""
        return [f for f in self.fields.values() if f.is_pointer]

    def __repr__(self):
        return "StructDecl(%s, %d fields, %dB)" % (
            self.name, len(self.fields), self.size,
        )


class ArrayDecl:
    """An array: element size, extents, layout, and storage class.

    ``dims`` may contain ints or :class:`Sym`.  ``layout`` is ``"row"``
    (C) or ``"col"`` (Fortran) — it determines which dimension is spatial.
    ``storage`` is ``"static"`` or ``"heap"``; the pointer prefetcher's
    base-and-bounds test only passes for heap addresses.  ``is_pointer``
    marks arrays whose elements are pointers (e.g. ``T **buf`` rows).
    """

    def __init__(self, name, elem_size, dims, layout="row", storage="static",
                 is_pointer=False):
        if layout not in ("row", "col"):
            raise ValueError("layout must be 'row' or 'col'")
        if storage not in ("static", "heap"):
            raise ValueError("storage must be 'static' or 'heap'")
        self.name = name
        self.elem_size = elem_size
        self.dims = list(dims)
        self.layout = layout
        self.storage = storage
        self.is_pointer = is_pointer
        #: Base address; assigned when the workload materializes the array.
        self.base = None

    @property
    def rank(self):
        return len(self.dims)

    def spatial_dim(self):
        """Index of the dimension that is contiguous in memory."""
        return self.rank - 1 if self.layout == "row" else 0

    def total_elems(self, bindings=None):
        """Total element count; symbolic dims resolved via ``bindings``."""
        total = 1
        for d in self.dims:
            if isinstance(d, Sym):
                if bindings is None or d.name not in bindings:
                    return None
                d = bindings[d.name]
            total *= d
        return total

    def size_bytes(self, bindings=None):
        total = self.total_elems(bindings)
        return None if total is None else total * self.elem_size

    def __repr__(self):
        return "ArrayDecl(%s%r x%dB, %s, %s)" % (
            self.name, self.dims, self.elem_size, self.layout, self.storage,
        )
