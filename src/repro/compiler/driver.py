"""Compiler driver: run all analysis passes over a program.

The output, :class:`CompileResult`, is everything the rest of the system
needs from the compiler:

* the :class:`~repro.compiler.hints.HintTable` the GRP hardware consults,
* the indirect-prefetch sites the interpreter turns into directives,
* the set of loops whose trip counts the interpreter announces via
  ``LoopBound`` directives (for variable-size regions).
"""

from repro.compiler.hints import HintTable
from repro.compiler.passes.indirect import detect_indirect
from repro.compiler.passes.pointer import generate_pointer_hints
from repro.compiler.passes.region import encode_region_hints
from repro.compiler.passes.spatial import POLICIES, generate_spatial_hints


class CompilerPolicy:
    """Named spatial-marking policies (Section 5.4)."""

    CONSERVATIVE = "conservative"
    DEFAULT = "default"
    AGGRESSIVE = "aggressive"
    ALL = POLICIES


class CompileResult:
    """Everything the compiler tells the hardware and the trace generator."""

    def __init__(self, program, hint_table, indirect_sites, bound_loops,
                 policy, indirect_mode="instruction"):
        self.program = program
        self.hint_table = hint_table
        #: {index_load_ref_id: IndirectInfo}
        self.indirect_sites = indirect_sites
        #: {loop_id} whose trip counts are conveyed via LoopBound directives
        self.bound_loops = bound_loops
        self.policy = policy
        #: "instruction" (explicit indirect prefetch instructions) or
        #: "hintbit" (Section 3.3.3's alternate encoding).
        self.indirect_mode = indirect_mode
        #: {loop_id: IndirectInfo} for hint-bit mode base directives.
        self.indirect_base_loops = {}
        if indirect_mode == "hintbit":
            for info in indirect_sites.values():
                if info.loop_id is not None:
                    self.indirect_base_loops[info.loop_id] = info

    def counts(self):
        """Table 3-style static hint counts."""
        return self.hint_table.counts()


def compile_hints(program, l2_size=1024 * 1024, block_size=64,
                  policy=CompilerPolicy.DEFAULT, variable_regions=True,
                  indirect=True, indirect_mode="instruction"):
    """Run the full Section 4 pipeline; return a :class:`CompileResult`."""
    program.finalize()
    table = HintTable()
    table.total_refs = len(program.static_refs())
    generate_spatial_hints(program, table, l2_size, block_size, policy)
    generate_pointer_hints(program, table)
    sites = (
        detect_indirect(program, table, block_size, mode=indirect_mode)
        if indirect
        else {}
    )
    bound_loops = (
        encode_region_hints(program, table, block_size)
        if variable_regions
        else set()
    )
    return CompileResult(program, table, sites, bound_loops, policy,
                         indirect_mode=indirect_mode)
