"""Indirect array-reference detection — Section 4.3 of the paper.

The pass looks for accesses of the form ``a(s*b(i) + e)`` where ``s`` and
``e`` are constants and ``i`` is a loop induction variable: an
:class:`ArrayRef` whose subscript is an :class:`IndexLoad` of an index
array ``b`` that itself has spatial reuse (standard dependence testing on
``b(i)``).

For each such site the compiler emits an **indirect prefetch instruction**
(not a load-hint bit): at run time, each time the program enters a new
cache block of the index array, the instruction conveys ``&a[0]``,
``sizeof(a[0])`` and ``&b[i]`` to the prefetch engine, which expands the
whole index block into prefetches.
"""

from repro.compiler.ir import Affine, ArrayRef, IndexLoad
from repro.compiler.passes.dependence import spatial_locality
from repro.compiler.passes.nest import LOOP_TYPES, walk_with_loops


class IndirectInfo:
    """One detected indirect access site ``a[s*b(i)+e]``."""

    __slots__ = ("target_array", "index_array", "index_load", "scale",
                 "offset", "loop_id")

    def __init__(self, target_array, index_load, loop_id=None):
        self.target_array = target_array
        self.index_array = index_load.index_array
        self.index_load = index_load
        self.scale = index_load.scale
        self.offset = index_load.offset
        #: id of the innermost enclosing loop (used by the alternate
        #: hint-bit encoding to place the base-setting instruction).
        self.loop_id = loop_id

    def __repr__(self):
        return "IndirectInfo(%s[%d*%s+%d])" % (
            self.target_array.name,
            self.scale,
            self.index_array.name,
            self.offset,
        )


def detect_indirect(program, hint_table, block_size, mode="instruction"):
    """Find indirect sites; returns ``{index_load_ref_id: IndirectInfo}``.

    ``mode`` selects the encoding: ``instruction`` (the paper's default,
    one explicit prefetch instruction per index block) or ``hintbit``
    (Section 3.3.3's alternate: a base-setting instruction before the
    loop plus an ``indirect`` hint bit on the b[i] loads).  The count of
    emitted indirect prefetch instructions is recorded on the hint table
    (Table 3's last column is static instruction counts).
    """
    if mode not in ("instruction", "hintbit"):
        raise ValueError("indirect mode must be 'instruction' or 'hintbit'")
    sites = {}
    for stmt, stack in walk_with_loops(program.body):
        if isinstance(stmt, LOOP_TYPES) or not isinstance(stmt, ArrayRef):
            continue
        if not stack:
            continue
        for sub in stmt.subs:
            if not isinstance(sub, IndexLoad):
                continue
            if not isinstance(sub.sub, Affine):
                continue
            # The index array access b(i) must itself be spatial so a whole
            # block of indices is worth expanding.
            info = spatial_locality(
                sub.index_array, [sub.sub], stack, block_size
            )
            if info is None:
                continue
            loop_id = stack[-1].loop_id if stack else None
            sites[sub.ref_id] = IndirectInfo(stmt.array, sub, loop_id)
            hint_table.indirect_directives += 1
            if mode == "hintbit":
                hint_table.mark(sub.ref_id, indirect=True)
    return sites
