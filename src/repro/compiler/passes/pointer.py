"""Pointer and recursive-pointer hint generation — Figure 8 of the paper.

Rules:

* Mark a field access as **pointer** when a pointer field of the same
  structure is accessed in the same loop (so the fetched line will contain
  addresses worth chasing).
* Mark a pointer update as **recursive** when it updates a recurrent
  pointer — a cursor replaced by a field that points to the cursor's own
  structure type (``a = a->next`` over ``struct t *``).
* Mark spatial references to **heap arrays of pointers** as pointer too
  (Figure 4's ``buf[i]``): the prefetched pointers are rows the program is
  about to touch.
"""

from repro.compiler.ir import (
    HeapRowRef,
    PtrAssignField,
    PtrAssignFromArray,
    PtrChase,
    PtrRef,
    PtrSelect,
)
from repro.compiler.passes.nest import LOOP_TYPES, loops_in, statements_in


def _field_accesses(loop):
    """All struct-field accesses anywhere inside ``loop``'s body.

    Returns (stmt, struct_name, field) triples; struct_name may be None
    when the pointer's type is unknown, in which case the access cannot be
    matched to a structure and is skipped by the grouping rule.
    """
    out = []
    for stmt in statements_in(loop):
        if isinstance(stmt, PtrRef) and stmt.field is not None:
            out.append((stmt, _struct_of(stmt.ptr), stmt.field))
        elif isinstance(stmt, PtrChase):
            out.append((stmt, _struct_of(stmt.ptr), stmt.field))
        elif isinstance(stmt, PtrAssignField):
            out.append((stmt, _struct_of(stmt.src), stmt.field))
        elif isinstance(stmt, PtrSelect):
            for field in stmt.fields:
                out.append((stmt, _struct_of(stmt.ptr), field))
    return out


def _struct_of(ptr):
    return ptr.struct


def generate_pointer_hints(program, hint_table):
    """Run the Figure 8 algorithm over the whole program."""
    for loop in loops_in(program.body):
        accesses = _field_accesses(loop)
        structs_with_pointer_access = {
            struct
            for _, struct, field in accesses
            if struct is not None and field.is_pointer
        }
        seen_recursive = set()
        for stmt, struct, field in accesses:
            if struct is not None and struct in structs_with_pointer_access:
                hint_table.mark(stmt.ref_id, pointer=True)
            # Recursive: the update replaces the cursor with a field that
            # points to the cursor's own structure type.
            if isinstance(stmt, (PtrChase, PtrSelect)):
                if field.target is not None and field.target == struct:
                    if stmt.ref_id not in seen_recursive:
                        hint_table.mark(stmt.ref_id, recursive=True)
                        seen_recursive.add(stmt.ref_id)

    # Spatial references to heap arrays of pointers get the pointer hint.
    for loop in loops_in(program.body):
        for stmt in statements_in(loop):
            if isinstance(stmt, HeapRowRef):
                hint = hint_table.get(stmt.row_ref_id)
                if hint is not None and hint.spatial and \
                        stmt.buf.storage == "heap":
                    hint_table.mark(stmt.row_ref_id, pointer=True)
            elif isinstance(stmt, PtrAssignFromArray):
                hint = hint_table.get(stmt.ref_id)
                if hint is not None and hint.spatial and \
                        stmt.array.storage == "heap":
                    hint_table.mark(stmt.ref_id, pointer=True)
