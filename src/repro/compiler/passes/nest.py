"""Loop-nest traversal utilities shared by all analysis passes."""

from repro.compiler.ir import Block, ForLoop, PtrLoop, WhileLoop

LOOP_TYPES = (ForLoop, WhileLoop, PtrLoop)


def walk_with_loops(node, stack=()):
    """Yield ``(stmt, loop_stack)`` for every non-loop statement.

    ``loop_stack`` is the tuple of enclosing loop nodes, outermost first.
    Loops themselves are yielded too (with the stack *excluding* them), so
    passes that need per-loop context can filter on the node type.
    """
    if isinstance(node, Block):
        for stmt in node.stmts:
            yield from walk_with_loops(stmt, stack)
    elif isinstance(node, LOOP_TYPES):
        yield node, stack
        if getattr(node, "scope_boundary", False):
            # Each iteration calls a separate function: intra-procedural
            # analysis does not see this loop (or anything outside it) as
            # enclosing the body's references.
            yield from walk_with_loops(node.body, ())
        else:
            yield from walk_with_loops(node.body, stack + (node,))
    else:
        yield node, stack


def loops_in(node):
    """Yield every loop node in the subtree, outermost first."""
    for stmt, _ in walk_with_loops(node):
        if isinstance(stmt, LOOP_TYPES):
            yield stmt


def statements_in(loop):
    """Yield every non-loop statement anywhere inside ``loop``'s body."""
    for stmt, _ in walk_with_loops(loop.body):
        if not isinstance(stmt, LOOP_TYPES):
            yield stmt


def inner_loops_between(ref_stack, outer_loop):
    """Loops strictly inside ``outer_loop`` on the path to a reference.

    ``ref_stack`` is the reference's enclosing-loop stack; the result is
    the suffix of that stack after ``outer_loop``.
    """
    for pos, loop in enumerate(ref_stack):
        if loop is outer_loop:
            return ref_stack[pos + 1:]
    raise ValueError("outer_loop is not on the reference's loop stack")


def trip_count(loop):
    """Static trip count of a loop, or None when symbolic/unknown."""
    if isinstance(loop, ForLoop):
        if isinstance(loop.lower, int) and isinstance(loop.upper, int):
            span = loop.upper - loop.lower
            if span <= 0:
                return 0
            step = abs(loop.step)
            return (span + step - 1) // step
        return None
    if isinstance(loop, (WhileLoop, PtrLoop)):
        trips = loop.trips
        return trips if isinstance(trips, int) else None
    raise TypeError("not a loop: %r" % loop)
