"""Induction variable recognition, including induction pointers.

In this IR, ``ForLoop`` variables and ``PtrLoop`` pointers are induction
entities by construction, so "recognition" reduces to collecting them with
their steps and loop associations.  The pass still exists as a module
because every later analysis phrases its questions through it, mirroring
the structure of Figure 7 in the paper (the algorithm's first line is
``induction_variable_recognition()``).
"""

from repro.compiler.ir import ForLoop, PtrLoop
from repro.compiler.passes.nest import loops_in


class InductionInfo:
    """Lookup tables from induction variables/pointers to their loops."""

    def __init__(self):
        #: Var -> (ForLoop, step)
        self.vars = {}
        #: PointerVar -> (PtrLoop, byte step)
        self.pointers = {}

    @classmethod
    def analyze(cls, body):
        """Collect induction variables and pointers from a program body."""
        info = cls()
        for loop in loops_in(body):
            if isinstance(loop, ForLoop):
                info.vars[loop.var] = (loop, loop.step)
            elif isinstance(loop, PtrLoop):
                info.pointers[loop.ptr] = (loop, loop.step)
        return info

    def loop_of_var(self, var):
        entry = self.vars.get(var)
        return entry[0] if entry else None

    def step_of_var(self, var):
        entry = self.vars.get(var)
        return entry[1] if entry else None

    def is_induction_pointer(self, ptr):
        return ptr in self.pointers

    def pointer_step(self, ptr):
        entry = self.pointers.get(ptr)
        return entry[1] if entry else None

    def pointer_loop(self, ptr):
        entry = self.pointers.get(ptr)
        return entry[0] if entry else None
