"""Variable-size region analysis — Section 4.4 of the paper.

For array references in **singly nested loops** (a loop with no enclosing
loop and no loops inside it) with access pattern ``a(b*i + c)``, the
compiler encodes ``b * elem_size`` into a 3-bit coefficient ``x`` with
``x < 7`` and ``2**x`` closest to ``b*e``; the value 7 is reserved for
fixed-size region prefetching.  The loop's upper bound is conveyed to the
hardware at run time via a ``LoopBound`` directive, and the engine computes
the region size as ``bound << x`` bytes.

Induction-pointer loops get the same treatment with ``b*e`` replaced by the
pointer step.
"""

from repro.compiler.ir import ArrayRef, ForLoop, PtrLoop, PtrRef
from repro.compiler.passes.dependence import (
    spatial_dim_coefficient,
    spatial_locality,
)
from repro.compiler.passes.nest import LOOP_TYPES, walk_with_loops


def encode_coefficient(bytes_per_iter):
    """3-bit encoding: x < 7 with 2**x closest to ``bytes_per_iter``."""
    if bytes_per_iter <= 0:
        raise ValueError("stride must be positive")
    best = 0
    best_err = None
    for x in range(7):
        err = abs((1 << x) - bytes_per_iter)
        if best_err is None or err < best_err:
            best, best_err = x, err
    return best


def _singly_nested(loop, stack):
    """True for loops with no enclosing loop and no loop inside."""
    if stack:
        return False
    for stmt, _ in walk_with_loops(loop.body):
        if isinstance(stmt, LOOP_TYPES):
            return False
    return True


def encode_region_hints(program, hint_table, block_size):
    """Attach region coefficients; returns the set of bound-carrying loops.

    The returned set contains ``loop_id`` strings; the interpreter emits a
    ``LoopBound`` directive when entering those loops.
    """
    bound_loops = set()
    for loop, stack in walk_with_loops(program.body):
        if not isinstance(loop, LOOP_TYPES):
            continue
        if not _singly_nested(loop, stack):
            continue
        if isinstance(loop, ForLoop):
            marked = _encode_for_loop(loop, hint_table, block_size)
        elif isinstance(loop, PtrLoop):
            marked = _encode_ptr_loop(loop, hint_table, block_size)
        else:
            marked = False
        if marked:
            bound_loops.add(loop.loop_id)
    return bound_loops


def _encode_for_loop(loop, hint_table, block_size):
    marked = False
    for stmt, _ in walk_with_loops(loop.body):
        if not isinstance(stmt, ArrayRef):
            continue
        hint = hint_table.get(stmt.ref_id)
        if hint is None or not hint.spatial:
            continue
        info = spatial_locality(stmt.array, stmt.subs, (loop,), block_size)
        if info is None or info.loop is not loop:
            continue
        coef = spatial_dim_coefficient(stmt.array, stmt.subs, loop)
        if coef is None:
            continue
        stride_bytes = abs(coef) * stmt.array.elem_size
        hint_table.mark(
            stmt.ref_id, region_coeff=encode_coefficient(stride_bytes)
        )
        marked = True
    return marked


def _encode_ptr_loop(loop, hint_table, block_size):
    marked = False
    for stmt, _ in walk_with_loops(loop.body):
        if not isinstance(stmt, PtrRef) or stmt.ptr is not loop.ptr:
            continue
        hint = hint_table.get(stmt.ref_id)
        if hint is None or not hint.spatial:
            continue
        hint_table.mark(
            stmt.ref_id, region_coeff=encode_coefficient(abs(loop.step))
        )
        marked = True
    return marked
