"""Spatial hint generation — the algorithm of Figure 7 in the paper.

Phase 1 marks array references with detected spatial locality (gated by a
reuse-distance screen when the reuse is not innermost) and dereferences of
loop induction pointers with small steps.

Phase 2 propagates: ``*p`` and ``p->f`` for spatial induction pointers are
spatial, and the element access of a spatial heap-row reference inherits
the analysis of its own column subscript.

Policies (Section 5.4 of the paper):

``conservative``
    Mark only when the spatial reuse is carried by the innermost enclosing
    loop.
``default``
    Innermost reuse always; outer-loop reuse only when the computed reuse
    distance is below the L2 capacity.
``aggressive``
    Mark whenever spatial locality is detected, regardless of distance.
"""

from repro.compiler.ir import (
    Affine,
    ArrayRef,
    HeapRowRef,
    IndexLoad,
    PtrArrayRef,
    PtrAssignFromArray,
    PtrRef,
)
from repro.compiler.passes.dependence import spatial_locality
from repro.compiler.passes.induction import InductionInfo
from repro.compiler.passes.nest import LOOP_TYPES, walk_with_loops
from repro.compiler.passes.reuse import reuse_distance

POLICIES = ("conservative", "default", "aggressive")


def _accept(info, policy, l2_size):
    """Apply the marking policy to a detected spatial locality."""
    if info is None:
        return False
    if info.is_innermost:
        return True
    if policy == "conservative":
        return False
    if policy == "aggressive":
        return True
    distance = reuse_distance(info.loop)
    return distance is not None and distance < l2_size


def generate_spatial_hints(program, hint_table, l2_size, block_size,
                           policy="default"):
    """Run the Figure 7 algorithm; returns {ref_id: SpatialInfo or None}."""
    if policy not in POLICIES:
        raise ValueError("unknown spatial policy %r" % policy)
    induction = InductionInfo.analyze(program.body)
    spatial_info = {}

    for stmt, stack in walk_with_loops(program.body):
        if isinstance(stmt, LOOP_TYPES):
            continue
        if not stack:
            continue  # the algorithm marks only references inside loops

        if isinstance(stmt, ArrayRef):
            info = spatial_locality(stmt.array, stmt.subs, stack, block_size)
            if _accept(info, policy, l2_size):
                hint_table.mark(stmt.ref_id, spatial=True)
                spatial_info[stmt.ref_id] = info
            # Index-array loads inside the subscripts (b(i) in a(b(i)))
            # are references of their own; dependence testing detects
            # their spatial reuse "in the standard way" (Section 4.3).
            for sub in stmt.subs:
                if isinstance(sub, IndexLoad) and isinstance(sub.sub, Affine):
                    idx_info = spatial_locality(
                        sub.index_array, [sub.sub], stack, block_size
                    )
                    if _accept(idx_info, policy, l2_size):
                        hint_table.mark(sub.ref_id, spatial=True)
                        spatial_info[sub.ref_id] = idx_info

        elif isinstance(stmt, HeapRowRef):
            # buf[i]: the row-pointer load is a 1-D access of the pointer
            # array; buf[i][j]: the element access is a 1-D access of the
            # row with the column subscript.
            row_info = spatial_locality(
                stmt.buf, [stmt.row_sub], stack, block_size
            )
            if _accept(row_info, policy, l2_size):
                hint_table.mark(stmt.row_ref_id, spatial=True)
                spatial_info[stmt.row_ref_id] = row_info
            elem_info = _heap_elem_spatial(stmt, stack, block_size)
            if _accept(elem_info, policy, l2_size):
                hint_table.mark(stmt.elem_ref_id, spatial=True)
                spatial_info[stmt.elem_ref_id] = elem_info

        elif isinstance(stmt, PtrArrayRef):
            info = _ptr_array_spatial(stmt, stack, block_size)
            if _accept(info, policy, l2_size):
                hint_table.mark(stmt.ref_id, spatial=True)
                spatial_info[stmt.ref_id] = info

        elif isinstance(stmt, PtrAssignFromArray):
            info = spatial_locality(stmt.array, [stmt.sub], stack, block_size)
            if _accept(info, policy, l2_size):
                hint_table.mark(stmt.ref_id, spatial=True)
                spatial_info[stmt.ref_id] = info

        elif isinstance(stmt, PtrRef):
            # Phase 2 of Figure 7: dereferences of loop induction pointers
            # with a small constant step are spatial.
            step = induction.pointer_step(stmt.ptr)
            if step is not None and 0 < abs(step) <= block_size:
                hint_table.mark(stmt.ref_id, spatial=True)
                loop = induction.pointer_loop(stmt.ptr)
                spatial_info[stmt.ref_id] = _PointerSpatial(loop, step)

    return spatial_info


def _ptr_array_spatial(stmt, stack, block_size):
    """Spatial analysis of ``p[sub]``: a heap array with an unknown base."""
    from repro.compiler.symbols import ArrayDecl, Sym

    row = ArrayDecl(
        "%s_target" % stmt.ptr.name,
        stmt.elem_size,
        [Sym("%s_len" % stmt.ptr.name)],
        storage="heap",
    )
    return spatial_locality(row, [stmt.sub], stack, block_size)


def _heap_elem_spatial(stmt, stack, block_size):
    """Spatial analysis of ``row[j]`` inside ``buf[i][j]``.

    The row is a heap array of ``elem_size`` elements; wrap it in a
    throwaway 1-D declaration so the standard dependence test applies
    (the paper handles C heap arrays "using the same analysis").
    """
    from repro.compiler.symbols import ArrayDecl, Sym

    row = ArrayDecl(
        "%s_row" % stmt.buf.name,
        stmt.elem_size,
        [Sym("%s_cols" % stmt.buf.name)],
        storage="heap",
    )
    return spatial_locality(row, [stmt.col_sub], stack, block_size)


class _PointerSpatial:
    """SpatialInfo-alike for induction-pointer dereferences."""

    __slots__ = ("loop", "byte_stride", "is_innermost")

    def __init__(self, loop, byte_stride):
        self.loop = loop
        self.byte_stride = byte_stride
        self.is_innermost = True
