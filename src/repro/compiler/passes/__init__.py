"""Compiler analysis passes — Section 4 of the paper, one module each."""

from repro.compiler.passes.nest import walk_with_loops, loops_in
from repro.compiler.passes.induction import InductionInfo
from repro.compiler.passes.dependence import SpatialInfo, spatial_locality
from repro.compiler.passes.reuse import reuse_distance
from repro.compiler.passes.spatial import generate_spatial_hints
from repro.compiler.passes.pointer import generate_pointer_hints
from repro.compiler.passes.indirect import IndirectInfo, detect_indirect
from repro.compiler.passes.region import encode_region_hints

__all__ = [
    "IndirectInfo",
    "InductionInfo",
    "SpatialInfo",
    "detect_indirect",
    "encode_region_hints",
    "generate_pointer_hints",
    "generate_spatial_hints",
    "loops_in",
    "reuse_distance",
    "spatial_locality",
    "walk_with_loops",
]
