"""Dependence-based spatial locality detection for affine array references.

Following the paper (Section 4.1), dependence testing detects when the
spatial dimension of an array (the row in C, the column in Fortran) is
accessed as an affine function of a loop induction variable, and at which
nesting level.  A reference has spatial locality with respect to loop ``L``
when successive iterations of ``L`` move the reference by a small byte
stride — at most a cache block.

Only affine subscripts are analysable; :class:`Opaque` and
:class:`IndexLoad` subscripts disqualify any loop whose variable they might
depend on (which is all of them, conservatively).
"""

from repro.compiler.ir import Affine, ForLoop
from repro.compiler.symbols import Sym


class SpatialInfo:
    """Result of spatial-locality detection for one reference."""

    __slots__ = ("loop", "byte_stride", "is_innermost")

    def __init__(self, loop, byte_stride, is_innermost):
        #: The enclosing loop whose iterations carry the spatial reuse.
        self.loop = loop
        #: Bytes the reference moves per iteration of that loop.
        self.byte_stride = byte_stride
        #: Whether that loop is the innermost loop enclosing the reference.
        self.is_innermost = is_innermost

    def __repr__(self):
        return "SpatialInfo(%s, %+dB, innermost=%s)" % (
            getattr(self.loop, "loop_id", "?"),
            self.byte_stride,
            self.is_innermost,
        )


def _dim_strides(array):
    """Element stride of each dimension, or None where extents are symbolic.

    Row-major: the last dimension is contiguous; a dimension's stride is
    the product of all faster-varying extents.  Column-major is the mirror.
    """
    rank = array.rank
    strides = [None] * rank
    if array.layout == "row":
        order = range(rank - 1, -1, -1)
    else:
        order = range(rank)
    acc = 1
    for d in order:
        strides[d] = acc
        extent = array.dims[d]
        if isinstance(extent, Sym) or acc is None:
            acc = None
        else:
            acc *= extent
    return strides


def _stride_for_var(array, subs, var, step):
    """Byte stride of the reference per iteration of ``var``'s loop.

    Returns None when the stride cannot be computed (symbolic extents in a
    dimension the variable drives, or unanalysable subscripts that may
    depend on the loop).
    """
    strides = _dim_strides(array)
    delta_elems = 0
    for d, sub in enumerate(subs):
        if not isinstance(sub, Affine):
            # Opaque / IndexLoad: may vary with any loop -> unanalysable.
            return None
        coef = sub.coef(var)
        if coef == 0:
            continue
        if strides[d] is None:
            return None
        delta_elems += coef * strides[d]
    return delta_elems * step * array.elem_size


def spatial_locality(array, subs, loop_stack, block_size):
    """Detect spatial locality for ``array[subs]`` under ``loop_stack``.

    Returns a :class:`SpatialInfo` for the innermost enclosing loop whose
    iterations move the reference by ``0 < |stride| <= block_size`` bytes,
    or None.  A zero stride is temporal (same block every iteration), which
    region prefetching gains nothing from, so it does not qualify.
    """
    innermost = loop_stack[-1] if loop_stack else None
    for loop in reversed(loop_stack):
        if not isinstance(loop, ForLoop):
            continue
        byte_stride = _stride_for_var(array, subs, loop.var, loop.step)
        if byte_stride is None or byte_stride == 0:
            continue
        if abs(byte_stride) <= block_size:
            return SpatialInfo(loop, byte_stride, loop is innermost)
    return None


def spatial_dim_coefficient(array, subs, loop):
    """The subscript coefficient ``b`` of ``loop.var`` in the spatial dim.

    Used by the variable-region encoder: for an access pattern
    ``a(b*i + c)`` the compiler encodes ``b * elem_size`` as the 3-bit
    region coefficient.  Returns None when the spatial dimension is not
    affine in the loop variable.
    """
    sub = subs[array.spatial_dim()]
    if not isinstance(sub, Affine):
        return None
    coef = sub.coef(loop.var)
    return coef if coef != 0 else None
