"""Reuse-distance estimation.

When a reference's spatial reuse is carried by a non-innermost loop, the
blocks it revisits must survive in the L2 across one full iteration of that
loop.  The compiler estimates the data volume touched per iteration of the
spatial loop; if it is below the L2 capacity (and assuming sufficient
associativity, as the paper does), the reuse is marked exploitable.

The estimate is the sum over all references inside the loop of
``elem_size x product(trip counts of the loops between)``.  Any symbolic
trip count on the path makes the distance unknown, in which case the
calling policy decides (the paper's default is conservative: mark only
innermost-loop reuse when the distance is unknown).
"""

from repro.compiler.ir import (
    ArrayRef,
    HeapRowRef,
    PtrArrayRef,
    PtrAssignField,
    PtrAssignFromArray,
    PtrChase,
    PtrRef,
    PtrSelect,
)
from repro.compiler.passes.nest import LOOP_TYPES, trip_count, walk_with_loops


def _ref_bytes(stmt):
    """Bytes one dynamic execution of ``stmt`` touches."""
    if isinstance(stmt, ArrayRef):
        return stmt.array.elem_size
    if isinstance(stmt, HeapRowRef):
        return 8 + stmt.elem_size  # row pointer + element
    if isinstance(stmt, PtrRef):
        return stmt.size
    if isinstance(stmt, PtrArrayRef):
        return stmt.elem_size
    if isinstance(stmt, (PtrChase, PtrAssignField, PtrAssignFromArray,
                         PtrSelect)):
        return 8
    return 0


def bytes_per_iteration(loop):
    """Data volume touched by one iteration of ``loop``, or None if unknown.

    Counts every memory reference in the body, multiplied by the trip
    counts of any loops nested between ``loop`` and the reference.
    """
    total = 0
    for stmt, stack in walk_with_loops(loop.body):
        if isinstance(stmt, LOOP_TYPES):
            continue
        bytes_once = _ref_bytes(stmt)
        if bytes_once == 0:
            continue
        multiplier = 1
        for inner in stack:
            trips = trip_count(inner)
            if trips is None:
                return None
            multiplier *= trips
        total += bytes_once * multiplier
    return total


def reuse_distance(spatial_loop):
    """Estimated reuse distance (bytes) across one spatial-loop iteration.

    None when any nested trip count is symbolic.
    """
    return bytes_per_iteration(spatial_loop)
