"""Limited-window out-of-order core timing model.

This is the trace-driven analogue of the paper's SimpleScalar
``sim-outorder`` configuration (4-wide issue, 64-entry RUU): a retirement
ring buffer of ``window_size`` completion times enforces that instruction
``k`` cannot issue until instruction ``k - window`` has completed, which is
exactly the reorder-buffer constraint that determines how much memory
latency an OoO core can hide.

Properties captured:

* back-to-back ALU work retires at the issue width;
* a load miss does not stall issue immediately — up to ``window`` younger
  instructions (including other loads, giving memory-level parallelism
  bounded by the MSHRs in the hierarchy) keep issuing;
* once the window wraps around to an incomplete load, issue stalls until
  its data returns — the L2-miss serialization that prefetching attacks.
"""


class Core:
    """Executes a trace event stream against a memory hierarchy."""

    def __init__(self, config, hierarchy, hint_table=None):
        self.hierarchy = hierarchy
        self.hint_table = hint_table
        self.window = config.window_size
        self.inv_width = 1.0 / config.issue_width
        self._ring = [0.0] * self.window
        self._head = 0
        self._clock = 0.0
        self.instructions = 0
        self.load_stall_cycles = 0.0

    # ------------------------------------------------------------------
    def _issue(self, latency):
        """Issue one instruction with the given latency; return completion."""
        ring = self._ring
        head = self._head
        earliest = ring[head]
        clock = self._clock + self.inv_width
        if earliest > clock:
            clock = earliest
        self._clock = clock
        completion = clock + latency
        ring[head] = completion
        self._head = (head + 1) % self.window
        self.instructions += 1
        return completion

    def _issue_ops(self, count):
        """Issue ``count`` single-cycle ALU instructions.

        Small batches go through the exact per-instruction path.  Large
        batches use a closed form: the batch retires at the issue width
        except where an outstanding long-latency completion (a ring entry
        still in the future) blocks the window — op ``d`` steps ahead
        cannot pass slot ``s`` until ``ring[s]``, after which the
        remaining ``count - d`` ops take ``(count - d) / width``.
        """
        if count <= 32:
            for _ in range(count):
                self._issue(1.0)
            return
        ring = self._ring
        window = self.window
        head = self._head
        inv = self.inv_width
        clock = self._clock + count * inv
        base = self._clock
        for s in range(window):
            completion = ring[s]
            if completion <= base:
                continue
            d = (s - head) % window
            if count > d:
                candidate = completion + (count - d) * inv
                if candidate > clock:
                    clock = candidate
        self._clock = clock
        # All slots the batch touched now hold ~1-cycle completions; for
        # batches shorter than the window this is pessimistic by at most
        # count/width cycles on untouched slots' successors.
        if count >= window:
            fill = clock + 1.0
            for s in range(window):
                ring[s] = fill
            self._head = 0
        else:
            fill = clock + 1.0
            for k in range(count):
                ring[(head + k) % window] = fill
            self._head = (head + count) % window
        self.instructions += count

    # ------------------------------------------------------------------
    def execute(self, events, limit_refs=None):
        """Run a trace; returns the final cycle count.

        ``events`` yields MemRef / Ops / directive records (see
        :mod:`repro.trace.events`).  ``limit_refs`` optionally truncates the
        run after that many memory references.
        """
        refs = 0
        hierarchy = self.hierarchy
        table = self.hint_table
        for event in events:
            kind = type(event).__name__
            if kind == "MemRef":
                hint = table.get(event.ref_id) if table is not None else None
                issue_at = max(self._clock, self._ring[self._head])
                ready = hierarchy.access(
                    event.addr, issue_at,
                    is_store=event.is_store,
                    ref_id=event.ref_id, hint=hint,
                )
                latency = ready - issue_at
                before = self._clock
                self._issue(latency)
                self.load_stall_cycles += max(0.0, self._clock - before - self.inv_width)
                refs += 1
                if limit_refs is not None and refs >= limit_refs:
                    break
            elif kind == "Ops":
                self._issue_ops(event.count)
            else:
                # Software directive: one instruction of overhead plus the
                # message to the prefetch engine.
                completion = self._issue(1.0)
                hierarchy.directive(event, completion)
        return self.cycles

    # ------------------------------------------------------------------
    @property
    def cycles(self):
        """Total execution cycles so far (issue front + in-flight work)."""
        return max(self._clock, max(self._ring))

    @property
    def ipc(self):
        cycles = self.cycles
        return self.instructions / cycles if cycles > 0 else 0.0
