"""Limited-window out-of-order core timing model.

This is the trace-driven analogue of the paper's SimpleScalar
``sim-outorder`` configuration (4-wide issue, 64-entry RUU): a retirement
ring buffer of ``window_size`` completion times enforces that instruction
``k`` cannot issue until instruction ``k - window`` has completed, which is
exactly the reorder-buffer constraint that determines how much memory
latency an OoO core can hide.

Properties captured:

* back-to-back ALU work retires at the issue width;
* a load miss does not stall issue immediately — up to ``window`` younger
  instructions (including other loads, giving memory-level parallelism
  bounded by the MSHRs in the hierarchy) keep issuing;
* once the window wraps around to an incomplete load, issue stalls until
  its data returns — the L2-miss serialization that prefetching attacks.

Two replay entry points execute a trace: :meth:`Core.execute` consumes a
stream of event objects, :meth:`Core.execute_compiled` iterates a
:class:`~repro.trace.compiled.CompiledTrace`'s columns directly.  They
issue the identical instruction sequence — the differential tests assert
their statistics byte-for-byte equal.
"""

from repro.trace.compiled import K_BOUND, K_OPS, K_SETBASE, K_STORE
from repro.trace.events import (
    IndirectPrefetch,
    LoopBound,
    MemRef,
    Ops,
    SetIndirectBase,
)


def _directive_event(kind, a, b, c):
    """Rebuild a directive event object from its compiled columns."""
    if kind == K_BOUND:
        return LoopBound(a)
    if kind == K_SETBASE:
        return SetIndirectBase(a, b)
    return IndirectPrefetch(a, b, c)


class Core:
    """Executes a trace event stream against a memory hierarchy."""

    def __init__(self, config, hierarchy, hint_table=None, core_id=0):
        self.hierarchy = hierarchy
        self.hint_table = hint_table
        self.window = config.window_size
        self.inv_width = 1.0 / config.issue_width
        self._ring = [0.0] * self.window
        self._head = 0
        self._clock = 0.0
        self.instructions = 0
        self.load_stall_cycles = 0.0
        #: Identity within a multi-core co-run (0 when standalone); the
        #: stepping loop uses it to select per-core attribution slices.
        self.core_id = core_id
        self._step_access = None
        self._step_note = None

    # ------------------------------------------------------------------
    def _issue(self, latency):
        """Issue one instruction with the given latency; return completion."""
        ring = self._ring
        head = self._head
        earliest = ring[head]
        clock = self._clock + self.inv_width
        if earliest > clock:
            clock = earliest
        self._clock = clock
        completion = clock + latency
        ring[head] = completion
        self._head = (head + 1) % self.window
        self.instructions += 1
        return completion

    def _issue_ops(self, count):
        """Issue ``count`` single-cycle ALU instructions.

        Small batches go through the exact per-instruction path.  Large
        batches use a closed form: the batch retires at the issue width
        except where an outstanding long-latency completion (a ring entry
        still in the future) blocks the window — op ``d`` steps ahead
        cannot pass slot ``s`` until ``ring[s]``, after which the
        remaining ``count - d`` ops take ``(count - d) / width``.
        """
        if count <= 32:
            # The exact per-instruction path, with _issue's body inlined
            # (same float operations in the same order).
            ring = self._ring
            window = self.window
            head = self._head
            inv = self.inv_width
            clock = self._clock
            for _ in range(count):
                earliest = ring[head]
                clock = clock + inv
                if earliest > clock:
                    clock = earliest
                ring[head] = clock + 1.0
                head = head + 1
                if head == window:
                    head = 0
            self._clock = clock
            self._head = head
            self.instructions += count
            return
        ring = self._ring
        window = self.window
        head = self._head
        inv = self.inv_width
        base = self._clock
        clock = base + count * inv
        # When every outstanding completion is already in the past (the
        # common case between memory bursts) no slot can block the batch.
        if max(ring) > base:
            # Only the first min(count, window) slots in ring order from
            # the head can block ops of this batch (op d cannot pass slot
            # head+d); walking in that order replaces the per-slot modulo
            # of a position-order scan.
            n = count if count < window else window
            s = head
            for d in range(n):
                completion = ring[s]
                if completion > base:
                    candidate = completion + (count - d) * inv
                    if candidate > clock:
                        clock = candidate
                s += 1
                if s == window:
                    s = 0
        self._clock = clock
        # All slots the batch touched now hold ~1-cycle completions; for
        # batches shorter than the window this is pessimistic by at most
        # count/width cycles on untouched slots' successors.
        fill = clock + 1.0
        if count >= window:
            ring[:] = [fill] * window
            self._head = 0
        else:
            end = head + count
            if end <= window:
                ring[head:end] = [fill] * count
                self._head = 0 if end == window else end
            else:
                ring[head:] = [fill] * (window - head)
                end -= window
                ring[:end] = [fill] * end
                self._head = end
        self.instructions += count

    # ------------------------------------------------------------------
    def execute(self, events, limit_refs=None):
        """Run a trace; returns the final cycle count.

        ``events`` yields MemRef / Ops / directive records (see
        :mod:`repro.trace.events`).  ``limit_refs`` optionally truncates the
        run after that many memory references.
        """
        refs = 0
        hierarchy = self.hierarchy
        access = hierarchy.access
        table = self.hint_table
        inv_width = self.inv_width
        adapt = getattr(hierarchy, "adapt", None)
        note_access = adapt.note_access if adapt is not None else None
        for event in events:
            etype = event.__class__
            if etype is MemRef:
                hint = table.get(event.ref_id) if table is not None else None
                issue_at = max(self._clock, self._ring[self._head])
                ready = access(
                    event.addr, issue_at,
                    is_store=event.is_store,
                    ref_id=event.ref_id, hint=hint,
                )
                latency = ready - issue_at
                before = self._clock
                self._issue(latency)
                self.load_stall_cycles += max(0.0, self._clock - before - inv_width)
                refs += 1
                if note_access is not None:
                    # Adaptive epoch check: counts this reference and, on
                    # a boundary, samples/adjusts with the post-issue
                    # clock (execute_compiled mirrors this exactly).
                    note_access(self._clock)
                if limit_refs is not None and refs >= limit_refs:
                    break
            elif etype is Ops:
                self._issue_ops(event.count)
            else:
                # Software directive: one instruction of overhead plus the
                # message to the prefetch engine.
                completion = self._issue(1.0)
                hierarchy.directive(event, completion)
        return self.cycles

    def execute_compiled(self, trace, limit_refs=None):
        """Run a :class:`~repro.trace.compiled.CompiledTrace`.

        Issues the identical instruction sequence :meth:`execute` would
        for the same events, but iterates the trace's columns directly —
        no per-event objects, no attribute loads, hint lookups resolved
        per static reference id — with the issue-ring arithmetic and the
        hierarchy's L1 probe inlined into the loop (each replicating the
        out-of-line code operation for operation; the differential tests
        compare the resulting statistics byte for byte).

        The inline L1 path only runs for configurations whose ``access``
        takes no per-reference detours: reference runs, TLB-enabled
        configs, and trace-sink runs take the out-of-line ``access``.
        """
        hierarchy = self.hierarchy
        hints = trace.resolve_hints(self.hint_table)
        ref_names = trace.ref_names
        kinds = trace.kinds
        f0, f1, f2 = trace.f0, trace.f1, trace.f2
        window = self.window
        inv = self.inv_width
        ring = self._ring
        clock = self._clock
        head = self._head
        instructions = self.instructions
        load_stall = self.load_stall_cycles
        refs = 0

        general = (
            hierarchy.reference
            or hierarchy.tlb is not None
            or hierarchy.metrics.sink is not None
        )
        adapt = getattr(hierarchy, "adapt", None)
        note_access = adapt.note_access if adapt is not None else None
        access = hierarchy.access
        if not general:
            l1 = hierarchy.l1
            l1_index = l1._index
            l1_sets = l1._sets
            l1_shift = l1._block_shift
            l1_set_mask = l1._set_mask
            l1_stats = l1.stats
            l1_shadow = l1._shadow
            l1_latency = l1.latency
            block_mask = hierarchy._block_mask
            hstats = hierarchy.stats
            perfect_l1 = hierarchy._perfect_l1
            metrics = hierarchy.metrics
            series = metrics.series
            issue_prefetches = hierarchy.controller.issue_prefetches
            has_candidates = hierarchy._has_candidates
            miss_path = hierarchy.access_after_l1_miss

        try:
            for i, kind in enumerate(kinds):
                if kind <= K_STORE:
                    is_store = kind == K_STORE
                    e = ring[head]
                    # max(clock, ring[head]): first argument wins ties.
                    now = clock if clock >= e else e
                    if general:
                        ridx = f0[i]
                        ready = access(
                            f1[i], now, is_store=is_store,
                            ref_id=ref_names[ridx], hint=hints[ridx],
                        )
                    elif perfect_l1:
                        if is_store:
                            hstats.stores += 1
                        else:
                            hstats.loads += 1
                        ready = now + l1_latency
                    else:
                        # Hierarchy.access, inlined up to the L1 probe.
                        if is_store:
                            hstats.stores += 1
                        else:
                            hstats.loads += 1
                        if has_candidates is not None and has_candidates():
                            issue_prefetches(now)
                        if now >= series._next:
                            metrics.tick(now)
                        block = f1[i] & block_mask
                        line = l1_index.get(block)
                        if line is not None:
                            # Cache.access_block hit path, inlined.
                            l1_stats.demand_accesses += 1
                            lines = l1_sets[
                                (block >> l1_shift) & l1_set_mask]
                            if lines[-1] is not line:
                                lines.remove(line)
                                lines.append(line)
                            if not line.referenced:
                                line.referenced = True
                                l1_stats.useful_prefetches += 1
                            if is_store:
                                line.dirty = True
                            l1_stats.demand_hits += 1
                            ready = now + l1_latency
                        else:
                            l1_stats.demand_accesses += 1
                            l1_stats.demand_misses += 1
                            if l1_shadow and \
                                    l1_shadow.pop(block, None) is not None:
                                l1_stats.pollution_misses += 1
                            ridx = f0[i]
                            ready = miss_path(
                                block, f1[i], now, is_store,
                                ref_names[ridx], hints[ridx],
                            )
                    latency = ready - now
                    # _issue(latency), inlined; `before` is the pre-issue
                    # clock (ring[head] is untouched by the access above).
                    before = clock
                    c = clock + inv
                    if e > c:
                        c = e
                    clock = c
                    ring[head] = c + latency
                    head += 1
                    if head == window:
                        head = 0
                    instructions += 1
                    s = clock - before - inv
                    if s > 0.0:
                        load_stall += s
                    refs += 1
                    if note_access is not None:
                        # Adaptive epoch check at the same point, with
                        # the same post-issue clock, as execute() — the
                        # boundary reads only counters both paths update
                        # identically, preserving fast==slow equivalence.
                        note_access(clock)
                    if limit_refs is not None and refs >= limit_refs:
                        break
                elif kind == K_OPS:
                    count = f0[i]
                    if count <= 32:
                        # _issue_ops' exact small-batch path, inlined.
                        for _ in range(count):
                            e = ring[head]
                            clock = clock + inv
                            if e > clock:
                                clock = e
                            ring[head] = clock + 1.0
                            head += 1
                            if head == window:
                                head = 0
                        instructions += count
                    else:
                        self._clock = clock
                        self._head = head
                        self.instructions = instructions
                        self._issue_ops(count)
                        clock = self._clock
                        head = self._head
                        instructions = self.instructions
                else:
                    event = _directive_event(kind, f0[i], f1[i], f2[i])
                    # _issue(1.0), inlined.
                    e = ring[head]
                    c = clock + inv
                    if e > c:
                        c = e
                    clock = c
                    completion = c + 1.0
                    ring[head] = completion
                    head += 1
                    if head == window:
                        head = 0
                    instructions += 1
                    hierarchy.directive(event, completion)
        finally:
            self._clock = clock
            self._head = head
            self.instructions = instructions
            self.load_stall_cycles = load_stall
        return self.cycles

    def execute_vectorized(self, trace, limit_refs=None):
        """Replay a compiled trace with the numpy batch backend.

        Byte-identical in every statistic to :meth:`execute_compiled`
        (the differential suite enforces it); degrades to the fused loop
        when numpy is unavailable, the trace has no column views, or the
        configuration falls outside the batch math's exactness envelope
        (see :func:`repro.sim.vectorized.supports`).
        """
        from repro.sim import vectorized  # late: repro.sim imports us

        if not vectorized.supports(self) or trace.columns() is None:
            return self.execute_compiled(trace, limit_refs=limit_refs)
        return vectorized.execute_vectorized(self, trace,
                                             limit_refs=limit_refs)

    # ------------------------------------------------------------------
    # Externally-driven stepping (the multi-core replay loop)
    # ------------------------------------------------------------------
    def begin_stepping(self):
        """Bind the per-step call targets before external stepping.

        :meth:`step` replays one event per call under an outer arbitration
        loop (see :mod:`repro.sim.multicore`); binding the hierarchy's
        ``access`` and the adaptive ``note_access`` hook once here mirrors
        the hoisting :meth:`execute` does at loop entry, so a 1-core
        stepped replay issues the identical operation sequence.
        """
        self._step_access = self.hierarchy.access
        adapt = getattr(self.hierarchy, "adapt", None)
        self._step_note = adapt.note_access if adapt is not None else None

    def next_issue_at(self):
        """Cycle at which this core's next instruction would issue.

        ``max(clock, ring[head])`` — the same expression :meth:`execute`
        computes for a memory reference's issue time; the multi-core
        arbiter uses it to pick which core steps next.
        """
        issue_at = self._clock
        earliest = self._ring[self._head]
        if earliest > issue_at:
            issue_at = earliest
        return issue_at

    def step(self, event):
        """Replay one trace event; return True for a memory reference.

        Replicates :meth:`execute`'s per-event body operation for
        operation (the 1-core degenerate co-run is compared byte for byte
        against ``execute``), with the caller owning the reference count
        and termination.  :meth:`begin_stepping` must run first.
        """
        etype = event.__class__
        if etype is MemRef:
            table = self.hint_table
            hint = table.get(event.ref_id) if table is not None else None
            issue_at = max(self._clock, self._ring[self._head])
            ready = self._step_access(
                event.addr, issue_at,
                is_store=event.is_store,
                ref_id=event.ref_id, hint=hint,
            )
            latency = ready - issue_at
            before = self._clock
            self._issue(latency)
            self.load_stall_cycles += max(
                0.0, self._clock - before - self.inv_width)
            if self._step_note is not None:
                self._step_note(self._clock)
            return True
        if etype is Ops:
            self._issue_ops(event.count)
            return False
        completion = self._issue(1.0)
        self.hierarchy.directive(event, completion)
        return False

    # ------------------------------------------------------------------
    @property
    def cycles(self):
        """Total execution cycles so far (issue front + in-flight work)."""
        return max(self._clock, max(self._ring))

    @property
    def ipc(self):
        cycles = self.cycles
        return self.instructions / cycles if cycles > 0 else 0.0
