"""The out-of-order core timing model."""

from repro.cpu.core import Core

__all__ = ["Core"]
