"""ASCII bar charts.

The paper's Figures 9-12 are grouped bar charts (one group per
benchmark, one bar per scheme).  :func:`grouped_bar_chart` renders the
same shape in a terminal so the crossover structure is visible at a
glance without a plotting stack.
"""


def bar_chart(labels, values, width=50, title=None, fmt="%.2f"):
    """Render one horizontal bar per (label, value).

    Values must be non-negative; bars scale to the maximum.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")
    peak = max(values) if values else 0
    label_width = max((len(str(l)) for l in labels), default=0)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for label, value in zip(labels, values):
        length = int(round(width * value / peak)) if peak else 0
        lines.append("%-*s |%s %s" % (
            label_width, label, "#" * length, fmt % value))
    return "\n".join(lines)


def grouped_bar_chart(groups, series, width=40, title=None, fmt="%.2f",
                      marks="#=@*+o"):
    """Render grouped horizontal bars.

    ``groups`` is a list of group labels (benchmarks); ``series`` is an
    ordered mapping of series name -> list of values (one per group).
    Each series gets its own bar glyph; a legend line is appended.
    """
    names = list(series)
    for name in names:
        if len(series[name]) != len(groups):
            raise ValueError("series %r length mismatch" % name)
    peak = max((max(vals) for vals in series.values() if vals), default=0)
    label_width = max((len(str(g)) for g in groups), default=0)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for g, group in enumerate(groups):
        for s, name in enumerate(names):
            value = series[name][g]
            length = int(round(width * value / peak)) if peak else 0
            glyph = marks[s % len(marks)]
            prefix = str(group) if s == 0 else ""
            lines.append("%-*s |%s %s" % (
                label_width, prefix, glyph * length, fmt % value))
        lines.append("")
    legend = "  ".join(
        "%s=%s" % (marks[s % len(marks)], name)
        for s, name in enumerate(names)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def chart_from_result(result, value_columns, width=40):
    """Build a grouped bar chart from an ExperimentResult.

    ``value_columns`` maps series names to column indices of
    ``result.rows``; the first column supplies group labels.  Summary
    rows (geomean/average) are included like any other group.
    """
    groups = [row[0] for row in result.rows]
    series = {
        name: [row[idx] for row in result.rows]
        for name, idx in value_columns.items()
    }
    return grouped_bar_chart(groups, series, width=width,
                             title=result.title)
