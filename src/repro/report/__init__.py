"""Reporting: render experiment results as ASCII bar charts (the shape
of the paper's figures) and export them — both rendered tables and raw
serialized RunResults — as CSV/JSON for external plotting."""

from repro.report.bars import bar_chart, grouped_bar_chart
from repro.report.export import (
    SUMMARY_COLUMNS,
    result_to_csv,
    results_to_json,
    runs_from_json,
    runs_to_csv,
    runs_to_json,
)

__all__ = [
    "SUMMARY_COLUMNS",
    "bar_chart",
    "grouped_bar_chart",
    "result_to_csv",
    "results_to_json",
    "runs_from_json",
    "runs_to_csv",
    "runs_to_json",
]
