"""Reporting: render experiment results as ASCII bar charts (the shape
of the paper's figures) and export them as CSV for external plotting."""

from repro.report.bars import bar_chart, grouped_bar_chart
from repro.report.export import result_to_csv, results_to_json

__all__ = [
    "bar_chart",
    "grouped_bar_chart",
    "result_to_csv",
    "results_to_json",
]
