"""Machine-readable exports of experiment results."""

import csv
import io
import json


def result_to_csv(result):
    """Serialize one ExperimentResult as CSV text (headers + rows)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow(row)
    return out.getvalue()


def results_to_json(results):
    """Serialize a mapping of {name: ExperimentResult} as JSON text."""
    payload = {}
    for name, result in results.items():
        payload[name] = {
            "title": result.title,
            "headers": list(result.headers),
            "rows": [list(row) for row in result.rows],
            "notes": result.notes,
        }
    return json.dumps(payload, indent=2, sort_keys=True)
