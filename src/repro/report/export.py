"""Machine-readable exports of experiment results.

Two layers are exportable:

* rendered :class:`~repro.experiments.common.ExperimentResult` tables
  (:func:`result_to_csv`, :func:`results_to_json`), and
* raw serialized RunResults — the ``SimStats.to_dict`` form the batch
  runner and persistent cache move around (:func:`runs_to_json`,
  :func:`runs_from_json`, :func:`runs_to_csv`).

Both raw-layer exporters accept failed slots too: a resilient sweep may
hand back :class:`~repro.sim.stats.RunFailure` records alongside
SimStats, which serialize with their ``failed`` marker, re-hydrate via
:func:`~repro.sim.stats.result_from_dict`, and render a CSV row whose
``status`` column reads ``failed:<kind>`` with the metric columns blank.
"""

import csv
import io
import json

from repro.sim.stats import result_from_dict

#: The stable column schema of :func:`runs_to_csv`, in export order.
#: Downstream consumers (CI's schema check, notebooks, spreadsheets) key
#: on these names; extend the tuple deliberately, never reorder it.
#: ``status`` is ``"ok"`` or ``"failed:<kind>"`` (resilient sweeps only).
#: ``core``/``corun`` identify multi-core co-run rows (the core index and
#: the co-run's workload mix); both stay blank for single-core rows.
SUMMARY_COLUMNS = (
    "workload", "scheme", "instructions", "cycles", "ipc",
    "l2_miss_rate", "l2_demand_misses", "traffic_bytes",
    "prefetch_accuracy", "dram_demand_blocks", "dram_prefetch_blocks",
    "timely_prefetches", "late_prefetches", "useless_evicted_prefetches",
    "never_referenced_prefetches", "pollution_misses",
    "mean_channel_utilization", "status", "core", "corun",
)


def result_to_csv(result):
    """Serialize one ExperimentResult as CSV text (headers + rows)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow(row)
    return out.getvalue()


def results_to_json(results):
    """Serialize a mapping of {name: ExperimentResult} as JSON text."""
    payload = {}
    for name, result in results.items():
        payload[name] = {
            "title": result.title,
            "headers": list(result.headers),
            "rows": [list(row) for row in result.rows],
            "notes": result.notes,
        }
    return json.dumps(payload, indent=2, sort_keys=True)


def runs_to_json(runs):
    """Serialize an iterable of SimStats (RunResults) as JSON text.

    The payload is a list of ``SimStats.to_dict`` dicts — the same
    loss-free form the result cache stores — so it can be re-hydrated
    with :func:`runs_from_json` in another process or much later.
    """
    return json.dumps([stats.to_dict() for stats in runs],
                      indent=2, sort_keys=True)


def runs_from_json(text):
    """Inverse of :func:`runs_to_json`: JSON text -> result objects.

    Each entry re-hydrates as a SimStats, or as a RunFailure when it
    carries the ``failed`` marker (a resilient sweep's degraded slots).
    """
    return [result_from_dict(entry) for entry in json.loads(text)]


def runs_to_csv(runs):
    """Flat CSV of per-run summary metrics (one row per RunResult).

    Columns are exactly :data:`SUMMARY_COLUMNS`, in that order, for every
    input — a deterministic schema regardless of which runs are exported.
    RunFailure slots contribute a row too: identification and ``status``
    filled in, metric columns empty.  A CoRunResult contributes one row
    per core (``summary_rows``), each tagged with its ``core`` index and
    the co-run's workload mix in ``corun``.
    """
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(SUMMARY_COLUMNS)
    for stats in runs:
        rows = (stats.summary_rows() if hasattr(stats, "summary_rows")
                else [stats.summary()])
        for row in rows:
            writer.writerow([row.get(name, "") for name in SUMMARY_COLUMNS])
    return out.getvalue()
