"""IR interpreter: executes a program against the simulated address space
and emits the annotated memory-reference trace.

The interpreter plays the role of the instrumented Alpha binary in the
paper: it produces the dynamic reference stream, with each reference tagged
by its static reference id (the PC analogue the hint table is keyed by),
plus the software directives the GRP binary contains — ``LoopBound``
announcements for variable-size regions and ``IndirectPrefetch``
instructions, emitted each time the program crosses into a new cache block
of an index array.

Pointer-based structures are traversed through the address space's word
content store, so the addresses the trace visits are exactly the pointer
values the prefetch engines see when they scan fetched lines.

Execution is *flattened*: statement handlers are plain methods that append
events directly into one buffer, with a single drain at the top level,
instead of a chain of per-statement generators (``yield from`` delegation
costs a generator frame per statement per iteration and dominated trace
generation time).  :meth:`Interpreter.run` keeps the original generator
API as a thin wrapper over :meth:`Interpreter.run_events`.
"""

import random
from array import array

from repro.compiler.ir import (
    Affine,
    ArrayRef,
    PtrArrayRef,
    Block,
    Compute,
    ForLoop,
    HeapRowRef,
    IndexLoad,
    Opaque,
    PtrAssignField,
    PtrAssignFromArray,
    PtrChase,
    PtrLoop,
    PtrRef,
    PtrSelect,
    WhileLoop,
)
from repro.compiler.symbols import Sym
from repro.trace.compiled import (
    CompiledTrace,
    K_BOUND,
    K_INDIRECT,
    K_LOAD,
    K_OPS,
    K_SETBASE,
    K_STORE,
)
from repro.trace.events import (
    IndirectPrefetch,
    LoopBound,
    MemRef,
    Ops,
    SetIndirectBase,
)

LOOP_OVERHEAD_OPS = 2
"""Branch + induction update charged per loop iteration."""


class TraceLimit(Exception):
    """Raised internally when the reference budget is exhausted."""


class Interpreter:
    """Executes one finalized program, emitting trace events."""

    def __init__(self, program, space, compile_result=None, seed=12345,
                 block_size=64, ops_scale=1.0):
        program.finalize()
        self.program = program
        self.space = space
        self.compile_result = compile_result
        self.block_size = block_size
        self.ops_scale = ops_scale
        self.rng = random.Random(seed)
        self._vars = {}
        self._ptrs = {}
        self._ptr_reset = {}
        self._pending_ops = 0
        self._events = []
        self._refs_emitted = 0
        self._limit = None
        #: When True the emit layer lowers events straight into the
        #: columnar buffers below (see :meth:`run_columns`) instead of
        #: building event objects.
        self._columnar = False
        self._kinds = None
        self._f0 = None
        self._f1 = None
        self._f2 = None
        self._ref_names = None
        self._intern = None
        self._indirect_last_block = {}
        self._dims_cache = {}

    # ------------------------------------------------------------------
    # Environment
    # ------------------------------------------------------------------
    def bind_pointer(self, ptr, addr):
        """Set a pointer variable's initial address (workload setup)."""
        name = ptr.name if hasattr(ptr, "name") else ptr
        self._ptrs[name] = addr
        self._ptr_reset[name] = addr

    def resolve(self, value):
        """Resolve an int-or-Sym through the program bindings."""
        if isinstance(value, Sym):
            try:
                return self.program.bindings[value.name]
            except KeyError:
                raise KeyError(
                    "unbound symbol %r in program %s"
                    % (value.name, self.program.name)
                )
        return value

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------
    def _ops(self, count):
        self._pending_ops += count

    def _flush_ops(self):
        if self._pending_ops:
            if self._columnar:
                self._kinds.append(K_OPS)
                self._f0.append(self._pending_ops)
                self._f1.append(0)
                self._f2.append(0)
            else:
                self._events.append(Ops(self._pending_ops))
            self._pending_ops = 0

    def _emit_ref(self, ref_id, addr, size=8, is_store=False):
        if self._limit is not None and self._refs_emitted >= self._limit:
            raise TraceLimit()
        if self._columnar:
            kinds = self._kinds
            f0 = self._f0
            f1 = self._f1
            f2 = self._f2
            if self._pending_ops:
                kinds.append(K_OPS)
                f0.append(self._pending_ops)
                f1.append(0)
                f2.append(0)
                self._pending_ops = 0
            idx = self._intern.get(ref_id)
            if idx is None:
                idx = self._intern[ref_id] = len(self._ref_names)
                self._ref_names.append(ref_id)
            kinds.append(K_STORE if is_store else K_LOAD)
            f0.append(idx)
            f1.append(addr)
            f2.append(size)
        else:
            if self._pending_ops:
                self._events.append(Ops(self._pending_ops))
                self._pending_ops = 0
            self._events.append(MemRef(ref_id, addr, size, is_store))
        self._refs_emitted += 1

    def _emit_directive(self, event):
        self._flush_ops()
        if not self._columnar:
            self._events.append(event)
            return
        etype = event.__class__
        if etype is LoopBound:
            self._kinds.append(K_BOUND)
            self._f0.append(event.bound)
            self._f1.append(0)
            self._f2.append(0)
        elif etype is SetIndirectBase:
            self._kinds.append(K_SETBASE)
            self._f0.append(event.base_addr)
            self._f1.append(event.elem_size)
            self._f2.append(0)
        elif etype is IndirectPrefetch:
            self._kinds.append(K_INDIRECT)
            self._f0.append(event.base_addr)
            self._f1.append(event.elem_size)
            self._f2.append(event.index_addr)
        else:
            raise TypeError("cannot lower trace event %r" % (event,))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, limit=None):
        """Execute the program; yield trace events.

        ``limit`` caps the number of memory references (the simulation
        budget); execution stops cleanly when it is reached.  Thin
        generator wrapper over :meth:`run_events` for API compatibility.
        """
        yield from self.run_events(limit)

    def run_events(self, limit=None):
        """Execute the program; return the complete event list."""
        self._limit = limit
        try:
            self._exec(self.program.body)
        except TraceLimit:
            pass
        self._flush_ops()
        events, self._events = self._events, []
        return events

    def run_columns(self, limit=None):
        """Execute the program, lowering events straight to columnar form.

        Returns a :class:`~repro.trace.compiled.CompiledTrace` equal to
        ``CompiledTrace.from_events(self.run_events(limit))`` — same
        execution path, same emit call sites — without materializing the
        intermediate per-event objects (the dominant cost of trace
        generation).  The trace-store correctness tests assert the
        equality for every workload.
        """
        self._limit = limit
        self._columnar = True
        self._kinds = array("b")
        self._f0 = array("q")
        self._f1 = array("q")
        self._f2 = array("q")
        self._ref_names = []
        self._intern = {}
        try:
            self._exec(self.program.body)
        except TraceLimit:
            pass
        self._flush_ops()
        trace = CompiledTrace(
            self._kinds, self._f0, self._f1, self._f2,
            self._ref_names, self._refs_emitted,
        )
        self._columnar = False
        self._kinds = self._f0 = self._f1 = self._f2 = None
        self._ref_names = self._intern = None
        return trace

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def _exec(self, stmt):
        self._HANDLERS[type(stmt)](self, stmt)

    def _exec_block(self, block):
        handlers = self._HANDLERS
        for stmt in block.stmts:
            handlers[type(stmt)](self, stmt)

    def _exec_for(self, loop):
        lower = self.resolve(loop.lower)
        upper = self.resolve(loop.upper)
        trips = max(0, -(-(upper - lower) // loop.step)) if loop.step > 0 \
            else max(0, (lower - upper + (-loop.step) - 1) // -loop.step)
        self._maybe_announce_bound(loop, trips)
        handler = self._HANDLERS[type(loop.body)]
        body = loop.body
        var = loop.var.name
        step = loop.step
        value = lower
        for _ in range(trips):
            self._vars[var] = value
            self._pending_ops += LOOP_OVERHEAD_OPS
            handler(self, body)
            value += step

    def _exec_while(self, loop):
        trips = self.resolve(loop.trips)
        self._maybe_announce_bound(loop, trips)
        handler = self._HANDLERS[type(loop.body)]
        body = loop.body
        for _ in range(trips):
            self._pending_ops += LOOP_OVERHEAD_OPS
            handler(self, body)

    def _exec_ptr_loop(self, loop):
        trips = self.resolve(loop.trips)
        self._maybe_announce_bound(loop, trips)
        name = loop.ptr.name
        if name not in self._ptr_reset:
            raise KeyError("pointer %s was never bound" % name)
        # The C idiom is `for (p = start; p < end; p += c)`: entering the
        # loop re-initializes the induction pointer.
        self._ptrs[name] = self._ptr_reset[name]
        handler = self._HANDLERS[type(loop.body)]
        body = loop.body
        for _ in range(trips):
            self._pending_ops += LOOP_OVERHEAD_OPS
            handler(self, body)
            self._ptrs[name] += loop.step

    def _maybe_announce_bound(self, loop, trips):
        result = self.compile_result
        if result is None:
            return
        if loop.loop_id in result.bound_loops:
            self._emit_directive(LoopBound(trips))
        info = result.indirect_base_loops.get(loop.loop_id)
        if info is not None:
            target = info.target_array
            self._emit_directive(SetIndirectBase(
                base_addr=target.base + info.offset * target.elem_size,
                elem_size=info.scale * target.elem_size,
            ))

    # ------------------------------------------------------------------
    # References
    # ------------------------------------------------------------------
    def _array_dims(self, array):
        dims = self._dims_cache.get(array.name)
        if dims is None:
            dims = [self.resolve(d) for d in array.dims]
            self._dims_cache[array.name] = dims
        return dims

    def _sub_value(self, sub):
        """Evaluate one subscript expression; may emit an index-load ref."""
        if isinstance(sub, Affine):
            return sub.evaluate(self._vars, self.rng)
        if isinstance(sub, IndexLoad):
            return self._index_load(sub)
        if isinstance(sub, Opaque):
            return sub.sample(self._vars, self.rng)
        raise TypeError("unknown subscript %r" % sub)

    def _index_load(self, sub):
        b = sub.index_array
        idx = sub.sub.evaluate(self._vars, self.rng)
        addr = b.base + idx * b.elem_size
        self._maybe_indirect_directive(sub, addr)
        self._emit_ref(sub.ref_id, addr, size=b.elem_size)
        value = self.space.load_word(addr)
        if value is None:
            value = 0
        return sub.scale * value + sub.offset

    def _maybe_indirect_directive(self, sub, index_addr):
        result = self.compile_result
        if result is None or sub.ref_id not in result.indirect_sites:
            return
        if result.indirect_mode == "hintbit":
            return  # the hint bit + base register replace the per-block
                    # prefetch instructions
        block = index_addr & ~(self.block_size - 1)
        if self._indirect_last_block.get(sub.ref_id) == block:
            return
        self._indirect_last_block[sub.ref_id] = block
        info = result.indirect_sites[sub.ref_id]
        target = info.target_array
        self._ops(1)  # the explicit prefetch instruction's overhead
        self._emit_directive(
            IndirectPrefetch(
                base_addr=target.base + info.offset * target.elem_size,
                elem_size=info.scale * target.elem_size,
                index_addr=index_addr,
            )
        )

    def _linear_index(self, array, values):
        dims = self._array_dims(array)
        index = 0
        if array.layout == "row":
            for extent, value in zip(dims, values):
                index = index * extent + value
        else:
            for extent, value in zip(reversed(dims), reversed(values)):
                index = index * extent + value
        return index

    def _exec_array_ref(self, stmt):
        if stmt.array.base is None:
            raise RuntimeError(
                "array %s was never materialized" % stmt.array.name
            )
        values = [self._sub_value(sub) for sub in stmt.subs]
        index = self._linear_index(stmt.array, values)
        addr = stmt.array.base + index * stmt.array.elem_size
        self._pending_ops += 1
        self._emit_ref(
            stmt.ref_id, addr, size=stmt.array.elem_size,
            is_store=stmt.is_store,
        )

    def _exec_heap_row_ref(self, stmt):
        row = self._sub_value(stmt.row_sub)
        col = self._sub_value(stmt.col_sub)
        row_addr = stmt.buf.base + row * 8
        self._pending_ops += 1
        self._emit_ref(stmt.row_ref_id, row_addr, size=8)
        row_base = self.space.load_word(row_addr)
        if row_base is None:
            raise RuntimeError(
                "no row pointer stored at %s[%d]" % (stmt.buf.name, row)
            )
        elem_addr = row_base + col * stmt.elem_size
        self._emit_ref(
            stmt.elem_ref_id, elem_addr, size=stmt.elem_size,
            is_store=stmt.is_store,
        )

    def _exec_ptr_ref(self, stmt):
        base = self._ptrs[stmt.ptr.name]
        offset = stmt.field.offset if stmt.field is not None else stmt.offset
        size = stmt.field.size if stmt.field is not None else stmt.size
        self._pending_ops += 1
        self._emit_ref(stmt.ref_id, base + offset, size=size,
                       is_store=stmt.is_store)

    def _exec_ptr_array_ref(self, stmt):
        base = self._ptrs[stmt.ptr.name]
        idx = self._sub_value(stmt.sub)
        self._pending_ops += 1
        self._emit_ref(stmt.ref_id, base + idx * stmt.elem_size,
                       size=stmt.elem_size, is_store=stmt.is_store)

    def _advance_pointer(self, name, value):
        """Follow a loaded pointer; restart the traversal on null."""
        if value is None or value == 0:
            value = self._ptr_reset[name]
        self._ptrs[name] = value

    def _exec_ptr_chase(self, stmt):
        name = stmt.ptr.name
        addr = self._ptrs[name] + stmt.field.offset
        self._pending_ops += 1
        self._emit_ref(stmt.ref_id, addr, size=8)
        self._advance_pointer(name, self.space.load_word(addr))

    def _exec_ptr_select(self, stmt):
        name = stmt.ptr.name
        if stmt.chooser is not None:
            field = stmt.chooser(self._vars, self.rng)
        else:
            field = self.rng.choice(stmt.fields)
        addr = self._ptrs[name] + field.offset
        self._pending_ops += 2  # compare + branch of the data-dependent walk
        self._emit_ref(stmt.ref_id, addr, size=8)
        self._advance_pointer(name, self.space.load_word(addr))

    def _exec_ptr_assign_field(self, stmt):
        addr = self._ptrs[stmt.src.name] + stmt.field.offset
        self._pending_ops += 1
        self._emit_ref(stmt.ref_id, addr, size=8)
        value = self.space.load_word(addr)
        if value is None or value == 0:
            value = self._ptrs[stmt.src.name]
        self._ptrs[stmt.dst.name] = value
        self._ptr_reset.setdefault(stmt.dst.name, value)

    def _exec_ptr_assign_from_array(self, stmt):
        idx = self._sub_value(stmt.sub)
        addr = stmt.array.base + idx * 8
        self._pending_ops += 1
        self._emit_ref(stmt.ref_id, addr, size=8)
        value = self.space.load_word(addr)
        if value is None or value == 0:
            raise RuntimeError(
                "no pointer stored at %s[%d]" % (stmt.array.name, idx)
            )
        self._ptrs[stmt.ptr.name] = value
        self._ptr_reset[stmt.ptr.name] = value

    def _exec_compute(self, stmt):
        self._pending_ops += int(stmt.ops * self.ops_scale)

    _HANDLERS = {
        Block: _exec_block,
        ForLoop: _exec_for,
        WhileLoop: _exec_while,
        PtrLoop: _exec_ptr_loop,
        ArrayRef: _exec_array_ref,
        HeapRowRef: _exec_heap_row_ref,
        PtrRef: _exec_ptr_ref,
        PtrArrayRef: _exec_ptr_array_ref,
        PtrChase: _exec_ptr_chase,
        PtrSelect: _exec_ptr_select,
        PtrAssignField: _exec_ptr_assign_field,
        PtrAssignFromArray: _exec_ptr_assign_from_array,
        Compute: _exec_compute,
    }
