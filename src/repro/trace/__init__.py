"""Trace generation: event records and the IR interpreter."""

from repro.trace.events import (
    IndirectPrefetch,
    LoopBound,
    MemRef,
    Ops,
)
from repro.trace.interp import Interpreter, TraceLimit

__all__ = [
    "IndirectPrefetch",
    "Interpreter",
    "LoopBound",
    "MemRef",
    "Ops",
    "TraceLimit",
]
