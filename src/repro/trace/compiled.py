"""Compiled traces: the interpreter's event stream in columnar form.

A :class:`CompiledTrace` lowers a list of trace events (see
:mod:`repro.trace.events`) into four parallel columns — a kind byte plus
three 64-bit integer fields per event — with memory-reference ids interned
into a side table.  The representation is:

* **compact** — ~25 bytes per event in ``array`` storage instead of a
  Python object per event, so a full trace for one workload is a couple
  of megabytes and cheap to keep resident;
* **loss-free** — :meth:`CompiledTrace.events` reconstructs an event
  stream equal (field by field, in order) to the source stream, which the
  trace-store correctness tests assert for every workload;
* **replayable without objects** — the simulator's fast path
  (:meth:`repro.cpu.core.Core.execute_compiled`) iterates the columns
  directly, skipping per-event object construction and attribute loads.

Column layout per event kind:

=====================  ====  =========  =========  ==========
event                  kind  f0         f1         f2
=====================  ====  =========  =========  ==========
MemRef (load)          0     ref index  addr       size
MemRef (store)         1     ref index  addr       size
Ops                    2     count      0          0
LoopBound              3     bound      0          0
SetIndirectBase        4     base_addr  elem_size  0
IndirectPrefetch       5     base_addr  elem_size  index_addr
=====================  ====  =========  =========  ==========

``ref index`` points into :attr:`CompiledTrace.ref_names`, the interned
static reference ids (the hint-table keys); :meth:`resolve_hints` turns a
hint table into a list aligned with that table so replay does one list
index instead of one dict lookup per reference.

The on-disk form (:meth:`save`/:meth:`load`) is a small JSON header line
followed by the raw column bytes; :mod:`repro.trace.store` keys such
files by trace content identity.
"""

import json
from array import array

from repro.trace.events import (
    IndirectPrefetch,
    LoopBound,
    MemRef,
    Ops,
    SetIndirectBase,
)

#: Event-kind codes (the ``kinds`` column).  Loads and stores are distinct
#: kinds so ``is_store`` needs no extra column; every ``kind <= K_STORE``
#: is a memory reference.
K_LOAD = 0
K_STORE = 1
K_OPS = 2
K_BOUND = 3
K_SETBASE = 4
K_INDIRECT = 5

#: Bumped whenever the columnar layout changes; part of the on-disk
#: header, so stale files from older layouts read as cache misses.
FORMAT_VERSION = 1

_MAGIC = "repro-trace"


class CompiledTrace:
    """One trace, lowered to parallel columns.  Immutable once built."""

    __slots__ = ("kinds", "f0", "f1", "f2", "ref_names", "ref_count")

    def __init__(self, kinds, f0, f1, f2, ref_names, ref_count):
        self.kinds = kinds
        self.f0 = f0
        self.f1 = f1
        self.f2 = f2
        self.ref_names = ref_names
        #: Number of memory-reference events (loads + stores).
        self.ref_count = ref_count

    def __len__(self):
        return len(self.kinds)

    def __repr__(self):
        return "CompiledTrace(%d events, %d refs, %d ref ids)" % (
            len(self.kinds), self.ref_count, len(self.ref_names)
        )

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, events):
        """Lower an event list (or iterable) into columnar form."""
        kinds = array("b")
        f0 = array("q")
        f1 = array("q")
        f2 = array("q")
        ref_names = []
        intern = {}
        ref_count = 0
        for event in events:
            etype = event.__class__
            if etype is MemRef:
                ref_id = event.ref_id
                idx = intern.get(ref_id)
                if idx is None:
                    idx = intern[ref_id] = len(ref_names)
                    ref_names.append(ref_id)
                kinds.append(K_STORE if event.is_store else K_LOAD)
                f0.append(idx)
                f1.append(event.addr)
                f2.append(event.size)
                ref_count += 1
            elif etype is Ops:
                kinds.append(K_OPS)
                f0.append(event.count)
                f1.append(0)
                f2.append(0)
            elif etype is LoopBound:
                kinds.append(K_BOUND)
                f0.append(event.bound)
                f1.append(0)
                f2.append(0)
            elif etype is SetIndirectBase:
                kinds.append(K_SETBASE)
                f0.append(event.base_addr)
                f1.append(event.elem_size)
                f2.append(0)
            elif etype is IndirectPrefetch:
                kinds.append(K_INDIRECT)
                f0.append(event.base_addr)
                f1.append(event.elem_size)
                f2.append(event.index_addr)
            else:
                raise TypeError("cannot lower trace event %r" % (event,))
        return cls(kinds, f0, f1, f2, ref_names, ref_count)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def events(self):
        """Yield reconstructed event objects, equal to the source stream."""
        ref_names = self.ref_names
        f0, f1, f2 = self.f0, self.f1, self.f2
        for i, kind in enumerate(self.kinds):
            if kind <= K_STORE:
                yield MemRef(ref_names[f0[i]], f1[i], f2[i],
                             is_store=(kind == K_STORE))
            elif kind == K_OPS:
                yield Ops(f0[i])
            elif kind == K_BOUND:
                yield LoopBound(f0[i])
            elif kind == K_SETBASE:
                yield SetIndirectBase(f0[i], f1[i])
            else:
                yield IndirectPrefetch(f0[i], f1[i], f2[i])

    def resolve_hints(self, hint_table):
        """Per-ref-index hint list: ``hints[f0[i]]`` replaces a dict get."""
        if hint_table is None:
            return [None] * len(self.ref_names)
        return [hint_table.get(name) for name in self.ref_names]

    # ------------------------------------------------------------------
    # Disk form
    # ------------------------------------------------------------------
    def save(self, path):
        """Write the trace to ``path`` (header line + raw column bytes)."""
        header = {
            "magic": _MAGIC,
            "format": FORMAT_VERSION,
            "events": len(self.kinds),
            "refs": self.ref_count,
            "ref_names": self.ref_names,
        }
        with open(path, "wb") as fh:
            fh.write(json.dumps(header).encode("utf-8"))
            fh.write(b"\n")
            fh.write(self.kinds.tobytes())
            fh.write(self.f0.tobytes())
            fh.write(self.f1.tobytes())
            fh.write(self.f2.tobytes())

    @classmethod
    def load(cls, path):
        """Read a trace written by :meth:`save`.

        Raises ``ValueError`` on any malformed or stale-format file (the
        trace store turns that into a cache miss).
        """
        with open(path, "rb") as fh:
            header_line = fh.readline()
            header = json.loads(header_line.decode("utf-8"))
            if header.get("magic") != _MAGIC:
                raise ValueError("not a compiled trace: %s" % path)
            if header.get("format") != FORMAT_VERSION:
                raise ValueError("stale trace format in %s" % path)
            count = header["events"]
            kinds = array("b")
            kinds.frombytes(fh.read(count * kinds.itemsize))
            columns = []
            for _ in range(3):
                col = array("q")
                col.frombytes(fh.read(count * col.itemsize))
                columns.append(col)
        if len(kinds) != count or any(len(c) != count for c in columns):
            raise ValueError("truncated compiled trace: %s" % path)
        return cls(kinds, columns[0], columns[1], columns[2],
                   header["ref_names"], header["refs"])
