"""Compiled traces: the interpreter's event stream in columnar form.

A :class:`CompiledTrace` lowers a list of trace events (see
:mod:`repro.trace.events`) into four parallel columns — a kind byte plus
three 64-bit integer fields per event — with memory-reference ids interned
into a side table.  The representation is:

* **compact** — ~25 bytes per event in ``array`` storage instead of a
  Python object per event, so a full trace for one workload is a couple
  of megabytes and cheap to keep resident;
* **loss-free** — :meth:`CompiledTrace.events` reconstructs an event
  stream equal (field by field, in order) to the source stream, which the
  trace-store correctness tests assert for every workload;
* **replayable without objects** — the simulator's fast path
  (:meth:`repro.cpu.core.Core.execute_compiled`) iterates the columns
  directly, skipping per-event object construction and attribute loads.

Column layout per event kind:

=====================  ====  =========  =========  ==========
event                  kind  f0         f1         f2
=====================  ====  =========  =========  ==========
MemRef (load)          0     ref index  addr       size
MemRef (store)         1     ref index  addr       size
Ops                    2     count      0          0
LoopBound              3     bound      0          0
SetIndirectBase        4     base_addr  elem_size  0
IndirectPrefetch       5     base_addr  elem_size  index_addr
=====================  ====  =========  =========  ==========

``ref index`` points into :attr:`CompiledTrace.ref_names`, the interned
static reference ids (the hint-table keys); :meth:`resolve_hints` turns a
hint table into a list aligned with that table so replay does one list
index instead of one dict lookup per reference.

The on-disk form (:meth:`save`/:meth:`load`) is a small JSON header line
followed by the column bytes in an explicit little-endian fixed-width
encoding (1-byte kinds, 8-byte fields), so files written on one machine
load on any other — a big-endian host byteswaps on save and on load.
:mod:`repro.trace.store` keys such files by trace content identity.

:meth:`columns` exposes the same four columns as cached numpy views (plus
derived index arrays) for the vectorized replay backend
(:mod:`repro.sim.vectorized`); it returns None when numpy is unavailable,
and nothing else in the trace layer depends on numpy.
"""

import json
import sys
from array import array

from repro.trace.events import (
    IndirectPrefetch,
    LoopBound,
    MemRef,
    Ops,
    SetIndirectBase,
)

#: Event-kind codes (the ``kinds`` column).  Loads and stores are distinct
#: kinds so ``is_store`` needs no extra column; every ``kind <= K_STORE``
#: is a memory reference.
K_LOAD = 0
K_STORE = 1
K_OPS = 2
K_BOUND = 3
K_SETBASE = 4
K_INDIRECT = 5

#: Bumped whenever the columnar layout or the byte encoding changes; part
#: of the on-disk header, so stale files from older layouts read as cache
#: misses.  Version 2 switched the column bytes from host byte order to
#: explicit little-endian.
FORMAT_VERSION = 2

_MAGIC = "repro-trace"

#: On-disk element widths, independent of the host's array itemsizes.
_KIND_WIDTH = 1
_FIELD_WIDTH = 8

#: True when this host stores integers big-endian and must byteswap
#: between memory and the little-endian disk form.  Module-level so the
#: cross-endian tests can exercise both paths on any host.
_SWAP = sys.byteorder == "big"


def _column_bytes(arr, width, swap):
    """``arr``'s bytes in little-endian order, ``width`` bytes/element."""
    if arr.itemsize != width:
        raise ValueError(
            "array itemsize %d does not match the %d-byte disk format"
            % (arr.itemsize, width))
    if swap and width > 1:
        swapped = array(arr.typecode, arr)
        swapped.byteswap()
        return swapped.tobytes()
    return arr.tobytes()


def _read_column(fh, typecode, count, width, swap):
    """Read one little-endian column back into a host-order array."""
    col = array(typecode)
    if col.itemsize != width:
        raise ValueError(
            "array itemsize %d does not match the %d-byte disk format"
            % (col.itemsize, width))
    col.frombytes(fh.read(count * width))
    if swap and width > 1:
        col.byteswap()
    return col


class CompiledTrace:
    """One trace, lowered to parallel columns.  Immutable once built."""

    __slots__ = ("kinds", "f0", "f1", "f2", "ref_names", "ref_count",
                 "_cols")

    def __init__(self, kinds, f0, f1, f2, ref_names, ref_count):
        self.kinds = kinds
        self.f0 = f0
        self.f1 = f1
        self.f2 = f2
        self.ref_names = ref_names
        #: Number of memory-reference events (loads + stores).
        self.ref_count = ref_count
        #: Lazily-built :class:`TraceColumns` (numpy views), or None.
        self._cols = None

    def __len__(self):
        return len(self.kinds)

    def __repr__(self):
        return "CompiledTrace(%d events, %d refs, %d ref ids)" % (
            len(self.kinds), self.ref_count, len(self.ref_names)
        )

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, events):
        """Lower an event list (or iterable) into columnar form."""
        kinds = array("b")
        f0 = array("q")
        f1 = array("q")
        f2 = array("q")
        ref_names = []
        intern = {}
        ref_count = 0
        for event in events:
            etype = event.__class__
            if etype is MemRef:
                ref_id = event.ref_id
                idx = intern.get(ref_id)
                if idx is None:
                    idx = intern[ref_id] = len(ref_names)
                    ref_names.append(ref_id)
                kinds.append(K_STORE if event.is_store else K_LOAD)
                f0.append(idx)
                f1.append(event.addr)
                f2.append(event.size)
                ref_count += 1
            elif etype is Ops:
                kinds.append(K_OPS)
                f0.append(event.count)
                f1.append(0)
                f2.append(0)
            elif etype is LoopBound:
                kinds.append(K_BOUND)
                f0.append(event.bound)
                f1.append(0)
                f2.append(0)
            elif etype is SetIndirectBase:
                kinds.append(K_SETBASE)
                f0.append(event.base_addr)
                f1.append(event.elem_size)
                f2.append(0)
            elif etype is IndirectPrefetch:
                kinds.append(K_INDIRECT)
                f0.append(event.base_addr)
                f1.append(event.elem_size)
                f2.append(event.index_addr)
            else:
                raise TypeError("cannot lower trace event %r" % (event,))
        return cls(kinds, f0, f1, f2, ref_names, ref_count)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def events(self):
        """Yield reconstructed event objects, equal to the source stream."""
        ref_names = self.ref_names
        f0, f1, f2 = self.f0, self.f1, self.f2
        for i, kind in enumerate(self.kinds):
            if kind <= K_STORE:
                yield MemRef(ref_names[f0[i]], f1[i], f2[i],
                             is_store=(kind == K_STORE))
            elif kind == K_OPS:
                yield Ops(f0[i])
            elif kind == K_BOUND:
                yield LoopBound(f0[i])
            elif kind == K_SETBASE:
                yield SetIndirectBase(f0[i], f1[i])
            else:
                yield IndirectPrefetch(f0[i], f1[i], f2[i])

    def resolve_hints(self, hint_table):
        """Per-ref-index hint list: ``hints[f0[i]]`` replaces a dict get."""
        if hint_table is None:
            return [None] * len(self.ref_names)
        return [hint_table.get(name) for name in self.ref_names]

    def columns(self):
        """Cached :class:`TraceColumns` numpy views, or None without numpy.

        The views are read-only aliases of the trace's own storage —
        building them copies nothing — plus the event-index arrays the
        vectorized backend's stretch segmentation needs.  Config-dependent
        data (block masks, window-sized batch splits) stays out of the
        cache; see :meth:`TraceColumns.hard_breaks`.
        """
        cols = self._cols
        if cols is None:
            if _np is None:
                return None
            cols = self._cols = TraceColumns(self)
        return cols

    # ------------------------------------------------------------------
    # Disk form
    # ------------------------------------------------------------------
    def save(self, path, _swap=None):
        """Write the trace to ``path`` (header line + little-endian bytes).

        The column bytes are written little-endian at fixed widths
        regardless of the host (``_swap`` overrides the host-order probe
        for the cross-endian tests), so the trace store's files are
        portable across machines.
        """
        if _swap is None:
            _swap = _SWAP
        header = {
            "magic": _MAGIC,
            "format": FORMAT_VERSION,
            "endian": "little",
            "widths": [_KIND_WIDTH, _FIELD_WIDTH],
            "events": len(self.kinds),
            "refs": self.ref_count,
            "ref_names": self.ref_names,
        }
        with open(path, "wb") as fh:
            fh.write(json.dumps(header).encode("utf-8"))
            fh.write(b"\n")
            fh.write(_column_bytes(self.kinds, _KIND_WIDTH, _swap))
            fh.write(_column_bytes(self.f0, _FIELD_WIDTH, _swap))
            fh.write(_column_bytes(self.f1, _FIELD_WIDTH, _swap))
            fh.write(_column_bytes(self.f2, _FIELD_WIDTH, _swap))

    @classmethod
    def load(cls, path, _swap=None):
        """Read a trace written by :meth:`save`.

        Raises ``ValueError`` on any malformed or stale-format file (the
        trace store turns that into a cache miss).  A big-endian host
        byteswaps the little-endian column bytes back to memory order
        (``_swap`` overrides the probe for the cross-endian tests).
        """
        if _swap is None:
            _swap = _SWAP
        with open(path, "rb") as fh:
            header_line = fh.readline()
            header = json.loads(header_line.decode("utf-8"))
            if header.get("magic") != _MAGIC:
                raise ValueError("not a compiled trace: %s" % path)
            if header.get("format") != FORMAT_VERSION:
                raise ValueError("stale trace format in %s" % path)
            if header.get("endian") != "little":
                raise ValueError("unknown byte order in %s" % path)
            if header.get("widths") != [_KIND_WIDTH, _FIELD_WIDTH]:
                raise ValueError("unknown element widths in %s" % path)
            count = header["events"]
            kinds = _read_column(fh, "b", count, _KIND_WIDTH, _swap)
            columns = [
                _read_column(fh, "q", count, _FIELD_WIDTH, _swap)
                for _ in range(3)
            ]
        if len(kinds) != count or any(len(c) != count for c in columns):
            raise ValueError("truncated compiled trace: %s" % path)
        return cls(kinds, columns[0], columns[1], columns[2],
                   header["ref_names"], header["refs"])


try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None


class TraceColumns:
    """Numpy views + index arrays over one :class:`CompiledTrace`.

    Everything here is config-independent (no block masks, no machine
    geometry), so one instance is shared by every run replaying the trace.
    The views alias the trace's ``array`` storage and are read-only.
    """

    __slots__ = ("kinds", "f0", "f1", "f2", "is_ref", "ref_pos", "dir_pos",
                 "counts", "ecum", "_breaks", "_bars")

    def __init__(self, trace):
        self.kinds = _np.frombuffer(trace.kinds, dtype=_np.int8)
        self.f0 = _np.frombuffer(trace.f0, dtype=_np.int64)
        self.f1 = _np.frombuffer(trace.f1, dtype=_np.int64)
        self.f2 = _np.frombuffer(trace.f2, dtype=_np.int64)
        #: Per-event masks/indices for stretch segmentation.
        self.is_ref = self.kinds <= K_STORE
        self.ref_pos = _np.nonzero(self.is_ref)[0]
        self.dir_pos = _np.nonzero(self.kinds >= K_BOUND)[0]
        #: Elementary instruction issues per event (Ops expand to their
        #: count; refs and directives issue one instruction each).
        self.counts = _np.where(self.kinds == K_OPS, self.f0, 1)
        #: Prefix sum of ``counts`` with a leading 0: the elementary-issue
        #: offset of event ``i`` is ``ecum[i]``.
        self.ecum = _np.concatenate(
            (_np.zeros(1, dtype=_np.int64), _np.cumsum(self.counts)))
        self._breaks = {}
        self._bars = {}

    def hard_breaks(self, window):
        """Sorted event positions a batched stretch can never cross.

        Directives (they message the prefetch engine) and Ops batches in
        the awkward ``32 < count < window`` band (they refill only part of
        the issue ring, so the ring state after them is not a closed
        form).  Cached per window size.
        """
        breaks = self._breaks.get(window)
        if breaks is None:
            partial = (self.kinds == K_OPS) & (self.f0 > 32) \
                & (self.f0 < window)
            breaks = _np.union1d(self.dir_pos, _np.nonzero(partial)[0])
            self._breaks[window] = breaks
        return breaks

    def barriers(self, window):
        """Sorted positions of full-ring-reset Ops batches.

        An Ops batch of at least ``window`` instructions refills the whole
        issue ring with one value (see ``Core._issue_ops``), so the ring
        state after it is a closed form a batched stretch can carry
        through.  Cached per window size.
        """
        bars = self._bars.get(window)
        if bars is None:
            mask = (self.kinds == K_OPS) & (self.f0 >= window) \
                & (self.f0 > 32)
            bars = _np.nonzero(mask)[0]
            self._bars[window] = bars
        return bars
