"""Trace event records.

The interpreter turns an IR program into a stream of these events; the
simulator replays them against the CPU model and memory hierarchy.

``MemRef``
    One dynamic load or store, tagged with the static reference id that
    carries its compiler hints.
``Ops``
    A count of non-memory instructions executed since the previous event
    (address arithmetic, branches, ALU work).  The CPU model retires these
    at the machine's issue width; they make IPC and prefetch timeliness
    meaningful.
``LoopBound``
    The special instruction of Section 3.3.2: conveys the enclosing loop's
    upper bound to the hardware so variable-size region prefetching can
    compute ``bound << coeff``.
``IndirectPrefetch``
    The explicit indirect prefetch instruction of Section 3.3.3: base
    address of ``a``, element size, and the address of the index block
    ``&b[i]``.  One instruction generates up to 16 prefetches.
"""


class MemRef:
    """One dynamic memory reference."""

    __slots__ = ("ref_id", "addr", "size", "is_store")

    def __init__(self, ref_id, addr, size=8, is_store=False):
        self.ref_id = ref_id
        self.addr = addr
        self.size = size
        self.is_store = is_store

    def __repr__(self):
        op = "ST" if self.is_store else "LD"
        return "%s %s @0x%x" % (op, self.ref_id, self.addr)


class Ops:
    """``count`` non-memory instructions between memory references."""

    __slots__ = ("count",)

    def __init__(self, count):
        self.count = count

    def __repr__(self):
        return "Ops(%d)" % self.count


class LoopBound:
    """Software directive: the current loop's trip count for size hints."""

    __slots__ = ("bound",)

    def __init__(self, bound):
        self.bound = bound

    def __repr__(self):
        return "LoopBound(%d)" % self.bound


class IndirectPrefetch:
    """Software directive: indirect prefetch instruction for ``a[b[i]]``."""

    __slots__ = ("base_addr", "elem_size", "index_addr")

    def __init__(self, base_addr, elem_size, index_addr):
        self.base_addr = base_addr
        self.elem_size = elem_size
        self.index_addr = index_addr

    def __repr__(self):
        return "IndirectPrefetch(base=0x%x, elem=%d, idx=0x%x)" % (
            self.base_addr,
            self.elem_size,
            self.index_addr,
        )


class SetIndirectBase:
    """Software directive for the alternate indirect encoding: set the
    prefetch engine's (base address, element size) register pair before
    a loop whose index loads carry the ``indirect`` hint bit."""

    __slots__ = ("base_addr", "elem_size")

    def __init__(self, base_addr, elem_size):
        self.base_addr = base_addr
        self.elem_size = elem_size

    def __repr__(self):
        return "SetIndirectBase(base=0x%x, elem=%d)" % (
            self.base_addr,
            self.elem_size,
        )
