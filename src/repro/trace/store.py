"""Trace persistence: save an event stream to disk and replay it.

Useful for decoupling trace generation from simulation — capture one
(deterministic) trace and sweep hardware parameters over it without
re-interpreting the program — and for inspecting what a workload
actually does.

Format: one event per line.

====  =======================================  =====================
tag   fields                                   event
====  =======================================  =====================
L/S   ref_id addr size                         load / store
O     count                                    non-memory ops
B     bound                                    LoopBound directive
I     base_addr elem_size index_addr           IndirectPrefetch
====  =======================================  =====================

Addresses are hex; the file is plain text so traces diff cleanly.
Note that a trace bakes in its software directives: a trace captured
with a GRP compile result contains the GRP binary's directives, one
captured without is the unhinted binary.
"""

from repro.trace.events import IndirectPrefetch, LoopBound, MemRef, Ops


def save_trace(events, path):
    """Write an event stream to ``path``; returns the event count."""
    count = 0
    with open(path, "w") as fh:
        for event in events:
            fh.write(format_event(event))
            fh.write("\n")
            count += 1
    return count


def format_event(event):
    """Serialize one event to its line form."""
    if isinstance(event, MemRef):
        tag = "S" if event.is_store else "L"
        return "%s %s %x %d" % (tag, event.ref_id, event.addr, event.size)
    if isinstance(event, Ops):
        return "O %d" % event.count
    if isinstance(event, LoopBound):
        return "B %d" % event.bound
    if isinstance(event, IndirectPrefetch):
        return "I %x %d %x" % (
            event.base_addr, event.elem_size, event.index_addr)
    raise TypeError("unknown trace event %r" % event)


def parse_event(line):
    """Parse one line back into an event."""
    parts = line.split()
    tag = parts[0]
    if tag in ("L", "S"):
        return MemRef(parts[1], int(parts[2], 16), int(parts[3]),
                      is_store=(tag == "S"))
    if tag == "O":
        return Ops(int(parts[1]))
    if tag == "B":
        return LoopBound(int(parts[1]))
    if tag == "I":
        return IndirectPrefetch(int(parts[1], 16), int(parts[2]),
                                int(parts[3], 16))
    raise ValueError("bad trace line: %r" % line)


def load_trace(path):
    """Yield events from a trace file."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line and not line.startswith("#"):
                yield parse_event(line)
