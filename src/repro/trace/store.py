"""Trace persistence and the compiled-trace store.

Two layers live here:

**Text traces** (:func:`save_trace` / :func:`load_trace`) — one event per
line, human-readable, diff-friendly.  Useful for decoupling trace
generation from simulation and for inspecting what a workload does.

Format: one event per line.

====  =======================================  =====================
tag   fields                                   event
====  =======================================  =====================
L/S   ref_id addr size                         load / store
O     count                                    non-memory ops
B     bound                                    LoopBound directive
X     base_addr elem_size                      SetIndirectBase
I     base_addr elem_size index_addr           IndirectPrefetch
====  =======================================  =====================

Addresses are hex.  Note that a trace bakes in its software directives: a
trace captured with a GRP compile result contains the GRP binary's
directives, one captured without is the unhinted binary.

**The compiled-trace store** (:class:`TraceStore` / :class:`TraceKey`) —
a content-keyed cache of :class:`~repro.trace.compiled.CompiledTrace`
objects.  The trace a run consumes is fully determined by the
:class:`TraceKey` tuple (workload, scale, seed, reference budget, block
size, hint signature); schemes that share a key — every unhinted scheme,
for one — share a single trace generation per process, and the on-disk
layer shares it across processes and invocations.  Entries are salted
with the package version and the columnar format version, so either bump
invalidates every cached trace at once.

The on-disk layer lives under ``<dir>/`` with one ``.trace`` file per
key.  It is controlled by the ``REPRO_TRACE_CACHE`` environment variable:
unset, traces go to ``.repro-cache/traces`` (sharing the result cache's
root); a path names another directory; ``off`` (or ``0``) disables disk
persistence entirely, leaving the bounded in-process cache — which is
what ``--no-cache`` runs use, so "cold cache" timings still pay every
trace generation at least once per process.
"""

import hashlib
import json
import os
import pathlib
import tempfile
from collections import OrderedDict
from dataclasses import dataclass

from repro.trace.compiled import FORMAT_VERSION, CompiledTrace
from repro.trace.events import (
    IndirectPrefetch,
    LoopBound,
    MemRef,
    Ops,
    SetIndirectBase,
)

#: Environment variable controlling the on-disk trace cache: a directory
#: path, or ``off`` / ``0`` to disable disk persistence.
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"

#: Default on-disk location (beside the result cache's entries).
DEFAULT_TRACE_DIR = os.path.join(".repro-cache", "traces")

#: In-process cache bound (traces, LRU).  At the default 40k-reference
#: budget a trace is a few MB, so the resident set stays modest.
DEFAULT_MEMORY_TRACES = 32


def save_trace(events, path):
    """Write an event stream to ``path``; returns the event count."""
    count = 0
    with open(path, "w") as fh:
        for event in events:
            fh.write(format_event(event))
            fh.write("\n")
            count += 1
    return count


def format_event(event):
    """Serialize one event to its line form."""
    if isinstance(event, MemRef):
        tag = "S" if event.is_store else "L"
        return "%s %s %x %d" % (tag, event.ref_id, event.addr, event.size)
    if isinstance(event, Ops):
        return "O %d" % event.count
    if isinstance(event, LoopBound):
        return "B %d" % event.bound
    if isinstance(event, SetIndirectBase):
        return "X %x %d" % (event.base_addr, event.elem_size)
    if isinstance(event, IndirectPrefetch):
        return "I %x %d %x" % (
            event.base_addr, event.elem_size, event.index_addr)
    raise TypeError("unknown trace event %r" % event)


def parse_event(line):
    """Parse one line back into an event."""
    parts = line.split()
    tag = parts[0]
    if tag in ("L", "S"):
        return MemRef(parts[1], int(parts[2], 16), int(parts[3]),
                      is_store=(tag == "S"))
    if tag == "O":
        return Ops(int(parts[1]))
    if tag == "B":
        return LoopBound(int(parts[1]))
    if tag == "X":
        return SetIndirectBase(int(parts[1], 16), int(parts[2]))
    if tag == "I":
        return IndirectPrefetch(int(parts[1], 16), int(parts[2]),
                                int(parts[3], 16))
    raise ValueError("bad trace line: %r" % line)


def load_trace(path):
    """Yield events from a trace file."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line and not line.startswith("#"):
                yield parse_event(line)


# ----------------------------------------------------------------------
# Compiled-trace store
# ----------------------------------------------------------------------

def _version_salt():
    import repro  # late: repro's package init imports repro.sim
    return "repro-%s/trace-%d" % (repro.__version__, FORMAT_VERSION)


@dataclass(frozen=True)
class TraceKey:
    """Everything that determines one interpreter event stream.

    ``hint_sig`` is ``None`` for unhinted binaries; for hinted ones it is
    the tuple of compiler inputs that shape the emitted directives —
    ``(policy, variable_regions, indirect_mode, l2_size)`` — so two
    schemes whose binaries would be identical share one trace.

    ``base`` is the workload's address-space base.  Single-core runs
    build at 0 (the default, digest-compatible in spirit with prior
    keys); multi-core co-runs build core ``i`` at ``i << 36``, and every
    address in the trace shifts with it — two bases are two different
    event streams and must never alias in the store.
    """

    workload: str
    scale: float
    seed: int
    limit: int
    block_size: int
    hint_sig: tuple = None
    base: int = 0

    def digest(self):
        """Content hash naming this key's on-disk entry."""
        payload = json.dumps(
            [self.workload, self.scale, self.seed, self.limit,
             self.block_size, list(self.hint_sig) if self.hint_sig else None,
             self.base, _version_salt()],
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def hint_signature(policy, variable_regions, indirect_mode, l2_size):
    """The :class:`TraceKey` hint signature for a hinted compile."""
    return (policy, bool(variable_regions), indirect_mode, l2_size)


class TraceStore:
    """Bounded in-process + optional on-disk cache of compiled traces."""

    def __init__(self, disk_dir=None, max_memory_traces=DEFAULT_MEMORY_TRACES):
        """``disk_dir``: directory for ``.trace`` files, or ``None`` to
        resolve from ``$REPRO_TRACE_CACHE`` (``off`` disables disk), or
        ``False`` to force memory-only."""
        if disk_dir is None:
            env = os.environ.get(TRACE_CACHE_ENV, "")
            if env.lower() in ("off", "0", "no", "false"):
                disk_dir = False
            else:
                disk_dir = env or DEFAULT_TRACE_DIR
        self.disk_dir = pathlib.Path(disk_dir) if disk_dir else None
        self.max_memory_traces = max_memory_traces
        self._memory = OrderedDict()  # TraceKey -> CompiledTrace (LRU)
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def path_for(self, key):
        """The disk entry a key maps to (None when disk is disabled)."""
        if self.disk_dir is None:
            return None
        return self.disk_dir / ("%s.trace" % key.digest())

    def get(self, key):
        """Return the cached trace for ``key``, or None on a miss."""
        trace = self._memory.get(key)
        if trace is not None:
            self._memory.move_to_end(key)
            self.memory_hits += 1
            return trace
        path = self.path_for(key)
        if path is not None:
            try:
                trace = CompiledTrace.load(path)
            except (OSError, ValueError, KeyError):
                trace = None
            if trace is not None:
                self._remember(key, trace)
                self.disk_hits += 1
                return trace
        self.misses += 1
        return None

    def put(self, key, trace):
        """Store one trace in memory and (when enabled) on disk."""
        self._remember(key, trace)
        path = self.path_for(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            os.close(fd)
            trace.save(tmp)
            os.replace(tmp, str(path))
        except OSError:
            # Disk persistence is best-effort; the in-memory entry stands.
            try:
                os.unlink(tmp)
            except (OSError, UnboundLocalError):
                pass

    def get_or_build(self, key, builder):
        """Fetch ``key``, or build it with ``builder()`` and store it."""
        trace = self.get(key)
        if trace is None:
            trace = builder()
            self.put(key, trace)
        return trace

    # ------------------------------------------------------------------
    def _remember(self, key, trace):
        self._memory[key] = trace
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_traces:
            self._memory.popitem(last=False)

    def clear_memory(self):
        """Drop every in-process entry (disk entries are untouched)."""
        self._memory.clear()

    def __len__(self):
        return len(self._memory)

    def __repr__(self):
        return ("TraceStore(%d in memory, disk=%s, %d/%d/%d "
                "mem-hit/disk-hit/miss)" % (
                    len(self._memory),
                    str(self.disk_dir) if self.disk_dir else "off",
                    self.memory_hits, self.disk_hits, self.misses,
                ))


_default_store = None


def default_store():
    """The process-wide store :func:`repro.sim.runner.execute` uses.

    Created lazily so ``$REPRO_TRACE_CACHE`` set before first use (e.g.
    by ``--no-cache``) takes effect; :func:`reset_default_store` rebuilds
    it after later environment changes.
    """
    global _default_store
    if _default_store is None:
        _default_store = TraceStore()
    return _default_store


def reset_default_store():
    """Discard the process-wide store (it is rebuilt on next use)."""
    global _default_store
    _default_store = None
