"""The simulator-wide metrics collector.

One :class:`MetricsCollector` rides along with every
:class:`~repro.mem.hierarchy.Hierarchy` and turns the raw event stream
into the observability quantities the paper's evaluation is built on:

* **Prefetch timeliness** — every prefetched block that the L2 installs is
  classified exactly once: *timely* (first demand touch after its data
  was ready — the full miss latency was hidden), *late* (first touch
  while the fill was still in flight — only part of the latency hidden),
  *useless-evicted* (left the cache without ever being referenced), or
  *never-referenced* (still resident and untouched at simulation end).
  ``timely + late + useless_evicted + never_referenced == prefetch_fills``
  holds by construction.
* **Pollution** — demand misses to blocks that a prefetch fill evicted
  (the shadow-tag victim set lives in :mod:`repro.mem.cache`); the
  collector surfaces the counters and traces the events.
* **Interval time series** — DRAM channel busy cycles (cumulative), MSHR
  occupancy and prefetch-queue depth (gauges), sampled on existing access
  boundaries through a bounded :class:`~repro.metrics.timeseries.IntervalSeries`.
* **Structured tracing** — when a :class:`~repro.metrics.sink.TraceSink`
  is installed, per-event JSONL records flow out.  Without a sink the
  cache-level observer hooks are never installed and the remaining hot
  path is one comparison per access, so disabled tracing is free.

The collector's :meth:`snapshot` is plain data and becomes the
``metrics`` field of :class:`~repro.sim.stats.SimStats`, so every number
here round-trips through JSON, the batch worker pool, and the persistent
result cache.
"""

from repro.metrics.timeseries import IntervalSeries

#: Columns of the interval time series, in stored order.  ``dram_busy``
#: is cumulative (difference adjacent points for per-interval rates);
#: the other two are point-in-time gauges.
SAMPLE_COLUMNS = ("dram_busy", "mshr_occupancy", "queue_depth")


class MetricsCollector:
    """Observes one hierarchy; produces the run's metrics snapshot."""

    def __init__(self, sink=None, sample_interval=1024, max_points=512):
        self.sink = sink
        self.series = IntervalSeries(
            SAMPLE_COLUMNS, interval=sample_interval, max_points=max_points
        )
        self.timely_prefetch_uses = 0
        self.late_prefetch_uses = 0
        self.max_mshr_occupancy = 0
        self.max_queue_depth = 0
        self._hierarchy = None
        self._now = 0.0  # timestamp for cache-level observer events
        self._final = None

    def attach(self, hierarchy):
        """Wire the collector to a hierarchy (called by the hierarchy).

        The always-on part costs one comparison per access; the L2
        observer and controller hooks — which fire per cache/DRAM event —
        are installed only when a trace sink is present.
        """
        self._hierarchy = hierarchy
        if self.sink is not None:
            hierarchy.l2.observer = self
            hierarchy.controller.metrics = self

    # ------------------------------------------------------------------
    # Hot-path hooks (called by the hierarchy on every run)
    # ------------------------------------------------------------------
    def tick(self, now):
        """Advance the interval sampler; called once per memory access."""
        self._now = now
        if not self.series.due(now):
            return
        hier = self._hierarchy
        dram_busy = sum(hier.dram.channel_busy_cycles)
        mshr = hier.l2_mshrs.outstanding(now)
        queue = self.queue_depth()
        if mshr > self.max_mshr_occupancy:
            self.max_mshr_occupancy = mshr
        if queue > self.max_queue_depth:
            self.max_queue_depth = queue
        self.series.record(now, (dram_busy, mshr, queue))
        if self.sink is not None:
            self.sink.emit("sample", now, dram_busy=dram_busy,
                           mshr=mshr, queue=queue)

    def on_prefetch_first_use(self, block, late, now):
        """First demand touch of a prefetched L2 line (from the hierarchy)."""
        if late:
            self.late_prefetch_uses += 1
        else:
            self.timely_prefetch_uses += 1
        if self.sink is not None:
            self.sink.emit("pf_use", now, block=block, late=late)

    def on_prefetch_fill(self, request, ready):
        """A prefetched line was installed (data ready at ``ready``)."""
        self._now = ready
        if self.sink is not None:
            self.sink.emit("pf_fill", ready, block=request.block,
                           depth=request.depth)

    # ------------------------------------------------------------------
    # Controller hooks (installed only when tracing)
    # ------------------------------------------------------------------
    def on_prefetch_issue(self, request, start, ready):
        self.sink.emit("pf_issue", start, block=request.block,
                       ready=ready, depth=request.depth)

    def on_prefetch_dropped(self, request, now):
        self.sink.emit("pf_drop", now, block=request.block)

    # ------------------------------------------------------------------
    # Cache observer hooks (installed on the L2 only when tracing)
    # ------------------------------------------------------------------
    def on_fill(self, cache, block, prefetched):
        if not prefetched:
            self.sink.emit("fill", self._now, block=block)

    def on_evict(self, cache, block, prefetched, referenced, by_prefetch):
        self.sink.emit("evict", self._now, block=block,
                       prefetched=prefetched, referenced=referenced,
                       by_prefetch=by_prefetch)

    def on_demand_hit(self, cache, block, first_use):
        """Present for protocol completeness; pf_use carries the signal."""

    def on_demand_miss(self, cache, block, polluted):
        self.sink.emit("l2_miss", self._now, block=block, polluted=polluted)

    # ------------------------------------------------------------------
    def queue_depth(self):
        """Depth of the prefetcher's region queue (0 when there is none)."""
        prefetcher = self._hierarchy.prefetcher
        queue = getattr(prefetcher, "queue", None)
        return len(queue) if queue is not None else 0

    # ------------------------------------------------------------------
    def finalize(self, hierarchy, now):
        """Fold in end-of-run state; called by ``Hierarchy.finish``.

        Cache/MSHR counters go through the hierarchy's per-core stats
        views, so in a multi-core co-run each collector reports its own
        core's slice.  The DRAM channel busy/utilization series stays
        shared-level deliberately: channel occupancy is a property of the
        contended resource, and the per-core traffic split lives in the
        co-run result's shared section instead.
        """
        l2stats = hierarchy.l2_stats_view()
        mshrs = hierarchy.mshr_stats_view()
        cycles = max(float(now), 1.0)
        busy = [float(b) for b in hierarchy.dram.channel_busy_cycles]
        utilization = [min(1.0, b / cycles) for b in busy]
        queue = getattr(hierarchy.prefetcher, "queue", None)
        self._final = {
            "cycles": float(now),
            "timeliness": {
                "prefetch_fills": l2stats.prefetch_fills,
                "timely": self.timely_prefetch_uses,
                "late": self.late_prefetch_uses,
                "useless_evicted": l2stats.useless_evicted_prefetches,
                "never_referenced": hierarchy.resident_unreferenced_view(),
            },
            "pollution": {
                "pollution_misses": l2stats.pollution_misses,
                "prefetch_evictions": l2stats.prefetch_evictions,
            },
            "dram": {
                "channel_busy_cycles": busy,
                "channel_utilization": utilization,
                "mean_channel_utilization": (
                    sum(utilization) / len(utilization)
                    if utilization else 0.0
                ),
            },
            "mshr": {
                "demand_stalls": mshrs.stalls,
                "merges": mshrs.merges,
                "max_sampled_occupancy": self.max_mshr_occupancy,
            },
            "queue": {
                "max_sampled_depth": self.max_queue_depth,
                "region_splits": (
                    queue.region_splits if queue is not None else 0
                ),
            },
            "timeseries": self.series.snapshot(),
        }
        if self.sink is not None:
            self.sink.emit("summary", now, metrics=self._final)
        return self._final

    def snapshot(self):
        """The run's metrics as plain data ({} before finalize)."""
        return self._final if self._final is not None else {}
