"""repro.metrics — the simulator-wide observability layer.

The paper's headline claims are *observability* claims: GRP keeps SRP's
speedup while cutting its ~180% traffic overhead to ~23%, which can only
be verified by measuring prefetch timeliness, cache pollution, and
memory-channel utilization per run (the quantities behind Tables 5–6 and
Figure 9).  This package computes them for every simulation:

* :class:`~repro.metrics.collector.MetricsCollector` — per-run timeliness
  classification (timely / late / useless-evicted / never-referenced),
  pollution and utilization summaries, and interval time-series sampling;
* :class:`~repro.metrics.timeseries.IntervalSeries` — the bounded
  streaming sampler behind the time series;
* :class:`~repro.metrics.sink.TraceSink` — opt-in structured JSONL event
  tracing (zero overhead when disabled).

Every metric lands in ``SimStats.metrics`` and round-trips losslessly
through JSON, the parallel batch runner, and the persistent result cache.
"""

from repro.metrics.collector import SAMPLE_COLUMNS, MetricsCollector
from repro.metrics.sink import TraceSink, read_trace
from repro.metrics.timeseries import IntervalSeries

__all__ = [
    "MetricsCollector",
    "IntervalSeries",
    "TraceSink",
    "read_trace",
    "SAMPLE_COLUMNS",
]
