"""Bounded streaming time series for simulator-wide interval metrics.

The observability layer samples a handful of machine-state columns (DRAM
channel busy cycles, MSHR occupancy, prefetch-queue depth) on existing
event boundaries — no extra simulator events are scheduled.  Because a
run's length is unknown up-front, :class:`IntervalSeries` keeps a *hard
bound* on stored points: when the buffer fills, every other point is
dropped and the sampling interval doubles (classic streaming decimation).
The series therefore costs O(max_points) memory for any run length, and
its output resolution degrades gracefully instead of truncating the tail.

Column conventions
------------------
* **Cumulative** columns (e.g. DRAM busy cycles) store running totals, so
  decimation is lossless for them — consumers difference adjacent points
  to recover per-interval rates.
* **Gauge** columns (MSHR occupancy, queue depth) store point samples;
  decimation subsamples them.

The snapshot form is plain data (lists of numbers) so it rides inside
``SimStats.to_dict`` through JSON, the batch worker pool, and the
persistent result cache without special handling.
"""


class IntervalSeries:
    """A fixed-memory, interval-sampled time series."""

    def __init__(self, columns, interval=1024, max_points=512):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        if max_points < 4:
            raise ValueError("max_points must be at least 4")
        self.columns = tuple(columns)
        self.interval = interval
        self.max_points = max_points
        self.points = []  # [cycle, col0, col1, ...] per sample
        self._next = interval

    def __len__(self):
        return len(self.points)

    def due(self, now):
        """True when ``now`` has crossed the next sampling boundary.

        This is the only call made on the hot path between samples: one
        float comparison.
        """
        return now >= self._next

    def record(self, now, values):
        """Store one sample row; advances the sampling boundary.

        Callers guard with :meth:`due` so ``values`` (which may be
        expensive to gather) is only computed when a sample is actually
        taken.
        """
        self.points.append([now] + list(values))
        self._next = now + self.interval
        if len(self.points) >= self.max_points:
            self._decimate()

    def _decimate(self):
        """Halve resolution: keep every other point, double the interval."""
        self.points = self.points[1::2]
        self.interval *= 2

    # ------------------------------------------------------------------
    def snapshot(self):
        """Plain-data form: JSON-safe, loss-free for what was retained."""
        return {
            "columns": list(self.columns),
            "interval": self.interval,
            "points": [list(point) for point in self.points],
        }
