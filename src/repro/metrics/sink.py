"""Structured event tracing: a pluggable JSONL sink.

A :class:`TraceSink` receives one call per traced simulator event and
writes it as a single JSON line — the format every timeline viewer and
ad-hoc ``jq``/pandas analysis can consume.  Tracing is strictly opt-in:
when no sink is installed the emit sites reduce to one ``is None`` check
(and the cache-level observer hooks are not installed at all), so the
disabled path costs nothing measurable.

Event vocabulary (the ``ev`` field):

==============  =====================================================
``pf_issue``    prefetch sent to DRAM (block, issue cycle, ready cycle)
``pf_fill``     prefetched line installed in the L2
``pf_drop``     candidate dropped because its target was resident
``pf_use``      first demand touch of a prefetched line (timely/late)
``l2_miss``     demand L2 miss (with pollution attribution)
``evict``       L2 eviction (victim flags; whether a prefetch displaced it)
``sample``      one interval-metrics sample row
``summary``     the final metrics snapshot, emitted at close
==============  =====================================================

All cycle values are emitted as numbers exactly as the simulator holds
them (floats from the core clock, ints from DRAM timing).
"""

import json


class TraceSink:
    """Writes structured simulator events as JSON lines."""

    def __init__(self, path):
        self.path = path
        self._handle = open(path, "w")
        self.events_written = 0

    def emit(self, event, now, **fields):
        """Write one event line: ``{"ev": ..., "t": ..., **fields}``."""
        record = {"ev": event, "t": now}
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=True))
        self._handle.write("\n")
        self.events_written += 1

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        return "TraceSink(%r, %d events)" % (self.path, self.events_written)


def read_trace(path):
    """Load a JSONL trace back into a list of event dicts (for tests
    and offline analysis)."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
