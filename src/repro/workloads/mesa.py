"""177.mesa — software OpenGL (C, FP).

mesa has the lowest L2 miss rate of the memory-bound set (9.3%) and a
very particular shape: the rasterizer processes **short runs** of vertex
and span data — singly nested loops with small trip counts, each living
in its own function (the driver loop is a call site, so the paper's
intra-procedural analysis sees only the flat span loop).  This is why
mesa is one of the three benchmarks where variable-size regions matter
(Table 4: GRP/Var 1.11x traffic vs 6.55x for GRP/Fix, with 90.3% of
variable regions being just 2 blocks): ``bound << coeff`` tells the
hardware a 4 KB region is pointless for a 12-element span.

Scattered framebuffer writes and texel lookups are compiler-opaque, and
a vertex list walk supplies the pointer-hint population of Table 3.
"""

import random

from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Compute,
    ForLoop,
    Opaque,
    PointerVar,
    Program,
    PtrChase,
    PtrRef,
    Var,
    WhileLoop,
)
from repro.compiler.symbols import StructDecl, Sym
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import build_linked_list, materialize


@register
class Mesa(Workload):
    """Synthetic stand-in for 177.mesa — software OpenGL (C, FP)."""

    name = "mesa"
    category = "fp"
    language = "c"
    default_refs = 120_000
    ops_scale = 319.1

    def build(self, space, scale=1.0):
        span_len = 12
        n_spans = max(768, int(1024 * scale))
        frame_elems = 1 << 16
        tex_elems = 1 << 14
        rng = random.Random(5)

        spans = ArrayDecl("spans", 8, [n_spans * span_len], storage="heap")
        frame = ArrayDecl("frame", 8, [frame_elems], storage="heap")
        texture = ArrayDecl("texture", 8, [tex_elems], storage="heap")
        for arr in (spans, frame, texture):
            materialize(space, arr)

        vertex = StructDecl("vertex_t")
        vertex.add_scalar("x", 8)
        vertex.add_scalar("y", 8)
        vertex.add_scalar("color", 8)
        vertex.add_pointer("next", target="vertex_t")
        head = build_linked_list(space, vertex, 2048, layout="sequential")

        starts = [rng.randrange(0, frame_elems - span_len)
                  for _ in range(1024)]

        def scatter(env, _rng):
            return starts[env["s"] % len(starts)] + env["i"]

        def texel(env, _rng):
            return (env["s"] * 997 + env["i"] * 3) % tex_elems

        i, s, t = Var("i"), Var("s"), Var("t")
        v = PointerVar("v", struct="vertex_t")

        # The span function: a singly nested short loop (the driver loop
        # is a call boundary).  spans[] is spatial with a known small
        # bound; frame/texture are opaque scatters GRP will not prefetch.
        span_fn = ForLoop(i, 0, span_len, [
            ArrayRef(spans, [Affine({s: span_len, i: 1})]),
            ArrayRef(frame, [Opaque(scatter, "span scatter")],
                     is_store=True),
            ArrayRef(texture, [Opaque(texel, "texel lookup")]),
            Compute(8),
        ])
        # Vertex transform: a short list walk per batch (pointer hints).
        vertex_walk = WhileLoop(Sym("verts_per_batch"), [
            PtrRef(v, field=vertex.field("x")),
            PtrRef(v, field=vertex.field("color")),
            PtrChase(v, vertex.field("next")),
            Compute(10),
        ])
        body = ForLoop(t, 0, 64, [
            ForLoop(s, 0, n_spans, [span_fn], scope_boundary=True),
            vertex_walk,
        ])
        program = Program(
            "mesa", [body], bindings={"verts_per_batch": 256}
        )
        return Built(program, pointer_bindings={"v": head})
