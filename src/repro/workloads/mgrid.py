"""172.mgrid — multigrid solver (Fortran, FP).

3-D 27-point-ish stencils over column-major grids: the innermost (first)
index is unit stride, while the neighbour accesses in j and k contribute
several parallel streams offset by a row and a plane.  Table 3 gives
mgrid the highest static hint ratio (73.9%) — nearly every reference in
the kernels is spatial — and Table 5 shows ~86% coverage for SRP/GRP
with accuracy around 81%.
"""

from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Compute,
    ForLoop,
    Program,
    Var,
)
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import materialize


@register
class Mgrid(Workload):
    """Synthetic stand-in for 172.mgrid — multigrid solver (Fortran, FP)."""

    name = "mgrid"
    category = "fp"
    language = "fortran"
    default_refs = 150_000
    ops_scale = 5.7

    def build(self, space, scale=1.0):
        n = max(20, int(24 * scale))
        u = ArrayDecl("u", 8, [n, n, n], layout="col")
        v = ArrayDecl("v", 8, [n, n, n], layout="col")
        r = ArrayDecl("r", 8, [n, n, n], layout="col")
        for arr in (u, v, r):
            materialize(space, arr)

        i, j, k, t = Var("i"), Var("j"), Var("k"), Var("t")
        ai, aj, ak = Affine.of(i), Affine.of(j), Affine.of(k)
        ai1 = Affine.of(i, const=1)
        aim1 = Affine.of(i, const=-1)
        aj1 = Affine.of(j, const=1)
        ak1 = Affine.of(k, const=1)

        # resid: r = v - A*u with neighbour reads in all three dims.
        resid = ForLoop(k, 1, n - 1, [
            ForLoop(j, 1, n - 1, [
                ForLoop(i, 1, n - 1, [
                    ArrayRef(u, [ai, aj, ak]),
                    ArrayRef(u, [ai1, aj, ak]),
                    ArrayRef(u, [aim1, aj, ak]),
                    ArrayRef(u, [ai, aj1, ak]),
                    ArrayRef(u, [ai, aj, ak1]),
                    ArrayRef(v, [ai, aj, ak]),
                    ArrayRef(r, [ai, aj, ak], is_store=True),
                    Compute(9),
                ]),
            ]),
        ])
        # psinv: smoothing sweep reading the residual.
        psinv = ForLoop(k, 1, n - 1, [
            ForLoop(j, 1, n - 1, [
                ForLoop(i, 1, n - 1, [
                    ArrayRef(r, [ai, aj, ak]),
                    ArrayRef(r, [ai1, aj, ak]),
                    ArrayRef(u, [ai, aj, ak], is_store=True),
                    Compute(6),
                ]),
            ]),
        ])
        body = ForLoop(t, 0, 6, [resid, psinv])
        return Built(Program("mgrid", [body]))
