"""175.vpr — FPGA place & route (C, integer, indirect-heavy).

vpr's misses come from indirect array references ``a[b[i]]`` whose index
values happen to be **spatially clustered** (the placement cost loops walk
nets whose pins sit near each other).  That is why, in the paper, SRP
performs as well as GRP on vpr — but with ~50% extra traffic — while
GRP's indirect prefetch instructions achieve the coverage cheaply.
"""

import random

from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Compute,
    ForLoop,
    IndexLoad,
    Program,
    Var,
)
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import materialize, store_index_array


@register
class Vpr(Workload):
    """Synthetic stand-in for 175.vpr — FPGA place & route (C, integer, indirect-heavy)."""

    name = "vpr"
    category = "int"
    language = "c"
    default_refs = 120_000
    ops_scale = 54.1

    def build(self, space, scale=1.0):
        n_index = max(4096, int(12288 * scale))
        # net_cost is ~1.5x the scaled L2 (the paper's net arrays sit in
        # the same ratio to its 1 MB L2), so the clustered indirect
        # targets retain block-level locality and region prefetching is
        # mostly useful -- SRP covers vpr at 86% in the paper, just with
        # ~4x the traffic GRP needs.
        n_data = max(16384, int(24576 * scale))
        rng = random.Random(42)

        # Clustered indices: short runs of nearby elements, as placement
        # nets touch neighbouring blocks.
        indices = []
        while len(indices) < n_index:
            start = rng.randrange(0, n_data - 32)
            run = rng.randrange(4, 12)
            indices.extend(min(start + k, n_data - 1) for k in range(run))
        indices = indices[:n_index]

        net_cost = ArrayDecl("net_cost", 8, [n_data], storage="heap")
        pins = ArrayDecl("pins", 4, [n_index], storage="heap")
        place = ArrayDecl("place", 8, [n_index], storage="heap")
        for arr in (net_cost, pins, place):
            materialize(space, arr)
        store_index_array(space, pins, indices)

        i, t = Var("i"), Var("t")
        ai = Affine.of(i)
        # The indirect cost loop: cost += net_cost[pins[i]], plus a dense
        # spatial pass over the placement array.
        cost_loop = ForLoop(i, 0, n_index, [
            ArrayRef(net_cost, [IndexLoad(pins, ai)]),
            Compute(4),
        ])
        place_loop = ForLoop(i, 0, n_index, [
            ArrayRef(place, [ai], is_store=True),
            Compute(2),
        ])
        body = ForLoop(t, 0, 12, [cost_loop, place_loop])
        return Built(Program("vpr", [body]))
