"""171.swim — shallow-water stencil (Fortran, FP).

The paper characterizes swim's remaining misses as *transpose array
access* (92%, Table 6): column-major arrays swept in both orders.  The
synthetic version mirrors the real code's structure:

* finite-difference update sweeps with the spatial (column) index
  innermost, touching **nine arrays per iteration** — more concurrent
  streams than the 8 stream buffers can track, which is what separates
  region prefetching from stride prefetching on this code;
* a transposed sweep (row index innermost) whose per-access stride is a
  full column.  Its spatial reuse is carried by the *outer* loop with a
  compile-time-computable distance, so GRP still marks it (Section 4.1's
  reuse-distance screen) while the stride predictor sees a large-stride
  stream per PC.

Working sets are several times the scaled L2.
"""

from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Compute,
    ForLoop,
    Program,
    Sym,
    Var,
)
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import materialize


@register
class Swim(Workload):
    """Synthetic stand-in for 171.swim — shallow-water stencil (Fortran, FP)."""

    name = "swim"
    category = "fp"
    language = "fortran"
    default_refs = 150_000
    ops_scale = 9.5

    def build(self, space, scale=1.0):
        n = max(48, int(64 * scale))
        names = ["u", "v", "p", "unew", "vnew", "pnew", "uold", "vold",
                 "pold", "cu", "cv", "z", "h"]
        arrays = {}
        for name in names:
            arrays[name] = ArrayDecl(name, 8, [n, n], layout="col")
            materialize(space, arrays[name])

        i, j, t = Var("i"), Var("j"), Var("t")
        ai, aj = Affine.of(i), Affine.of(j)
        ai1 = Affine.of(i, const=1)
        aj1 = Affine.of(j, const=1)

        # calc1-style sweep: 9 concurrent unit-stride streams (i inner).
        calc1 = ForLoop(j, 0, n - 1, [
            ForLoop(i, 0, n - 1, [
                ArrayRef(arrays["p"], [ai, aj]),
                ArrayRef(arrays["p"], [ai1, aj]),
                ArrayRef(arrays["u"], [ai, aj]),
                ArrayRef(arrays["u"], [ai, aj1]),
                ArrayRef(arrays["v"], [ai, aj]),
                ArrayRef(arrays["uold"], [ai, aj]),
                ArrayRef(arrays["vold"], [ai, aj]),
                ArrayRef(arrays["cu"], [ai, aj], is_store=True),
                ArrayRef(arrays["cv"], [ai, aj], is_store=True),
                ArrayRef(arrays["z"], [ai, aj], is_store=True),
                ArrayRef(arrays["h"], [ai, aj], is_store=True),
                Compute(10),
            ]),
        ])
        # calc2-style sweep over the "new" copies.
        calc2 = ForLoop(j, 0, n - 1, [
            ForLoop(i, 0, n - 1, [
                ArrayRef(arrays["cu"], [ai, aj]),
                ArrayRef(arrays["cv"], [ai, aj1]),
                ArrayRef(arrays["z"], [ai1, aj]),
                ArrayRef(arrays["h"], [ai, aj]),
                ArrayRef(arrays["pold"], [ai, aj]),
                ArrayRef(arrays["p"], [ai1, aj1]),
                ArrayRef(arrays["unew"], [ai, aj], is_store=True),
                ArrayRef(arrays["vnew"], [ai, aj], is_store=True),
                ArrayRef(arrays["pnew"], [ai, aj], is_store=True),
                Compute(9),
            ]),
        ])
        # The transposed sweep: row index innermost over column-major
        # arrays (periodic-boundary/copyback code in the original).  The
        # bounds come from the runtime grid size, so the compiler cannot
        # compute the outer-loop reuse distance and the default policy
        # declines to mark these references -- GRP skips them while SRP
        # blasts a 4 KB region at every one of their misses.
        transpose = ForLoop(i, 0, Sym("n"), [
            ForLoop(j, 0, Sym("n"), [
                ArrayRef(arrays["uold"], [ai, aj]),
                ArrayRef(arrays["pold"], [ai, aj], is_store=True),
                Compute(4),
            ]),
        ])
        body = ForLoop(t, 0, 6, [calc1, calc2, transpose])
        program = Program("swim", [body], bindings={"n": n})
        return Built(program)
