"""Shared data-structure builders for the synthetic benchmarks.

These helpers materialize the structures the IR programs traverse:
arrays (static or heap), linked lists (sequential or shuffled layout),
binary trees, arrays of row pointers (``T **``), and 4-byte index arrays.
Pointer values are recorded in the address space's word content store so
the prefetch engines can scan fetched lines for them, exactly as the
hardware in the paper does.
"""

import random


def _stagger(space):
    """Padding added after each array allocation.

    Without it, arrays with power-of-two sizes land at bases congruent
    modulo the cache way size, so every array in a loop maps to the same
    sets and the caches thrash pathologically; worse, the concurrently
    prefetched regions of parallel streams would all fight over the same
    few sets' LRU ways.  Real programs avoid this by accident (odd
    dimensions, allocator headers, intervening allocations); a rotating
    stagger that spreads consecutive arrays across the set space
    reproduces that accident deterministically per address space.
    """
    seq = getattr(space, "_stagger_seq", 0)
    space._stagger_seq = seq + 1
    return 192 + 4096 * (seq % 8)


def materialize(space, array, bindings=None):
    """Allocate storage for ``array`` and set its base address."""
    size = array.size_bytes(bindings)
    if size is None:
        raise ValueError(
            "array %s has unresolved symbolic dims" % array.name
        )
    if array.storage == "heap":
        array.base = space.malloc(size + _stagger(space))
    else:
        array.base = space.static_alloc(size + _stagger(space))
    return array.base


def store_index_array(space, array, values):
    """Fill a 4-byte index array with ``values`` (for indirect accesses)."""
    if array.base is None:
        raise ValueError("materialize %s first" % array.name)
    if array.elem_size != 4:
        raise ValueError("index arrays use 4-byte elements in this system")
    for i, value in enumerate(values):
        space.store_word(array.base + i * 4, int(value), size=4)


def build_linked_list(space, struct, count, layout="sequential",
                      next_field="next", rng=None, spacing=0):
    """Allocate ``count`` nodes of ``struct`` linked through ``next_field``.

    ``layout`` controls heap placement:

    * ``sequential`` — nodes allocated back to back (the common malloc
      pattern that makes spatial prefetching subsume pointer prefetching
      in the paper's SPEC results);
    * ``shuffled`` — link order is a random permutation of the nodes, so
      successive pointers jump around the heap (mcf/twolf-style).

    ``spacing`` adds padding bytes between node allocations.  Returns the
    head node's address.  The last node's next pointer is left null (0),
    which the interpreter treats as "restart traversal".
    """
    if count <= 0:
        raise ValueError("need at least one node")
    field = struct.field(next_field)
    nodes = [space.malloc(struct.size + spacing) for _ in range(count)]
    order = list(nodes)
    if layout == "shuffled":
        rng = rng or random.Random(7)
        rng.shuffle(order)
    elif layout != "sequential":
        raise ValueError("layout must be 'sequential' or 'shuffled'")
    for here, following in zip(order, order[1:]):
        space.store_word(here + field.offset, following)
    space.store_word(order[-1] + field.offset, 0)
    return order[0]


def build_binary_tree(space, struct, count, left_field="left",
                      right_field="right", rng=None, layout="bfs"):
    """Allocate a ``count``-node binary tree; returns the root address.

    ``layout='bfs'`` allocates level order (spatially friendly near the
    top); ``layout='shuffled'`` permutes allocation order so parent and
    child land far apart (mcf's tree traversals).  Missing children are
    null.
    """
    if count <= 0:
        raise ValueError("need at least one node")
    left = struct.field(left_field)
    right = struct.field(right_field)
    nodes = [space.malloc(struct.size) for _ in range(count)]
    if layout == "shuffled":
        rng = rng or random.Random(11)
        rng.shuffle(nodes)
    elif layout != "bfs":
        raise ValueError("layout must be 'bfs' or 'shuffled'")
    for i, node in enumerate(nodes):
        li, ri = 2 * i + 1, 2 * i + 2
        space.store_word(node + left.offset,
                         nodes[li] if li < count else 0)
        space.store_word(node + right.offset,
                         nodes[ri] if ri < count else 0)
    return nodes[0]


def build_pointer_rows(space, buf, rows, row_bytes, jitter=0, rng=None):
    """Materialize a ``T **``: ``rows`` heap rows plus the pointer array.

    ``buf`` must be a 1-D pointer :class:`ArrayDecl` with extent >= rows.
    Each row is a separate heap allocation of ``row_bytes`` bytes; row base
    addresses are stored into the pointer array's elements.  ``jitter``
    adds up to that many random padding bytes between rows (allocator
    headers / freed-hole reuse), which breaks the constant cross-row
    stride a too-clean bump layout would give PC-based stride predictors.
    Returns the list of row base addresses.
    """
    if not buf.is_pointer:
        raise ValueError("%s is not a pointer array" % buf.name)
    materialize(space, buf)
    rng = rng or random.Random(13)
    bases = []
    for i in range(rows):
        pad = rng.randrange(0, jitter + 1) & ~15 if jitter else 0
        row_base = space.malloc(row_bytes + pad)
        space.store_word(buf.base + i * 8, row_base)
        bases.append(row_base)
    return bases


def build_node_pointer_array(space, heads, node_addrs):
    """Fill a pointer array with the given node addresses (heap objects)."""
    if not heads.is_pointer:
        raise ValueError("%s is not a pointer array" % heads.name)
    if heads.base is None:
        materialize(space, heads)
    for i, addr in enumerate(node_addrs):
        space.store_word(heads.base + i * 8, addr)
