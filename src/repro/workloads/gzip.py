"""164.gzip — LZ77 compression (C, integer).

Long unit-stride scans over the input/output buffers (induction-pointer
loops, Figure 5's pattern), plus hash-chain probes into the 64 K-entry
head/prev tables whose indices are data-dependent — compiler-opaque.
Table 3 gives gzip a 37% hint ratio (spatial + pointer, no recursive);
Table 5 shows the odd GRP row with 0% coverage but 91% accuracy: GRP
barely prefetches on gzip because the misses mostly come from the
unhinted hash probes, while the hinted buffer scans rarely miss.
"""

import random

from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Compute,
    ForLoop,
    Opaque,
    PointerVar,
    Program,
    PtrLoop,
    PtrRef,
    Var,
)
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import materialize


@register
class Gzip(Workload):
    """Synthetic stand-in for 164.gzip — LZ77 compression (C, integer)."""

    name = "gzip"
    category = "int"
    language = "c"
    default_refs = 120_000
    ops_scale = 67.1

    def build(self, space, scale=1.0):
        window = max(1 << 18, int((1 << 19) * scale))
        # The hash head and prev chains together sit under the scaled L2
        # (the paper's gzip tables fit its 1 MB L2 the same way), so probe
        # misses are rare and the remaining misses come from streaming the
        # fresh input -- which is why SRP covers gzip at high accuracy
        # with almost no extra traffic in the paper.
        hash_entries = 1 << 12  # 32 KB head table
        chain_entries = 1 << 13  # 64 KB prev chains
        rng = random.Random(9)

        head = ArrayDecl("head", 8, [hash_entries], storage="heap")
        prev = ArrayDecl("prev", 8, [chain_entries], storage="heap")
        out_buf = ArrayDecl("out_buf", 8, [1 << 12], storage="heap")
        for arr in (head, prev, out_buf):
            materialize(space, arr)
        in_base = space.malloc(window)

        def hash_probe(env, r):
            return r.randrange(hash_entries)

        def chain_probe(env, r):
            return r.randrange(chain_entries)

        i, t = Var("i"), Var("t")
        scan = PointerVar("scan")

        # deflate: induction-pointer scan of the input stream with hash
        # and chain probes per position.
        deflate = PtrLoop(scan, window // 8, 8, [
            PtrRef(scan, size=8),
            ArrayRef(head, [Opaque(hash_probe, "hash head")]),
            ArrayRef(prev, [Opaque(chain_probe, "chain link")]),
            Compute(9),
        ])
        # Output flush: dense sequential stores to a recycled buffer.
        flush = ForLoop(i, 0, 1 << 12, [
            ArrayRef(out_buf, [Affine.of(i)], is_store=True),
            Compute(2),
        ])
        body = ForLoop(t, 0, 10, [deflate, flush])
        program = Program("gzip", [body])
        return Built(program, pointer_bindings={"scan": in_base})
