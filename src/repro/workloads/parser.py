"""197.parser — link grammar parser (C, integer).

The paper's Table 3 gives parser the largest *recursive* hint count in
the suite (1263): dictionary tries and disjunct/connector lists are
walked recursively everywhere.  The synthetic version mixes shuffled
linked-list walks (connector lists), a binary-trie descent, and a
moderate sequential pass over the string region.  Stride prefetching
does surprisingly well on parser in the paper (67% coverage) because
the allocator hands out nodes at regular offsets — reproduced here by
keeping part of the lists in allocation order.
"""

from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Compute,
    ForLoop,
    PointerVar,
    Program,
    PtrAssignFromArray,
    PtrChase,
    PtrRef,
    PtrSelect,
    Sym,
    Var,
    WhileLoop,
)
from repro.compiler.symbols import StructDecl
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import (
    build_binary_tree,
    build_linked_list,
    build_node_pointer_array,
    materialize,
)


@register
class Parser(Workload):
    """Synthetic stand-in for 197.parser — link grammar parser (C, integer)."""

    name = "parser"
    category = "int"
    language = "c"
    default_refs = 120_000
    ops_scale = 73.7

    def build(self, space, scale=1.0):
        connector = StructDecl("connector_t")
        connector.add_scalar("label", 8)
        connector.add_scalar("priority", 8)
        connector.add_pointer("next", target="connector_t")

        trie = StructDecl("dict_node_t")
        trie.add_scalar("word", 8)
        trie.add_pointer("left", target="dict_node_t")
        trie.add_pointer("right", target="dict_node_t")

        n_conn = max(4096, int(8192 * scale))
        seq_head = build_linked_list(space, connector, n_conn,
                                     layout="sequential")
        shuf_head = build_linked_list(space, connector, n_conn,
                                      layout="shuffled")
        root = build_binary_tree(space, trie, max(2048, int(4096 * scale)),
                                 layout="shuffled")
        roots = ArrayDecl("roots", 8, [1], storage="heap", is_pointer=True)
        build_node_pointer_array(space, roots, [root])

        sent = ArrayDecl("sent", 8, [8192], storage="heap")
        materialize(space, sent)

        c1 = PointerVar("c1", struct="connector_t")
        c2 = PointerVar("c2", struct="connector_t")
        d = PointerVar("d", struct="dict_node_t")
        i, t = Var("i"), Var("t")

        seq_walk = WhileLoop(Sym("conn_len"), [
            PtrRef(c1, field=connector.field("label")),
            PtrChase(c1, connector.field("next")),
            Compute(4),
        ])
        shuf_walk = WhileLoop(Sym("conn_len"), [
            PtrRef(c2, field=connector.field("priority")),
            PtrChase(c2, connector.field("next")),
            Compute(4),
        ])
        trie_descend = WhileLoop(Sym("trie_depth"), [
            PtrRef(d, field=trie.field("word")),
            PtrSelect(d, [trie.field("left"), trie.field("right")]),
            Compute(5),
        ])
        sentence_scan = ForLoop(i, 0, 8192, [
            ArrayRef(sent, [Affine.of(i)]),
            Compute(2),
        ])
        body = ForLoop(t, 0, 24, [
            seq_walk,
            PtrAssignFromArray(d, roots, Affine.constant(0)),
            trie_descend,
            shuf_walk,
            sentence_scan,
        ])
        program = Program(
            "parser", [body],
            bindings={"conn_len": n_conn // 8, "trie_depth": 48},
        )
        return Built(program, pointer_bindings={
            "c1": seq_head, "c2": shuf_head,
        })
