"""173.applu — SSOR CFD solver (Fortran, FP).

The solution arrays are 4-D, ``rsd(m, i, j, k)``, with a *small* leading
dimension (the 5 field variables) that is contiguous in column-major
order.  Sweeps iterate i/j/k with m innermost, so each (i,j,k) visit
touches a 40-byte cluster and advances 40 bytes — spatial but not unit
stride, which is exactly the pattern that trips simple next-block
prefetchers and that dependence testing handles fine.  Table 3: over
half of applu's references are hinted spatial; Table 5: ~97% coverage
for SRP/GRP.
"""

from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Compute,
    ForLoop,
    Program,
    Var,
)
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import materialize


@register
class Applu(Workload):
    """Synthetic stand-in for 173.applu — SSOR CFD solver (Fortran, FP)."""

    name = "applu"
    category = "fp"
    language = "fortran"
    default_refs = 150_000
    ops_scale = 45.0

    def build(self, space, scale=1.0):
        n = max(14, int(18 * scale))
        m_dim = 5
        rsd = ArrayDecl("rsd", 8, [m_dim, n, n, n], layout="col")
        u = ArrayDecl("u", 8, [m_dim, n, n, n], layout="col")
        flux = ArrayDecl("flux", 8, [m_dim, n, n, n], layout="col")
        for arr in (rsd, u, flux):
            materialize(space, arr)

        m, i, j, k, t = Var("m"), Var("i"), Var("j"), Var("k"), Var("t")
        am, ai, aj, ak = (Affine.of(v) for v in (m, i, j, k))
        ai1 = Affine.of(i, const=1)

        # rhs: flux computation, m innermost over the 5 field variables.
        rhs = ForLoop(k, 1, n - 1, [
            ForLoop(j, 1, n - 1, [
                ForLoop(i, 1, n - 1, [
                    ForLoop(m, 0, m_dim, [
                        ArrayRef(u, [am, ai, aj, ak]),
                        ArrayRef(u, [am, ai1, aj, ak]),
                        ArrayRef(flux, [am, ai, aj, ak], is_store=True),
                        Compute(7),
                    ]),
                ]),
            ]),
        ])
        # ssor update: rsd += omega * flux.
        ssor = ForLoop(k, 1, n - 1, [
            ForLoop(j, 1, n - 1, [
                ForLoop(i, 1, n - 1, [
                    ForLoop(m, 0, m_dim, [
                        ArrayRef(flux, [am, ai, aj, ak]),
                        ArrayRef(rsd, [am, ai, aj, ak], is_store=True),
                        Compute(4),
                    ]),
                ]),
            ]),
        ])
        # jacld: a pipelined sweep whose inner loop strides whole rows;
        # the unit-stride reuse is carried by the *middle* loop with a
        # small computable distance.  The default policy's
        # reuse-distance screen marks these; the conservative policy
        # (innermost only) does not -- applu is one of the four
        # benchmarks the paper's Section 5.4 says the conservative
        # scheme hurts.
        a0 = Affine.constant(0)
        jacld = ForLoop(k, 1, n - 1, [
            ForLoop(i, 1, n - 1, [
                ForLoop(j, 1, n - 1, [
                    ArrayRef(u, [a0, ai, aj, ak]),
                    ArrayRef(rsd, [a0, ai, aj, ak], is_store=True),
                    Compute(5),
                ]),
            ]),
        ])
        body = ForLoop(t, 0, 6, [jacld, rhs, ssor])
        return Built(Program("applu", [body]))
