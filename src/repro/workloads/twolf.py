"""300.twolf — standard-cell place & route (C, integer).

Table 6 blames twolf's misses on "linked list and random pointers":
short net/terminal lists reached through a big array of heads in random
order.  Each chase is only a few nodes deep and the nodes are scattered,
so neither region prefetching (SRP: 4.2% accuracy, 15.9x traffic!) nor
bounded pointer chasing covers much — the paper notes pointer
prefetching actually edges out SRP by 2% here.  GRP marks the field
accesses pointer/recursive and keeps traffic sane (1.4x).
"""

import random

from repro.compiler.ir import (
    Compute,
    ForLoop,
    Opaque,
    PointerVar,
    Program,
    PtrAssignFromArray,
    PtrChase,
    PtrRef,
    Sym,
    Var,
    WhileLoop,
)
from repro.compiler.symbols import ArrayDecl, StructDecl
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import build_linked_list, build_node_pointer_array


@register
class Twolf(Workload):
    """Synthetic stand-in for 300.twolf — standard-cell place & route (C, integer)."""

    name = "twolf"
    category = "int"
    language = "c"
    default_refs = 120_000
    ops_scale = 90.5

    def build(self, space, scale=1.0):
        term = StructDecl("term_t")
        term.add_scalar("xpos", 8)
        term.add_scalar("ypos", 8)
        term.add_scalar("cost", 8)
        term.add_pointer("nextterm", target="term_t")

        n_nets = max(1024, int(2048 * scale))
        nodes_per_net = 4
        rng = random.Random(17)

        heads = []
        for _ in range(n_nets):
            heads.append(
                build_linked_list(space, term, nodes_per_net,
                                  layout="shuffled", rng=rng,
                                  next_field="nextterm")
            )
        net_heads = ArrayDecl("net_heads", 8, [n_nets], storage="heap",
                              is_pointer=True)
        build_node_pointer_array(space, net_heads, heads)

        def pick_net(env, r):
            return r.randrange(n_nets)

        p = PointerVar("p", struct="term_t")
        t = Var("t")
        # new_dbox: pick a random net, walk its short terminal list.
        body = ForLoop(t, 0, 40_000, [
            PtrAssignFromArray(p, net_heads, Opaque(pick_net, "random net")),
            WhileLoop(Sym("net_len"), [
                PtrRef(p, field=term.field("xpos")),
                PtrRef(p, field=term.field("cost"), is_store=True),
                PtrChase(p, term.field("nextterm")),
                Compute(6),
            ]),
        ])
        program = Program("twolf", [body],
                          bindings={"net_len": nodes_per_net})
        return Built(program)
