"""301.apsi — mesoscale weather model (Fortran, FP).

3-D pollutant/temperature fields swept with the column index innermost,
plus vertical-column passes whose stride is a full horizontal plane.
Moderate miss rate (25%), every scheme achieves high accuracy, and all
three prefetchers keep traffic near the no-prefetch baseline (Table 5) —
apsi is the well-behaved Fortran citizen of the suite.
"""

from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Compute,
    ForLoop,
    Program,
    Var,
)
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import materialize


@register
class Apsi(Workload):
    """Synthetic stand-in for 301.apsi — mesoscale weather model (Fortran, FP)."""

    name = "apsi"
    category = "fp"
    language = "fortran"
    default_refs = 120_000
    ops_scale = 18.6

    def build(self, space, scale=1.0):
        nx = max(24, int(32 * scale))
        nz = 8
        field_names = ["t_field", "q_field", "u_wind", "v_wind", "w_wind",
                       "px", "py", "conc", "dkz", "hvar"]
        fields = {}
        for name in field_names:
            fields[name] = ArrayDecl(name, 8, [nx, nx, nz], layout="col")
            materialize(space, fields[name])

        i, j, k, t = Var("i"), Var("j"), Var("k"), Var("t")
        ai, aj, ak = Affine.of(i), Affine.of(j), Affine.of(k)

        # Horizontal advection: unit stride in i, ten concurrent field
        # streams per point (the real code's dctdx/dctdy passes).
        advect = ForLoop(k, 0, nz, [
            ForLoop(j, 0, nx, [
                ForLoop(i, 0, nx, [
                    ArrayRef(fields["t_field"], [ai, aj, ak]),
                    ArrayRef(fields["u_wind"], [ai, aj, ak]),
                    ArrayRef(fields["v_wind"], [ai, aj, ak]),
                    ArrayRef(fields["px"], [ai, aj, ak]),
                    ArrayRef(fields["py"], [ai, aj, ak]),
                    ArrayRef(fields["hvar"], [ai, aj, ak]),
                    ArrayRef(fields["conc"], [ai, aj, ak]),
                    ArrayRef(fields["dkz"], [ai, aj, ak]),
                    ArrayRef(fields["w_wind"], [ai, aj, ak]),
                    ArrayRef(fields["q_field"], [ai, aj, ak],
                             is_store=True),
                    Compute(18),
                ]),
            ]),
        ])
        # Vertical diffusion: the real code copies each column into small
        # work arrays (wz/dz) and solves there, so the vertical pass runs
        # against resident scratch rather than striding planes of the big
        # fields -- which is why every prefetch scheme keeps apsi's
        # traffic at essentially the no-prefetch level (Table 5).
        wz = ArrayDecl("wz", 8, [nx, nz], layout="col")
        materialize(space, wz)
        vdiff = ForLoop(j, 0, nx // 8, [
            ForLoop(i, 0, nx, [
                ForLoop(k, 0, nz, [
                    ArrayRef(wz, [ai, ak]),
                    Compute(8),
                ]),
            ]),
        ])
        # Horizontal pipeline sweep (dudtz/dvdtz style): the inner loop
        # strides whole rows, so the unit-stride reuse sits on the middle
        # loop with a small known distance -- marked by the default
        # policy, skipped by the conservative one (Section 5.4).
        pipeline = ForLoop(k, 0, nz, [
            ForLoop(i, 0, nx, [
                ForLoop(j, 0, nx, [
                    ArrayRef(fields["px"], [ai, aj, ak]),
                    ArrayRef(fields["py"], [ai, aj, ak], is_store=True),
                    Compute(7),
                ]),
            ]),
        ])
        body = ForLoop(t, 0, 8, [pipeline, advect, vdiff])
        return Built(Program("apsi", [body]))
