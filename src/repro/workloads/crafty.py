"""186.crafty — chess (C, integer).

Crafty's working set is essentially cache-resident: the paper measures a
0.4% L2 miss rate and drops it from the performance figures, but keeps
it in Table 3 (21.6% hint ratio over a very large static instruction
count).  The synthetic version runs bitboard-style compute over small
tables that fit comfortably in the scaled L2 plus an occasional
transposition-table probe, so the L2 miss rate stays negligible.
"""

import random

from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Compute,
    ForLoop,
    Opaque,
    Program,
    Var,
)
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import materialize


@register
class Crafty(Workload):
    """Synthetic stand-in for 186.crafty — chess (C, integer)."""

    name = "crafty"
    category = "int"
    language = "c"
    default_refs = 120_000
    ops_scale = 9.5

    def build(self, space, scale=1.0):
        # Small, hot tables: ~48 KB total against a 128 KB scaled L2.
        attacks = ArrayDecl("attacks", 8, [4096], storage="static")
        board = ArrayDecl("board", 8, [64], storage="static")
        history = ArrayDecl("history", 8, [1024], storage="static")
        ttable = ArrayDecl("ttable", 8, [1 << 9], storage="heap")
        for arr in (attacks, board, history, ttable):
            materialize(space, arr)

        def tt_probe(env, r):
            return r.randrange(1 << 9)

        i, sq, t = Var("i"), Var("sq"), Var("t")
        evaluate = ForLoop(sq, 0, 64, [
            ArrayRef(board, [Affine.of(sq)]),
            ArrayRef(attacks, [Affine.of(sq, coef=64)]),
            Compute(24),  # bitboard arithmetic dominates
        ])
        search = ForLoop(i, 0, 1024, [
            ArrayRef(history, [Affine.of(i)]),
            ArrayRef(ttable, [Opaque(tt_probe, "ttable probe")]),
            Compute(30),
        ])
        body = ForLoop(t, 0, 400, [evaluate, search])
        return Built(Program("crafty", [body]))
