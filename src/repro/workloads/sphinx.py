"""sphinx — speech recognition (Lee, Hon, Reddy).

The paper adds sphinx for its sparse, irregular pointer behaviour.  The
dominant remaining miss source is **hash table lookup** (28.8%, Table
6): a probe lands in a random bucket and then touches "only a small
number of adjacent hash slots in a short loop" — prefetches arrive too
late to help.  The rest of the work is short unit-stride loops over
per-frame score vectors (senone evaluation), which makes sphinx the
third variable-region benchmark: Table 4 shows GRP/Var cutting traffic
82% (82.9% of regions at 2 blocks, 16.1% at 8) at a 5.8% performance
cost versus GRP/Fix — the compiler cannot prove the longer spatial runs,
so it sizes regions small and misses some opportunity.
"""

import random

from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Compute,
    ForLoop,
    Opaque,
    PointerVar,
    Program,
    PtrChase,
    PtrRef,
    Runtime,
    Sym,
    Var,
    WhileLoop,
)
from repro.compiler.symbols import StructDecl
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import build_linked_list, materialize


@register
class Sphinx(Workload):
    """Synthetic stand-in for sphinx — speech recognition (Lee, Hon, Reddy)."""

    name = "sphinx"
    category = "int"
    language = "c"
    default_refs = 150_000
    ops_scale = 36.8

    def build(self, space, scale=1.0):
        n_slots = max(1 << 14, int((1 << 15) * scale))
        probe_len = 4
        senone_len = 10
        n_senones = max(2048, int(3072 * scale))
        rng = random.Random(23)

        hashtab = ArrayDecl("hashtab", 8, [n_slots], storage="heap")
        scores = ArrayDecl("scores", 8, [n_senones * senone_len],
                           storage="heap")
        for arr in (hashtab, scores):
            materialize(space, arr)

        hmm = StructDecl("hmm_t")
        hmm.add_scalar("score", 8)
        hmm.add_scalar("history", 8)
        hmm.add_pointer("next", target="hmm_t")
        hmm_head = build_linked_list(space, hmm, 4096, layout="shuffled",
                                     rng=rng)

        def bucket(env, r):
            # Random bucket, then the short loop walks adjacent slots.
            return r.randrange(n_slots - probe_len)

        i, s, f = Var("i"), Var("s"), Var("f")
        h = PointerVar("h", struct="hmm_t")

        # Hash lookup: random bucket + a few adjacent slots.  The base is
        # opaque, so the compiler cannot mark it and prefetches that do
        # happen (SRP) are too late to matter.
        starts = {}

        def slot(env, r):
            key = (env["f"], env["s"])
            if key not in starts:
                starts[key] = r.randrange(n_slots - probe_len)
            return starts[key] + env["i"]

        hash_lookup = ForLoop(i, 0, probe_len, [
            ArrayRef(hashtab, [Opaque(slot, "hash probe")]),
            Compute(5),
        ])

        # Senone scoring: each frame evaluates a random *active subset* of
        # senones; the per-senone loop is short, singly nested, and affine
        # in i with a runtime-constant base (a function argument) -- the
        # variable-region candidate (bound = senone_len).
        senone_picks = {}

        def senone_base(env, r):
            # Constant across the inner i loop: one active senone per
            # (frame, slot) call of the scoring function.
            key = (env["f"], env["s"])
            if key not in senone_picks:
                senone_picks[key] = r.randrange(n_senones) * senone_len
            return senone_picks[key]

        senone_fn = ForLoop(i, 0, senone_len, [
            ArrayRef(scores, [Affine({i: 1},
                                     Runtime(senone_base, "active senone"))]),
            Compute(4),
        ])
        # Word-lattice HMM chain walk: the sparse pointer part.
        hmm_walk = WhileLoop(Sym("hmm_steps"), [
            PtrRef(h, field=hmm.field("score")),
            PtrChase(h, hmm.field("next")),
            Compute(6),
        ])
        frame = ForLoop(f, 0, 4000, [
            ForLoop(s, 0, 24, [hash_lookup], scope_boundary=True),
            ForLoop(s, 0, 96, [senone_fn], scope_boundary=True),
            hmm_walk,
        ])
        program = Program("sphinx", [frame],
                          bindings={"hmm_steps": 64})
        return Built(program, pointer_bindings={"h": hmm_head})
