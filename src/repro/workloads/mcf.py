"""181.mcf — network simplex (C, integer, pointer-heavy).

The paper attributes mcf's behaviour to two patterns:

* a loop that **sequentially resets a field in each object of a heap
  array** — which is why plain pointer prefetching helps mcf in Figure 9
  (prefetching the objects the loop touches next), and why spatial
  prefetching covers much of it;
* **tree traversals** over nodes scattered in the heap (60.7% of the
  remaining misses, Table 6), which neither spatial nor bounded-depth
  pointer chasing covers well — mcf stays far from a perfect L2.
"""

from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    Compute,
    ForLoop,
    PointerVar,
    Program,
    PtrAssignFromArray,
    PtrLoop,
    PtrRef,
    PtrSelect,
    Sym,
    Var,
    WhileLoop,
)
from repro.compiler.symbols import StructDecl
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import (
    build_binary_tree,
    build_node_pointer_array,
    materialize,
)


@register
class Mcf(Workload):
    """Synthetic stand-in for 181.mcf — network simplex (C, integer, pointer-heavy)."""

    name = "mcf"
    category = "int"
    language = "c"
    default_refs = 120_000
    ops_scale = 29.7

    def build(self, space, scale=1.0):
        node = StructDecl("node_t")
        node.add_scalar("potential", 8)
        node.add_scalar("flow", 8)
        node.add_pointer("basic_arc", target="arc_t")
        node.add_pointer("child", target="node_t")
        node.add_pointer("sibling", target="node_t")

        arc = StructDecl("arc_t")
        arc.add_scalar("cost", 8)
        arc.add_pointer("tail", target="node_t")
        arc.add_pointer("head", target="node_t")
        left = arc.add_pointer("left", target="arc_t")
        right = arc.add_pointer("right", target="arc_t")

        n_nodes = max(2048, int(6144 * scale))
        # The heap array of node structures the reset loop sweeps.
        first_node = space.malloc(node.size * n_nodes)
        for k in range(n_nodes):
            base = first_node + k * node.size
            # Each node's basic_arc references a node a few entries
            # ahead; scanning a fetched line therefore yields addresses
            # the reset sweep is about to visit -- the accidental win
            # the paper reports for pointer prefetching on mcf.
            target = first_node + ((k + 8) % n_nodes) * node.size
            space.store_word(
                base + node.field("basic_arc").offset, target
            )

        tree_root = build_binary_tree(
            space, arc, max(8192, int(16384 * scale)), layout="shuffled"
        )
        roots = ArrayDecl("roots", 8, [1], storage="heap", is_pointer=True)
        build_node_pointer_array(space, roots, [tree_root])

        p = PointerVar("p", struct="node_t")
        cursor = PointerVar("cursor", struct="arc_t")
        t, w = Var("t"), Var("w")

        # refresh_potential: sequential field reset over the node array.
        reset_loop = PtrLoop(p, n_nodes, node.size, [
            PtrRef(p, field=node.field("potential"), is_store=True),
            PtrRef(p, field=node.field("basic_arc")),
            Compute(3),
        ])
        # price_out: random tree descents, restarted from the root.  The
        # descents dominate the misses (60.7% in Table 6), which is why
        # no prefetching scheme gets mcf anywhere near a perfect L2.
        tree_walk = WhileLoop(Sym("walk_len"), [
            PtrRef(cursor, field=arc.field("cost")),
            PtrSelect(cursor, [left, right]),
            Compute(5),
        ])
        body = ForLoop(t, 0, 64, [
            ForLoop(w, 0, 32, [
                PtrAssignFromArray(cursor, roots, Affine.constant(0)),
                tree_walk,
            ]),
            reset_loop,
        ])
        program = Program("mcf", [body], bindings={"walk_len": 96})
        return Built(program, pointer_bindings={"p": first_node})
