"""The synthetic benchmark suite.

Importing this package registers all workloads; use
:func:`repro.workloads.base.get_workload` / :func:`workload_names` to
enumerate them.
"""

from repro.workloads.base import (
    Built,
    Workload,
    get_workload,
    register,
    workload_names,
)

# Importing each module registers its workload.  Order matches the
# paper's Table 3 (by SPEC number), with sphinx last.
from repro.workloads import gzip  # noqa: F401
from repro.workloads import wupwise  # noqa: F401
from repro.workloads import swim  # noqa: F401
from repro.workloads import mgrid  # noqa: F401
from repro.workloads import applu  # noqa: F401
from repro.workloads import vpr  # noqa: F401
from repro.workloads import mesa  # noqa: F401
from repro.workloads import art  # noqa: F401
from repro.workloads import mcf  # noqa: F401
from repro.workloads import equake  # noqa: F401
from repro.workloads import crafty  # noqa: F401
from repro.workloads import ammp  # noqa: F401
from repro.workloads import parser  # noqa: F401
from repro.workloads import gap  # noqa: F401
from repro.workloads import bzip2  # noqa: F401
from repro.workloads import twolf  # noqa: F401
from repro.workloads import apsi  # noqa: F401
from repro.workloads import sphinx  # noqa: F401

__all__ = ["Built", "Workload", "get_workload", "register", "workload_names"]
