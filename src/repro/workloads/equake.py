"""183.equake — earthquake simulation (C, FP).

The hot kernel is a sparse matrix-vector multiply over a ``double ***``
stiffness matrix: an array of row pointers into heap rows.  The paper
singles equake out in Figure 9 — pure pointer prefetching gains 48.3%,
"not from pointer structure traversal as expected [but] from prefetching
arrays of pointers from the heap": scanning a fetched line of the row-
pointer array yields eight row addresses the loop is about to visit.
GRP reaches ~95% coverage at 95% accuracy (Table 5) because the row
pointer loads are marked both spatial and pointer (Figure 4's pattern).
"""

from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Compute,
    ForLoop,
    PointerVar,
    Program,
    PtrArrayRef,
    PtrAssignFromArray,
    Sym,
    Var,
)
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import build_pointer_rows, materialize


@register
class Equake(Workload):
    """Synthetic stand-in for 183.equake — earthquake simulation (C, FP)."""

    name = "equake"
    category = "fp"
    language = "c"
    default_refs = 150_000
    ops_scale = 13.8

    def build(self, space, scale=1.0):
        nodes = max(1536, int(3072 * scale))
        row_len = 24  # ~nonzeros per matrix row x 8 bytes each

        # Sparse rows with allocator jitter: cross-row strides are
        # irregular, so a PC-based stride predictor keeps running off the
        # end of each short row while region prefetching (and pointer
        # scanning of the row-pointer array) stays on target.
        matrix = ArrayDecl("K", 8, [nodes], storage="heap", is_pointer=True)
        build_pointer_rows(space, matrix, nodes, row_len * 8, jitter=192)
        disp = ArrayDecl("disp", 8, [nodes], storage="heap")
        vel = ArrayDecl("vel", 8, [nodes], storage="heap")
        mass = ArrayDecl("M", 8, [nodes], storage="heap")
        damp = ArrayDecl("C", 8, [nodes], storage="heap")
        force = ArrayDecl("force", 8, [nodes], storage="heap")
        accel = ArrayDecl("accel", 8, [nodes], storage="heap")
        for arr in (disp, vel, mass, damp, force, accel):
            materialize(space, arr)

        i, j, t = Var("i"), Var("j"), Var("t")
        ai, aj = Affine.of(i), Affine.of(j)
        row = PointerVar("row")

        # smvp: for each node, load its row pointer (hoisted out of the
        # inner loop, as the compiled code does) and walk the row.  The
        # per-row nonzero count is data (symbolic to the compiler).
        smvp = ForLoop(i, 0, Sym("nodes"), [
            PtrAssignFromArray(row, matrix, ai),
            ForLoop(j, 0, Sym("row_len"), [
                PtrArrayRef(row, aj, 8),
                Compute(3),
            ]),
            ArrayRef(disp, [ai]),
            ArrayRef(mass, [ai]),
            ArrayRef(damp, [ai]),
            ArrayRef(force, [ai]),
            ArrayRef(accel, [ai]),
            ArrayRef(vel, [ai], is_store=True),
            Compute(9),
        ])
        body = ForLoop(t, 0, 6, [smvp])
        program = Program(
            "equake", [body],
            bindings={"nodes": nodes, "row_len": row_len},
        )
        return Built(program)
