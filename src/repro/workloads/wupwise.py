"""168.wupwise — lattice QCD (Fortran, FP).

Dense complex-arithmetic kernels (zgemm/zaxpy style) streaming through
large arrays with unit stride, 16-byte (complex*16) elements.  Table 3
shows wupwise with spatial hints only — no pointers, a handful of static
loops — and Table 5 shows the highest baseline miss rate in the suite
(73.1%) with near-total SRP/GRP coverage: it is the canonical
"streaming code that region prefetching simply fixes".
"""

from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Compute,
    ForLoop,
    Program,
    Var,
)
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import materialize


@register
class Wupwise(Workload):
    """Synthetic stand-in for 168.wupwise — lattice QCD (Fortran, FP)."""

    name = "wupwise"
    category = "fp"
    language = "fortran"
    default_refs = 120_000

    ops_scale = 21.1

    def build(self, space, scale=1.0):
        n = max(4_000, int(6_000 * scale))
        # The su(3) kernels stream many operands at once: 12 spinor /
        # gauge arrays live in the hot loops, more concurrent streams
        # than the 8 stream buffers can hold.
        names = ["x", "y", "z", "u1", "u2", "u3", "r1", "r2", "r3",
                 "w1", "w2", "w3"]
        arrays = {}
        for name in names:
            arrays[name] = ArrayDecl(name, 16, [n], layout="col")
            materialize(space, arrays[name])

        i, t = Var("i"), Var("t")
        ai = Affine.of(i)
        # gammul/su3mul-style pass: per site, read three gauge-matrix
        # streams and three spinor streams, write three results.
        su3mul = ForLoop(i, 0, n, [
            ArrayRef(arrays["u1"], [ai]),
            ArrayRef(arrays["u2"], [ai]),
            ArrayRef(arrays["u3"], [ai]),
            ArrayRef(arrays["x"], [ai]),
            ArrayRef(arrays["y"], [ai]),
            ArrayRef(arrays["z"], [ai]),
            ArrayRef(arrays["r1"], [ai], is_store=True),
            ArrayRef(arrays["r2"], [ai], is_store=True),
            ArrayRef(arrays["r3"], [ai], is_store=True),
            Compute(22),  # complex 3x3 matrix-vector arithmetic
        ])
        # zaxpy over the accumulator streams.
        zaxpy = ForLoop(i, 0, n, [
            ArrayRef(arrays["w1"], [ai]),
            ArrayRef(arrays["w2"], [ai]),
            ArrayRef(arrays["w3"], [ai], is_store=True),
            Compute(9),
        ])
        body = ForLoop(t, 0, 10, [su3mul, zaxpy])
        return Built(Program("wupwise", [body]))
