"""Workload protocol and registry.

A workload stands in for one of the paper's benchmarks.  Building it
materializes its data structures into a fresh :class:`AddressSpace`
(allocating arrays, linking lists/trees, storing pointer and index values
into the word content store) and returns the IR program plus the initial
pointer bindings the interpreter needs.

Workloads are written to match the paper's per-benchmark characterization:
the hint mix of Table 3, the miss causes of Table 6, and the
integer/floating-point split of Figures 10/11.
"""

_REGISTRY = {}


def register(cls):
    """Class decorator adding a workload to the global registry."""
    if cls.name in _REGISTRY:
        raise ValueError("duplicate workload name %r" % cls.name)
    _REGISTRY[cls.name] = cls
    return cls


def get_workload(name):
    """Instantiate the registered workload called ``name``."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            "unknown workload %r (have: %s)"
            % (name, ", ".join(sorted(_REGISTRY)))
        )


def workload_names():
    """All registered workload names, in registration order."""
    return list(_REGISTRY)


class Built:
    """The result of building a workload into an address space."""

    def __init__(self, program, pointer_bindings=None):
        self.program = program
        #: {pointer name: initial address} for the interpreter.
        self.pointer_bindings = dict(pointer_bindings or {})


class Workload:
    """Base class for benchmark workloads."""

    #: Benchmark name (e.g. "swim", matching the paper's tables).
    name = None
    #: "int" or "fp" — which of Figures 10/11 the benchmark appears in.
    category = "int"
    #: Source language the original benchmark was written in; Fortran
    #: codes have no pointer hints, as in Table 3.
    language = "c"
    #: Default trace length (memory references) for experiments.
    default_refs = 120_000
    #: Multiplier applied to every Compute() op count at trace time.
    #: Calibrated per benchmark so the baseline gap versus a perfect L2
    #: lands near the paper's Figure 1 (see EXPERIMENTS.md).
    ops_scale = 1.0

    def build(self, space, scale=1.0):
        """Materialize data structures; return a :class:`Built`."""
        raise NotImplementedError

    def __repr__(self):
        return "<workload %s (%s, %s)>" % (
            self.name, self.category, self.language,
        )
