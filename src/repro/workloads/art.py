"""179.art — Adaptive Resonance Theory neural net (C, FP).

The paper calls art **bandwidth bound** (Table 6: 24% of the gap is raw
bandwidth, 36% is transposed heap-array access): the simulation repeatedly
streams weight matrices far larger than the L2 with almost no compute per
element, in both row order and transposed order (the f1/f2 layer sweeps).
GRP's accuracy advantage translates directly into performance here — the
paper reports GRP beating SRP by over 10% on art because wasted prefetch
traffic competes with demand fetches for channels.
"""

from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Compute,
    ForLoop,
    HeapRowRef,
    Program,
    Sym,
    Var,
)
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import build_pointer_rows, materialize


@register
class Art(Workload):
    """Synthetic stand-in for 179.art — Adaptive Resonance Theory neural net (C, FP)."""

    name = "art"
    category = "fp"
    language = "c"
    default_refs = 150_000
    ops_scale = 1.7

    def build(self, space, scale=1.0):
        neurons = max(48, int(64 * scale))
        inputs = max(64, int(96 * scale))

        # tds/bus weight matrices as heap row arrays (f1 -> f2 weights).
        # Row allocations carry allocator jitter, so cross-row strides
        # are irregular (the f1_neuron structs of the real code).
        bus = ArrayDecl("bus", 8, [neurons], storage="heap", is_pointer=True)
        build_pointer_rows(space, bus, neurons, inputs * 8, jitter=128)
        tds = ArrayDecl("tds", 8, [neurons], storage="heap", is_pointer=True)
        build_pointer_rows(space, tds, neurons, inputs * 8, jitter=128)
        f1_act = ArrayDecl("f1_act", 8, [inputs], storage="heap")
        f2_act = ArrayDecl("f2_act", 8, [neurons], storage="heap")
        # The f1 layer's per-input fields (P, Q, U, V, W, X of the real
        # f1_neuron struct), streamed alongside the weight rows.
        f1p = ArrayDecl("f1p", 8, [inputs], storage="heap")
        f1q = ArrayDecl("f1q", 8, [inputs], storage="heap")
        f1u = ArrayDecl("f1u", 8, [inputs], storage="heap")
        f1v = ArrayDecl("f1v", 8, [inputs], storage="heap")
        f1w = ArrayDecl("f1w", 8, [inputs], storage="heap")
        f1x = ArrayDecl("f1x", 8, [inputs], storage="heap")
        for arr in (f1_act, f2_act, f1p, f1q, f1u, f1v, f1w, f1x):
            materialize(space, arr)

        i, j, t = Var("i"), Var("j"), Var("t")
        ai, aj = Affine.of(i), Affine.of(j)

        # Forward pass: stream each neuron's weight rows.  The network
        # dimensions are runtime inputs (Sym bounds), so reuse distances
        # through these nests are unknown to the compiler.
        forward = ForLoop(j, 0, Sym("neurons"), [
            ForLoop(i, 0, Sym("inputs"), [
                HeapRowRef(bus, aj, ai, 8),
                HeapRowRef(tds, aj, ai, 8),
                ArrayRef(f1_act, [ai]),
                ArrayRef(f1p, [ai]),
                ArrayRef(f1q, [ai]),
                ArrayRef(f1u, [ai]),
                ArrayRef(f1v, [ai]),
                ArrayRef(f1w, [ai], is_store=True),
                ArrayRef(f1x, [ai], is_store=True),
                Compute(5),
            ]),
            ArrayRef(f2_act, [aj], is_store=True),
        ])
        # Match/learn pass: TRANSPOSED walk of the same heap rows (fix one
        # input, visit every neuron's weight for it) -- the transposed
        # heap-array access of Table 6.  Unknown reuse distance: unhinted.
        learn = ForLoop(i, 0, Sym("inputs"), [
            ForLoop(j, 0, Sym("neurons"), [
                HeapRowRef(bus, aj, ai, 8, is_store=True),
                Compute(2),
            ]),
        ])
        body = ForLoop(t, 0, 8, [forward, learn])
        program = Program("art", [body],
                          bindings={"neurons": neurons, "inputs": inputs})
        return Built(program)
