"""254.gap — computational group theory (C, integer).

GAP runs its own bump ("bag") allocator, so most structures end up
contiguous in the workspace: sequential scans over heap arrays of bag
handles (pointer arrays — spatial *and* pointer hints, the largest
pointer-hint count in Table 3) followed by dereferences into the bags
themselves.  SRP gets near-total coverage (97.6%); GRP covers about
half at 99% accuracy because only the hinted handle scans prefetch.
"""

from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Compute,
    ForLoop,
    HeapRowRef,
    Opaque,
    Program,
    Var,
)
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import build_pointer_rows, materialize


@register
class Gap(Workload):
    """Synthetic stand-in for 254.gap — computational group theory (C, integer)."""

    name = "gap"
    category = "int"
    language = "c"
    default_refs = 120_000
    ops_scale = 41.2

    def build(self, space, scale=1.0):
        n_bags = max(2048, int(4096 * scale))
        bag_elems = 8

        handles = ArrayDecl("handles", 8, [n_bags], storage="heap",
                            is_pointer=True)
        build_pointer_rows(space, handles, n_bags, bag_elems * 8,
                           jitter=96)
        perm = ArrayDecl("perm", 8, [1 << 14], storage="heap")
        materialize(space, perm)

        def orbit_probe(env, r):
            return r.randrange(1 << 14)

        i, j, t = Var("i"), Var("j"), Var("t")
        # Workspace sweep: scan the handle array (spatial+pointer) and
        # touch the first words of each bag.
        sweep = ForLoop(i, 0, n_bags, [
            ForLoop(j, 0, bag_elems, [
                HeapRowRef(handles, Affine.of(i), Affine.of(j), 8),
                Compute(3),
            ]),
        ])
        # Orbit computation: data-dependent probes into the permutation
        # table -- unhinted misses GRP leaves alone.
        orbit = ForLoop(i, 0, 4096, [
            ArrayRef(perm, [Opaque(orbit_probe, "orbit probe")]),
            Compute(5),
        ])
        body = ForLoop(t, 0, 12, [sweep, orbit])
        return Built(Program("gap", [body]))
