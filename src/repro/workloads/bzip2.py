"""256.bzip2 — block-sorting compression (C, integer).

The Burrows-Wheeler inverse transform is the paper's flagship indirect
case: ``tt[ptr[i]]``-style accesses where the index values are a
*random permutation* of the block — no spatial clustering at all, so
region prefetching wastes nearly everything (SRP: 5.3% accuracy, 9.7x
traffic) while GRP's indirect prefetch instructions read a block of 16
indices and prefetch exactly the 16 targets (coverage 37.1% vs SRP's
27.2% at 15% of the traffic).  bzip2 is also one of the three
variable-region benchmarks (Table 4: 76.8% of regions are 2 blocks).
"""

import random

from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Compute,
    ForLoop,
    IndexLoad,
    Program,
    Runtime,
    Var,
)
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import materialize, store_index_array


@register
class Bzip2(Workload):
    """Synthetic stand-in for 256.bzip2 — block-sorting compression (C, integer)."""

    name = "bzip2"
    category = "int"
    language = "c"
    default_refs = 120_000
    ops_scale = 205.1

    def build(self, space, scale=1.0):
        # tt is ~1x the scaled L2 (the paper's ~900 KB BWT blocks sit
        # in the same ratio to its 1 MB L2): about half the random
        # indirect probes hit, and the region prefetches around the other
        # half are where SRP's ~10x traffic comes from.
        block = max(12_288, int(16_384 * scale))
        rng = random.Random(31)
        permutation = list(range(block))
        rng.shuffle(permutation)

        tt = ArrayDecl("tt", 8, [block], storage="heap")
        ptr = ArrayDecl("ptr", 4, [block], storage="heap")
        out = ArrayDecl("out", 8, [block], storage="heap")
        mtf = ArrayDecl("mtf", 8, [1 << 15], storage="heap")
        for arr in (tt, ptr, out, mtf):
            materialize(space, arr)
        store_index_array(space, ptr, permutation)

        i, s, t = Var("i"), Var("s"), Var("t")
        ai = Affine.of(i)
        # Inverse BWT: out[i] = tt[ptr[i]] with randomly permuted ptr.
        unbwt = ForLoop(i, 0, block, [
            ArrayRef(tt, [IndexLoad(ptr, ai)]),
            ArrayRef(out, [ai], is_store=True),
            Compute(4),
        ])

        # MTF/coding phase: short runs at data-dependent offsets in the
        # symbol tables, each run a singly nested loop in its own helper
        # (the source of bzip2's 2-block variable regions in Table 4).
        run_len = 10
        run_starts = {}

        def run_base(env, r):
            key = (env["t"], env["s"])
            if key not in run_starts:
                run_starts[key] = r.randrange((1 << 15) - run_len)
            return run_starts[key]

        mtf_fn = ForLoop(i, 0, run_len, [
            ArrayRef(mtf, [Affine({i: 1}, Runtime(run_base, "mtf run"))]),
            Compute(3),
        ])
        mtf_phase = ForLoop(s, 0, 1024, [mtf_fn], scope_boundary=True)
        body = ForLoop(t, 0, 6, [mtf_phase, unbwt])
        return Built(Program("bzip2", [body]))
