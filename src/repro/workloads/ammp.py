"""188.ammp — molecular dynamics (C, FP).

Table 6: 88.6% of ammp's L2 misses come from **linked list traversal**.
The atom list nodes are large (the real ATOM struct is ~2 KB) and are
visited through a list whose order no longer matches allocation order
after setup.  This is the benchmark where aggressive prefetching
*hurts*: the paper's Table 5 shows SRP and stride at **negative
coverage** (-7.8) and SRP at 0.9% accuracy with 14x traffic — pure
pollution — while GRP stays nearly neutral (coverage 0.7, traffic 1.12)
because few references earn hints.
"""

from repro.compiler.ir import (
    Compute,
    ForLoop,
    PointerVar,
    Program,
    PtrChase,
    PtrRef,
    Sym,
    Var,
    WhileLoop,
)
from repro.compiler.symbols import StructDecl
from repro.workloads.base import Built, Workload, register
from repro.workloads.common import build_linked_list


@register
class Ammp(Workload):
    """Synthetic stand-in for 188.ammp — molecular dynamics (C, FP)."""

    name = "ammp"
    category = "fp"
    language = "c"
    default_refs = 120_000
    ops_scale = 156.8

    def build(self, space, scale=1.0):
        atom = StructDecl("atom_t")
        for k in range(6):
            atom.add_scalar("coord%d" % k, 8)
        atom.add_pointer("next", target="atom_t")
        for k in range(20):
            atom.add_scalar("force%d" % k, 8)

        n_atoms = max(1024, int(2048 * scale))
        head = build_linked_list(
            space, atom, n_atoms, layout="shuffled", spacing=64
        )

        a = PointerVar("a", struct="atom_t")
        t = Var("t")
        # mm_fv_update_nonbon: walk the atom list, touching coordinates
        # and force fields scattered through the big struct.
        walk = WhileLoop(Sym("n_atoms"), [
            PtrRef(a, field=atom.field("coord0")),
            PtrRef(a, field=atom.field("coord3")),
            PtrRef(a, field=atom.field("force0"), is_store=True),
            PtrRef(a, field=atom.field("force12"), is_store=True),
            PtrChase(a, atom.field("next")),
            Compute(14),
        ])
        body = ForLoop(t, 0, 40, [walk])
        program = Program("ammp", [body], bindings={"n_atoms": n_atoms})
        return Built(program, pointer_bindings={"a": head})
