"""Simulated process address space.

The GRP hardware scans fetched cache lines for values that look like heap
pointers (a base-and-bounds check against the heap segment, Section 3.2 of
the paper).  To reproduce that, the simulator needs more than an address
trace: it needs the actual *contents* of memory words that hold pointers.

:class:`AddressSpace` provides

* named segments (static data, heap, stack) laid out like an Alpha process,
* a bump allocator for the heap (``malloc``) with configurable alignment,
* a sparse word-content store: workloads record pointer values (and indirect
  index values) at the addresses where the program stores them, and the
  prefetch engines read them back when scanning fetched lines.

Only words that matter to prefetching (pointers, index arrays) are stored;
bulk numeric data is left implicit, exactly as a trace-driven simulator
would.
"""

from repro.mem.layout import is_power_of_two

POINTER_SIZE = 8
"""Pointers are aligned 8-byte entities (Alpha ISA), per the paper."""


class Segment:
    """A contiguous region of the simulated address space."""

    def __init__(self, name, start, size):
        self.name = name
        self.start = start
        self.size = size

    @property
    def end(self):
        """One past the last byte of the segment."""
        return self.start + self.size

    def contains(self, addr):
        """Return True when ``addr`` falls inside this segment."""
        return self.start <= addr < self.end

    def __repr__(self):
        return "Segment(%r, 0x%x..0x%x)" % (self.name, self.start, self.end)


class OutOfMemoryError(Exception):
    """Raised when an allocation does not fit in the heap segment."""


class AddressSpace:
    """Segments + bump allocator + sparse word-content store."""

    #: Default segment layout, loosely modelled on an Alpha/Tru64 process.
    DEFAULT_STATIC_START = 0x0014_0000
    DEFAULT_STATIC_SIZE = 0x0400_0000  # 64 MB of static data
    DEFAULT_HEAP_START = 0x2000_0000
    DEFAULT_HEAP_SIZE = 0x4000_0000  # 1 GB heap
    DEFAULT_STACK_START = 0x7000_0000
    DEFAULT_STACK_SIZE = 0x0100_0000

    def __init__(
        self,
        static_size=DEFAULT_STATIC_SIZE,
        heap_size=DEFAULT_HEAP_SIZE,
        stack_size=DEFAULT_STACK_SIZE,
        base=0,
    ):
        # ``base`` shifts the whole segment layout: a multi-core co-run
        # gives each core's process image a disjoint region of the
        # physical address space (base = core id x a large power of two),
        # so two replicas of the same workload never alias in a shared
        # cache.  Pointer values recorded by the builders are allocated
        # within the shifted segments, so every base-and-bounds check and
        # content scan stays self-consistent.
        self.base = base
        self.static = Segment(
            "static", base + self.DEFAULT_STATIC_START, static_size)
        self.heap = Segment("heap", base + self.DEFAULT_HEAP_START, heap_size)
        self.stack = Segment(
            "stack", base + self.DEFAULT_STACK_START, stack_size)
        self._heap_brk = self.heap.start
        self._static_brk = self.static.start
        self._words = {}

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def malloc(self, size, align=16):
        """Allocate ``size`` bytes on the heap; return the base address.

        ``align`` must be a power of two.  A 16-byte default mimics common
        malloc implementations, which matters because GRP prefetches two
        blocks per pointer to cover structures straddling a block boundary.
        """
        if size <= 0:
            raise ValueError("allocation size must be positive, got %d" % size)
        if not is_power_of_two(align):
            raise ValueError("alignment must be a power of two, got %d" % align)
        base = (self._heap_brk + align - 1) & ~(align - 1)
        if base + size > self.heap.end:
            raise OutOfMemoryError(
                "heap exhausted: need %d bytes at 0x%x" % (size, base)
            )
        self._heap_brk = base + size
        return base

    def static_alloc(self, size, align=16):
        """Allocate ``size`` bytes of static (global) data; return the base.

        Fortran arrays and C globals live here; the pointer prefetcher's
        base-and-bounds check rejects static addresses, exactly as the
        paper's heap check does.
        """
        if size <= 0:
            raise ValueError("allocation size must be positive, got %d" % size)
        if not is_power_of_two(align):
            raise ValueError("alignment must be a power of two, got %d" % align)
        base = (self._static_brk + align - 1) & ~(align - 1)
        if base + size > self.static.end:
            raise OutOfMemoryError(
                "static segment exhausted: need %d bytes at 0x%x" % (size, base)
            )
        self._static_brk = base + size
        return base

    @property
    def heap_used(self):
        """Bytes of heap currently allocated."""
        return self._heap_brk - self.heap.start

    # ------------------------------------------------------------------
    # Heap bounds check (the pointer prefetcher's base-and-bounds test)
    # ------------------------------------------------------------------
    def is_heap_address(self, value):
        """Return True when ``value`` lies within the *allocated* heap.

        The hardware in the paper checks against the start and end of the
        heap; we tighten the end to the current break so that stale garbage
        beyond the break never passes the test.
        """
        return self.heap.start <= value < self._heap_brk

    # ------------------------------------------------------------------
    # Word content store
    # ------------------------------------------------------------------
    def store_word(self, addr, value, size=POINTER_SIZE):
        """Record that the program stored ``value`` at ``addr``.

        ``size`` is 8 for pointers and typically 4 for indirect index array
        elements.  Addresses must be naturally aligned for their size.
        """
        if addr % size != 0:
            raise ValueError(
                "unaligned %d-byte store at 0x%x" % (size, addr)
            )
        self._words[addr] = (value, size)

    def load_word(self, addr):
        """Return the value stored at ``addr``, or None if nothing recorded."""
        entry = self._words.get(addr)
        return entry[0] if entry is not None else None

    def scan_pointers(self, block_addr, block_size):
        """Return heap-pointer values found in the block at ``block_addr``.

        This is the hardware scan from Section 3.2: examine each aligned
        8-byte slot of the fetched line and keep values that pass the heap
        base-and-bounds check.  Duplicate targets are deduplicated, matching
        a prefetch queue that squashes identical candidates.
        """
        found = []
        seen = set()
        for offset in range(0, block_size, POINTER_SIZE):
            entry = self._words.get(block_addr + offset)
            if entry is None:
                continue
            value, size = entry
            if size != POINTER_SIZE:
                continue
            if self.is_heap_address(value) and value not in seen:
                seen.add(value)
                found.append(value)
        return found

    def read_index_block(self, block_addr, block_size, elem_size=4):
        """Return the index values stored in the block at ``block_addr``.

        Used by the indirect prefetcher: it reads the cache block containing
        ``&b[i]`` and generates one prefetch per index word in the block.
        Slots with no recorded value are skipped (the hardware would generate
        a junk prefetch; skipping models the accuracy of real index data
        without fabricating values).
        """
        values = []
        for offset in range(0, block_size, elem_size):
            entry = self._words.get(block_addr + offset)
            if entry is not None and entry[1] == elem_size:
                values.append(entry[0])
        return values
