"""Set-associative cache with the SRP prefetch-placement policy.

The paper controls cache pollution by inserting prefetched blocks at the
**LRU** position of the target set and only promoting them to MRU when the
CPU references them explicitly (Section 3.1).  In an ``n``-way set, useless
prefetches can therefore displace at most ``1/n`` of the useful data.

Each set is an ordered list of :class:`CacheLine`, index 0 = LRU, last =
MRU.  Associativities in this system are small (2 or 4 way), so linear scans
are cheap and keep the code obvious.
"""

from collections import OrderedDict

from repro.mem.layout import block_base, is_power_of_two


class CacheLine:
    """One resident block: tag plus the bookkeeping bits the policy needs."""

    __slots__ = ("block", "dirty", "prefetched", "referenced")

    def __init__(self, block, prefetched=False):
        self.block = block
        self.dirty = False
        self.prefetched = prefetched
        self.referenced = not prefetched

    def __repr__(self):
        return "CacheLine(0x%x%s%s)" % (
            self.block,
            " pf" if self.prefetched else "",
            " dirty" if self.dirty else "",
        )


class CacheStats:
    """Counters for one cache level.

    Prefetch accuracy is defined as in the paper's Table 5: the fraction of
    prefetched blocks that the CPU references before they leave the cache.
    Blocks still resident-but-unreferenced at the end of simulation count as
    useless, which ``finalize`` folds in.
    """

    def __init__(self):
        self.demand_accesses = 0
        self.demand_hits = 0
        self.demand_misses = 0
        self.prefetch_fills = 0
        self.useful_prefetches = 0
        self.useless_evicted_prefetches = 0
        self.writebacks = 0
        self.prefetch_hits_squashed = 0
        #: Demand misses to blocks a prefetch fill evicted (shadow-tag
        #: attribution): the paper's cache-pollution cost, directly.
        self.pollution_misses = 0
        #: Evictions caused by prefetch fills (the shadow set's inflow).
        self.prefetch_evictions = 0

    @property
    def miss_rate(self):
        """Demand miss rate (misses / accesses); 0.0 when idle."""
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_misses / self.demand_accesses

    def prefetch_accuracy(self, resident_unreferenced=0):
        """Useful prefetches / all prefetch fills, counting stragglers useless."""
        if self.prefetch_fills == 0:
            return 0.0
        return self.useful_prefetches / self.prefetch_fills

    def snapshot(self):
        """Return a plain dict of the counters (for reports and tests)."""
        return {
            "demand_accesses": self.demand_accesses,
            "demand_hits": self.demand_hits,
            "demand_misses": self.demand_misses,
            "prefetch_fills": self.prefetch_fills,
            "useful_prefetches": self.useful_prefetches,
            "useless_evicted_prefetches": self.useless_evicted_prefetches,
            "writebacks": self.writebacks,
            "pollution_misses": self.pollution_misses,
            "prefetch_evictions": self.prefetch_evictions,
            "miss_rate": self.miss_rate,
        }


class Cache:
    """A write-back, write-allocate, LRU set-associative cache."""

    def __init__(self, name, size, assoc, block_size, latency,
                 prefetch_insert="lru"):
        if prefetch_insert not in ("lru", "mru"):
            raise ValueError("prefetch_insert must be 'lru' or 'mru'")
        if not is_power_of_two(block_size):
            raise ValueError("block size must be a power of two")
        if size % (assoc * block_size) != 0:
            raise ValueError(
                "cache size %d not divisible by assoc*block (%d*%d)"
                % (size, assoc, block_size)
            )
        self.name = name
        self.size = size
        self.prefetch_insert = prefetch_insert
        self.assoc = assoc
        self.block_size = block_size
        self.latency = latency
        self.num_sets = size // (assoc * block_size)
        if not is_power_of_two(self.num_sets):
            raise ValueError("number of sets must be a power of two")
        self._sets = [[] for _ in range(self.num_sets)]
        self._set_mask = self.num_sets - 1
        self._block_shift = block_size.bit_length() - 1
        self.stats = CacheStats()
        #: Shadow victim set for pollution attribution: blocks most
        #: recently evicted *by a prefetch fill*.  A demand miss that hits
        #: this set is a pollution miss — the prefetch displaced data the
        #: program still needed.  Bounded to one full tag array's worth of
        #: entries (FIFO), like a hardware shadow-tag structure.
        self._shadow = OrderedDict()
        self._shadow_capacity = self.num_sets * assoc
        #: Optional observer with ``on_fill(cache, block, prefetched)``,
        #: ``on_evict(cache, block, prefetched, referenced, by_prefetch)``,
        #: ``on_demand_hit(cache, block, first_use)`` and
        #: ``on_demand_miss(cache, block, polluted)`` hooks — the metrics
        #: layer's tracing tap.  None (the default) costs one comparison
        #: per event.
        self.observer = None

    # ------------------------------------------------------------------
    def _set_index(self, block):
        return (block >> self._block_shift) & self._set_mask

    def _find(self, block):
        """Return (set, position) of ``block``, or (set, -1) when absent."""
        lines = self._sets[self._set_index(block)]
        for pos, line in enumerate(lines):
            if line.block == block:
                return lines, pos
        return lines, -1

    # ------------------------------------------------------------------
    def access(self, addr, is_store=False):
        """Demand access to the block containing ``addr``.

        Returns True on hit.  Hits promote the line to MRU; a first demand
        touch of a prefetched line records a useful prefetch.  Misses are
        counted but the fill is the caller's job (via :meth:`fill`), because
        fill timing depends on the memory system.
        """
        block = block_base(addr, self.block_size)
        self.stats.demand_accesses += 1
        lines, pos = self._find(block)
        if pos < 0:
            self.stats.demand_misses += 1
            polluted = self._shadow.pop(block, None) is not None
            if polluted:
                self.stats.pollution_misses += 1
            if self.observer is not None:
                self.observer.on_demand_miss(self, block, polluted)
            return False
        line = lines.pop(pos)
        lines.append(line)  # promote to MRU
        first_use = not line.referenced
        if first_use:
            line.referenced = True
            self.stats.useful_prefetches += 1
        if is_store:
            line.dirty = True
        self.stats.demand_hits += 1
        if self.observer is not None:
            self.observer.on_demand_hit(self, block, first_use)
        return True

    def contains(self, addr):
        """Return True when ``addr``'s block is resident.  No side effects."""
        _, pos = self._find(block_base(addr, self.block_size))
        return pos >= 0

    def fill(self, addr, prefetched=False, is_store=False):
        """Install the block containing ``addr``.

        Demand fills go to MRU; prefetch fills go to the LRU position (the
        paper's pollution control).  Returns the evicted block address when
        a dirty line was displaced (the caller issues the writeback), else
        None.  A prefetch fill of an already-resident block is squashed.
        """
        block = block_base(addr, self.block_size)
        lines, pos = self._find(block)
        if pos >= 0:
            if prefetched:
                # Redundant prefetch: block already arrived (e.g. via a
                # demand miss that raced the prefetch).  Nothing to do.
                self.stats.prefetch_hits_squashed += 1
                return None
            line = lines.pop(pos)
            lines.append(line)
            if is_store:
                line.dirty = True
            return None
        writeback = None
        if len(lines) >= self.assoc:
            victim = lines.pop(0)  # LRU
            if victim.prefetched and not victim.referenced:
                self.stats.useless_evicted_prefetches += 1
            if prefetched:
                # Shadow the victim: a later demand miss to it is cache
                # pollution chargeable to this prefetch fill.
                self.stats.prefetch_evictions += 1
                self._shadow[victim.block] = True
                if len(self._shadow) > self._shadow_capacity:
                    self._shadow.popitem(last=False)
            if victim.dirty:
                self.stats.writebacks += 1
                writeback = victim.block
            if self.observer is not None:
                self.observer.on_evict(self, victim.block, victim.prefetched,
                                       victim.referenced, prefetched)
        # The block is resident again: any pending pollution attribution
        # against it is moot.
        self._shadow.pop(block, None)
        line = CacheLine(block, prefetched=prefetched)
        if is_store:
            line.dirty = True
        if prefetched and self.prefetch_insert == "lru":
            lines.insert(0, line)  # LRU position: pollution control
        else:
            lines.append(line)  # MRU
        if prefetched:
            self.stats.prefetch_fills += 1
        if self.observer is not None:
            self.observer.on_fill(self, block, prefetched)
        return writeback

    def invalidate(self, addr):
        """Drop ``addr``'s block if resident; returns True if it was."""
        block = block_base(addr, self.block_size)
        lines, pos = self._find(block)
        if pos < 0:
            return False
        lines.pop(pos)
        return True

    def resident_blocks(self):
        """Yield all resident block addresses (for tests and invariants)."""
        for lines in self._sets:
            for line in lines:
                yield line.block

    def resident_unreferenced_prefetches(self):
        """Count prefetched blocks never demanded (for final accuracy)."""
        count = 0
        for lines in self._sets:
            for line in lines:
                if line.prefetched and not line.referenced:
                    count += 1
        return count

    def __len__(self):
        return sum(len(lines) for lines in self._sets)
