"""Set-associative cache with the SRP prefetch-placement policy.

The paper controls cache pollution by inserting prefetched blocks at the
**LRU** position of the target set and only promoting them to MRU when the
CPU references them explicitly (Section 3.1).  In an ``n``-way set, useless
prefetches can therefore displace at most ``1/n`` of the useful data.

Each set is an ordered list of :class:`CacheLine`, index 0 = LRU, last =
MRU.  A cache-wide tag index (``{block: CacheLine}``) makes membership
tests O(1) — the simulate loop probes residency far more often than it
hits — while the per-set lists, at most ``assoc`` (2 or 4) entries long,
keep the replacement order obvious.
"""

from repro.mem.layout import is_power_of_two


def normalize_prefetch_insert(value, assoc):
    """Map a prefetch insertion spec to an integer depth.

    Depth 0 is the LRU position (the paper's pollution control), ``assoc``
    (or anything >= the set occupancy) is MRU.  The historical string
    policies remain as aliases: ``"lru"`` -> 0, ``"mru"`` -> ``assoc``.
    Raises ValueError for anything else — unknown strings, negative or
    non-integer depths.
    """
    if value == "lru":
        return 0
    if value == "mru":
        return assoc
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            "prefetch_insert must be 'lru', 'mru', or a non-negative "
            "integer insertion depth, not %r" % (value,))
    if value < 0:
        raise ValueError(
            "prefetch insertion depth must be >= 0, not %d" % value)
    return value


class CacheLine:
    """One resident block: tag plus the bookkeeping bits the policy needs.

    ``owner`` is the id of the core whose fill installed the line; it is
    always 0 in a single-core hierarchy and only read when a shared cache
    has per-core attribution enabled (see :meth:`Cache.enable_core_stats`).
    """

    __slots__ = ("block", "dirty", "prefetched", "referenced", "owner")

    def __init__(self, block, prefetched=False, owner=0):
        self.block = block
        self.dirty = False
        self.prefetched = prefetched
        self.referenced = not prefetched
        self.owner = owner

    def __repr__(self):
        return "CacheLine(0x%x%s%s)" % (
            self.block,
            " pf" if self.prefetched else "",
            " dirty" if self.dirty else "",
        )


class CacheStats:
    """Counters for one cache level.

    Prefetch accuracy is defined as in the paper's Table 5: the fraction of
    prefetched blocks that the CPU references before they leave the cache.
    Blocks still resident-but-unreferenced at the end of simulation count as
    useless, which ``finalize`` folds in.
    """

    def __init__(self):
        self.demand_accesses = 0
        self.demand_hits = 0
        self.demand_misses = 0
        self.prefetch_fills = 0
        self.useful_prefetches = 0
        self.useless_evicted_prefetches = 0
        self.writebacks = 0
        self.prefetch_hits_squashed = 0
        #: Demand misses to blocks a prefetch fill evicted (shadow-tag
        #: attribution): the paper's cache-pollution cost, directly.
        self.pollution_misses = 0
        #: Evictions caused by prefetch fills (the shadow set's inflow).
        self.prefetch_evictions = 0

    @property
    def miss_rate(self):
        """Demand miss rate (misses / accesses); 0.0 when idle."""
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_misses / self.demand_accesses

    def prefetch_accuracy(self, resident_unreferenced=0):
        """Fraction of prefetched blocks the CPU referenced.

        The denominator is the *decided* prefetches — useful plus evicted
        useless — plus ``resident_unreferenced``, the caller's count of
        prefetched lines still resident and untouched (see
        :meth:`Cache.resident_unreferenced_prefetches`).  Passing that
        count folds the stragglers in as useless, which is the paper's
        end-of-run definition; at that point the denominator equals
        ``prefetch_fills`` exactly.  With the default of 0, accuracy is
        over decided prefetches only — the mid-run reading, where
        still-resident lines haven't had their chance yet.
        """
        decided = self.useful_prefetches + self.useless_evicted_prefetches
        denominator = decided + resident_unreferenced
        if denominator == 0:
            return 0.0
        return self.useful_prefetches / denominator

    def snapshot(self):
        """Return a plain dict of the counters (for reports and tests)."""
        return {
            "demand_accesses": self.demand_accesses,
            "demand_hits": self.demand_hits,
            "demand_misses": self.demand_misses,
            "prefetch_fills": self.prefetch_fills,
            "useful_prefetches": self.useful_prefetches,
            "useless_evicted_prefetches": self.useless_evicted_prefetches,
            "writebacks": self.writebacks,
            "pollution_misses": self.pollution_misses,
            "prefetch_evictions": self.prefetch_evictions,
            "miss_rate": self.miss_rate,
        }


class Cache:
    """A write-back, write-allocate, LRU set-associative cache."""

    def __init__(self, name, size, assoc, block_size, latency,
                 prefetch_insert="lru"):
        if not is_power_of_two(block_size):
            raise ValueError("block size must be a power of two")
        if size % (assoc * block_size) != 0:
            raise ValueError(
                "cache size %d not divisible by assoc*block (%d*%d)"
                % (size, assoc, block_size)
            )
        self.name = name
        self.size = size
        self.prefetch_insert = prefetch_insert
        self.prefetch_insert_depth = normalize_prefetch_insert(
            prefetch_insert, assoc)
        self.assoc = assoc
        self.block_size = block_size
        self.latency = latency
        self.num_sets = size // (assoc * block_size)
        if not is_power_of_two(self.num_sets):
            raise ValueError("number of sets must be a power of two")
        self._sets = [[] for _ in range(self.num_sets)]
        self._set_mask = self.num_sets - 1
        self._block_shift = block_size.bit_length() - 1
        self._block_mask = ~(block_size - 1)
        #: Tag index: {resident block -> its CacheLine}.  Makes membership
        #: (the common case on the miss-heavy paths: ``contains``, fills,
        #: miss detection) one dict probe; the per-set LRU lists are only
        #: scanned on hits, where they hold at most ``assoc`` lines.
        self._index = {}
        self.stats = CacheStats()
        #: Shadow victim set for pollution attribution: blocks most
        #: recently evicted *by a prefetch fill*.  A demand miss that hits
        #: this set is a pollution miss — the prefetch displaced data the
        #: program still needed.  Bounded to one full tag array's worth of
        #: entries (FIFO), like a hardware shadow-tag structure.  A
        #: plain insertion-ordered dict: re-shadowing a still-present
        #: block keeps its queue position (exactly as before), and the
        #: FIFO drop removes the oldest key — first in iteration order.
        self._shadow = {}
        self._shadow_capacity = self.num_sets * assoc
        #: Optional observer with ``on_fill(cache, block, prefetched)``,
        #: ``on_evict(cache, block, prefetched, referenced, by_prefetch)``,
        #: ``on_demand_hit(cache, block, first_use)`` and
        #: ``on_demand_miss(cache, block, polluted)`` hooks — the metrics
        #: layer's tracing tap.  None (the default) costs one comparison
        #: per event.
        self.observer = None
        #: Per-core attribution (multi-core shared caches only): a list
        #: of :class:`CacheStats`, one per core, or None (the default —
        #: private caches pay one load + branch per event).  The stepping
        #: loop sets ``active_core`` before each core's event; every
        #: shared-counter increment is mirrored into exactly one per-core
        #: slot, so the per-core counters sum to the shared ones by
        #: construction.  See :meth:`enable_core_stats` for the
        #: attribution rules.
        self.core_stats = None
        self.active_core = 0
        #: Optional cross-core interference tap (duck-typed; see
        #: ``repro.sim.multicore.InterferenceMatrix``).  Only consulted
        #: when ``core_stats`` is enabled.
        self.interference = None

    # ------------------------------------------------------------------
    def _set_index(self, block):
        return (block >> self._block_shift) & self._set_mask

    # ------------------------------------------------------------------
    def access(self, addr, is_store=False):
        """Demand access to the block containing ``addr``.

        Returns True on hit.  Hits promote the line to MRU; a first demand
        touch of a prefetched line records a useful prefetch.  Misses are
        counted but the fill is the caller's job (via :meth:`fill`), because
        fill timing depends on the memory system.
        """
        return self.access_block(addr & self._block_mask, is_store=is_store)

    def access_block(self, block, is_store=False):
        """:meth:`access` for callers that already hold the block base."""
        stats = self.stats
        stats.demand_accesses += 1
        core_stats = self.core_stats
        if core_stats is not None:
            cstats = core_stats[self.active_core]
            cstats.demand_accesses += 1
        else:
            cstats = None
        line = self._index.get(block)
        if line is None:
            stats.demand_misses += 1
            # The shadow set stores the evicting core's id (0 in a
            # single-core hierarchy); presence alone marks pollution.
            evicter = self._shadow.pop(block, None)
            polluted = evicter is not None
            if polluted:
                stats.pollution_misses += 1
            if cstats is not None:
                cstats.demand_misses += 1
                if polluted:
                    cstats.pollution_misses += 1
                    if evicter != self.active_core \
                            and self.interference is not None:
                        self.interference.note_pollution(
                            evicter, self.active_core)
            if self.observer is not None:
                self.observer.on_demand_miss(self, block, polluted)
            return False
        lines = self._sets[(block >> self._block_shift) & self._set_mask]
        if lines[-1] is not line:
            lines.remove(line)
            lines.append(line)  # promote to MRU
        first_use = not line.referenced
        if first_use:
            line.referenced = True
            stats.useful_prefetches += 1
            if core_stats is not None:
                # Useful prefetches credit the core that prefetched the
                # line, not (necessarily) the core touching it.
                core_stats[line.owner].useful_prefetches += 1
        if is_store:
            line.dirty = True
        stats.demand_hits += 1
        if cstats is not None:
            cstats.demand_hits += 1
        if self.observer is not None:
            self.observer.on_demand_hit(self, block, first_use)
        return True

    def contains(self, addr):
        """Return True when ``addr``'s block is resident.  No side effects."""
        return (addr & self._block_mask) in self._index

    def contains_block(self, block):
        """:meth:`contains` for callers that already hold the block base."""
        return block in self._index

    @property
    def resident_map(self):
        """Live mapping whose keys are the resident block addresses.

        Residency-probe-heavy callers (the prefetch queues test every
        block of a region at allocation) use ``block in resident_map``
        directly instead of a :meth:`contains_block` call per block.
        Callers must treat the mapping as read-only.
        """
        return self._index

    def fill(self, addr, prefetched=False, is_store=False):
        """Install the block containing ``addr``.

        Demand fills go to MRU; prefetch fills go to the configured
        insertion depth (LRU by default — the paper's pollution control).
        Returns the evicted block address when
        a dirty line was displaced (the caller issues the writeback), else
        None.  A prefetch fill of an already-resident block is squashed.
        """
        block = addr & self._block_mask
        index = self._index
        existing = index.get(block)
        if existing is not None:
            if prefetched:
                # Redundant prefetch: block already arrived (e.g. via a
                # demand miss that raced the prefetch).  Nothing to do.
                self.stats.prefetch_hits_squashed += 1
                return None
            lines = self._sets[(block >> self._block_shift) & self._set_mask]
            if lines[-1] is not existing:
                lines.remove(existing)
                lines.append(existing)
            if is_store:
                existing.dirty = True
            return None
        stats = self.stats
        core_stats = self.core_stats
        active = self.active_core
        shadow = self._shadow
        lines = self._sets[(block >> self._block_shift) & self._set_mask]
        writeback = None
        if len(lines) >= self.assoc:
            victim = lines.pop(0)  # LRU
            del index[victim.block]
            if victim.prefetched and not victim.referenced:
                stats.useless_evicted_prefetches += 1
                if core_stats is not None:
                    core_stats[victim.owner].useless_evicted_prefetches += 1
            if prefetched:
                # Shadow the victim: a later demand miss to it is cache
                # pollution chargeable to this prefetch fill.  The stored
                # value is the evicting core's id (0 single-core).
                stats.prefetch_evictions += 1
                shadow[victim.block] = active
                if len(shadow) > self._shadow_capacity:
                    del shadow[next(iter(shadow))]  # FIFO: oldest entry
                if core_stats is not None:
                    core_stats[active].prefetch_evictions += 1
            if core_stats is not None:
                if victim.dirty:
                    core_stats[active].writebacks += 1
                if victim.owner != active and self.interference is not None:
                    self.interference.note_eviction(
                        active, victim.owner, prefetched)
            if victim.dirty:
                stats.writebacks += 1
                writeback = victim.block
            if self.observer is not None:
                self.observer.on_evict(self, victim.block, victim.prefetched,
                                       victim.referenced, prefetched)
        # The block is resident again: any pending pollution attribution
        # against it is moot.
        shadow.pop(block, None)
        line = CacheLine(block, prefetched=prefetched, owner=active)
        if is_store:
            line.dirty = True
        if prefetched:
            depth = self.prefetch_insert_depth
            if depth >= len(lines):
                lines.append(line)  # MRU
            else:
                lines.insert(depth, line)  # 0 = LRU: pollution control
        else:
            lines.append(line)  # MRU
        index[block] = line
        if prefetched:
            stats.prefetch_fills += 1
            if core_stats is not None:
                core_stats[active].prefetch_fills += 1
        if self.observer is not None:
            self.observer.on_fill(self, block, prefetched)
        return writeback

    def fill_prefetch_block(self, block):
        """:meth:`fill` specialized to ``(block, prefetched=True)``.

        Replicates the generic fill's semantics for the prefetch case
        operation for operation (squash when resident, shadow the victim,
        LRU/MRU insert per policy) with the demand-only branches removed;
        the prefetch fill path runs this once per issued prefetch.
        """
        index = self._index
        if block in index:
            self.stats.prefetch_hits_squashed += 1
            return None
        stats = self.stats
        core_stats = self.core_stats
        active = self.active_core
        shadow = self._shadow
        lines = self._sets[(block >> self._block_shift) & self._set_mask]
        writeback = None
        victim = None
        if len(lines) >= self.assoc:
            victim = lines.pop(0)  # LRU
            del index[victim.block]
            if victim.prefetched and not victim.referenced:
                stats.useless_evicted_prefetches += 1
                if core_stats is not None:
                    core_stats[victim.owner].useless_evicted_prefetches += 1
            stats.prefetch_evictions += 1
            shadow[victim.block] = active
            if len(shadow) > self._shadow_capacity:
                del shadow[next(iter(shadow))]  # FIFO: oldest entry
            if core_stats is not None:
                core_stats[active].prefetch_evictions += 1
                if victim.dirty:
                    core_stats[active].writebacks += 1
                if victim.owner != active and self.interference is not None:
                    self.interference.note_eviction(
                        active, victim.owner, True)
            if victim.dirty:
                stats.writebacks += 1
                writeback = victim.block
            if self.observer is not None:
                self.observer.on_evict(self, victim.block, victim.prefetched,
                                       victim.referenced, True)
        if shadow:
            shadow.pop(block, None)
        if victim is not None:
            # Recycle the evicted line object: nothing holds a reference
            # to it once it leaves the set list and the tag index (the
            # shadow stores the block address, the observer got scalars),
            # so resetting its fields replaces an allocation per fill on
            # the hottest path of prefetch-heavy schemes.
            line = victim
            line.block = block
            line.dirty = False
            line.prefetched = True
            line.referenced = False
            line.owner = active
        else:
            line = CacheLine(block, prefetched=True, owner=active)
        depth = self.prefetch_insert_depth
        if depth >= len(lines):
            lines.append(line)  # MRU
        else:
            lines.insert(depth, line)  # 0 = LRU: pollution control
        index[block] = line
        stats.prefetch_fills += 1
        if core_stats is not None:
            core_stats[active].prefetch_fills += 1
        if self.observer is not None:
            self.observer.on_fill(self, block, True)
        return writeback

    def set_prefetch_insert(self, value):
        """Change the prefetch insertion policy live.

        Accepts the same forms as the constructor (``"lru"``/``"mru"`` or
        an integer depth); resident lines keep their current positions —
        only future fills see the new depth.  This is the adaptive
        throttle policy's insertion-depth knob.
        """
        self.prefetch_insert_depth = normalize_prefetch_insert(
            value, self.assoc)
        self.prefetch_insert = value

    def invalidate(self, addr):
        """Drop ``addr``'s block if resident; returns True if it was."""
        block = addr & self._block_mask
        line = self._index.pop(block, None)
        if line is None:
            return False
        self._sets[(block >> self._block_shift) & self._set_mask].remove(line)
        return True

    def resident_blocks(self):
        """Yield all resident block addresses (for tests and invariants)."""
        for lines in self._sets:
            for line in lines:
                yield line.block

    def enable_core_stats(self, n_cores):
        """Switch on per-core attribution for a shared cache.

        Allocates one :class:`CacheStats` per core.  The attribution
        rules, chosen so each per-core column has a single unambiguous
        debtor and the columns sum to the shared counters:

        * demand accesses / hits / misses / pollution misses — the
          **accessing** core (``active_core``);
        * prefetch fills, prefetch evictions, writebacks — the **active**
          core whose fill or eviction performed the work;
        * useful prefetches and useless evicted prefetches — the line's
          **owner** (the core whose fill installed it).

        Cross-core events (a fill evicting another core's line, a demand
        miss to a block another core's prefetch displaced) are
        additionally reported to :attr:`interference` when set.
        """
        self.core_stats = [CacheStats() for _ in range(n_cores)]
        return self.core_stats

    def resident_unreferenced_prefetches(self, owner=None):
        """Count prefetched blocks never demanded (for final accuracy).

        With ``owner`` set, count only lines installed by that core —
        the per-core accuracy denominator in a shared cache.
        """
        count = 0
        for lines in self._sets:
            for line in lines:
                if line.prefetched and not line.referenced \
                        and (owner is None or line.owner == owner):
                    count += 1
        return count

    def __len__(self):
        return len(self._index)
