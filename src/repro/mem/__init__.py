"""Memory-system substrate: address space, caches, MSHRs, DRAM, controller.

This package implements every hardware structure below the CPU core that the
GRP paper's evaluation depends on: a simulated process address space with a
heap allocator and word-content store (so pointer prefetchers can scan fetched
lines for real pointer values), set-associative caches with the
prefetch-at-LRU insertion policy, miss status holding registers, a
multi-channel banked DRAM model with open-page row buffers, and the memory
controller with SRP's demand-first access prioritizer.
"""

from repro.mem.layout import (
    block_base,
    block_index_in_region,
    blocks_in_region,
    region_base,
)
from repro.mem.space import AddressSpace, Segment
from repro.mem.cache import Cache, CacheStats
from repro.mem.mshr import MSHRFile
from repro.mem.dram import DRAMConfig, DRAMSystem
from repro.mem.controller import MemoryController
from repro.mem.hierarchy import Hierarchy, HierarchyStats

__all__ = [
    "AddressSpace",
    "Cache",
    "CacheStats",
    "DRAMConfig",
    "DRAMSystem",
    "Hierarchy",
    "HierarchyStats",
    "MSHRFile",
    "MemoryController",
    "Segment",
    "block_base",
    "block_index_in_region",
    "blocks_in_region",
    "region_base",
]
