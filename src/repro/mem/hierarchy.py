"""The full memory hierarchy: L1D, unified L2, MSHRs, controller, DRAM.

This is the component the CPU timing model talks to.  Each call to
:meth:`Hierarchy.access` simulates one memory reference arriving at cycle
``now`` and returns the cycle at which its data is available.

Modes
-----
``real``
    The full hierarchy (default).
``perfect_l1``
    Every reference completes in the L1 hit latency — the paper's
    "perfect L1" bar in Figure 1.
``perfect_l2``
    The L1 is real, but every L1 miss hits in the L2 — the "perfect L2"
    bar, which defines the performance gap all prefetchers chase.

Prefetch timing
---------------
Prefetched blocks are installed in the L2 when the controller issues them,
but their *data-ready* cycle is remembered.  A demand access that finds a
still-in-flight prefetched block waits for the remaining latency — a late
prefetch hides only part of the miss (these show up in
``stats.late_prefetch_hits``).
"""

import heapq

from repro.mem.cache import Cache
from repro.mem.controller import MemoryController
from repro.mem.dram import DRAMSystem
from repro.mem.mshr import MSHRFile
from repro.mem.tlb import TLB
from repro.metrics import MetricsCollector
from repro.prefetch.base import Prefetcher


class HierarchyStats:
    """Aggregate counters across the hierarchy for one simulation."""

    def __init__(self):
        self.loads = 0
        self.stores = 0
        self.late_prefetch_hits = 0
        self.mshr_merge_waits = 0

    def snapshot(self):
        return {
            "loads": self.loads,
            "stores": self.stores,
            "late_prefetch_hits": self.late_prefetch_hits,
            "mshr_merge_waits": self.mshr_merge_waits,
        }


class Hierarchy:
    """L1 + L2 + MSHRs + memory controller + DRAM, with prefetcher hooks."""

    def __init__(self, config, space, prefetcher=None, mode="real",
                 trace_sink=None, reference=False, shared=None, core_id=0):
        if mode not in ("real", "perfect_l1", "perfect_l2"):
            raise ValueError("unknown hierarchy mode %r" % mode)
        self.config = config
        self.space = space
        self.mode = mode
        self.block_size = config.block_size
        self._block_mask = ~(config.block_size - 1)
        self._perfect_l1 = mode == "perfect_l1"
        self._perfect_l2 = mode == "perfect_l2"
        #: Multi-core wiring: ``shared`` is a duck-typed bundle (see
        #: ``repro.sim.multicore.SharedMemorySystem``) carrying the L2,
        #: MSHR file, DRAM, and in-flight prefetch ready-time structures
        #: that all cores contend for.  None (the default) builds the
        #: private single-core stack below, byte-identically to before.
        #: Cores must replay *disjoint* physical address ranges (the
        #: builders shift each core's AddressSpace base), so a block is
        #: only ever filled by its owning core.
        self._shared = shared
        self.core_id = core_id
        self.l1 = Cache(
            "L1D", config.l1_size, config.l1_assoc, config.block_size,
            config.l1_latency,
        )
        if shared is None:
            self.l2 = Cache(
                "L2", config.l2_size, config.l2_assoc, config.block_size,
                config.l2_latency, prefetch_insert=config.prefetch_insert,
            )
            self.l2_mshrs = MSHRFile(config.mshr_entries)
            self.dram = DRAMSystem(config.dram)
            self._prefetch_ready = {}
            self._ready_heap = []
        else:
            self.l2 = shared.l2
            self.l2_mshrs = shared.mshrs
            self.dram = shared.dram
            self._prefetch_ready = shared.prefetch_ready
            self._ready_heap = shared.ready_heap
        self.controller = MemoryController(self.dram, prefetcher)
        self.controller.core_id = core_id
        self.controller.fill_prefetch = self._fill_prefetch
        self.controller.is_resident = self.l2.contains_block
        self.controller.resident_map = self.l2.resident_map
        self.controller.mshrs = self.l2_mshrs
        self.prefetcher = prefetcher
        if prefetcher is not None:
            prefetcher.attach(self, space, config)
            # Bind the candidate probe once (collapsing the engine's
            # delegation to its region queue): it runs per demand access.
            queue = getattr(prefetcher, "queue", None)
            self._has_candidates = (
                queue.has_candidates if queue is not None
                else prefetcher.has_candidates
            )
            # Resolve the per-fill hook once: engines that inherit the
            # base no-op (SRP) skip the call entirely on the fill path.
            hook = getattr(type(prefetcher), "on_prefetch_fill", None)
            if hook is Prefetcher.on_prefetch_fill:
                self._pf_on_fill = None
            else:
                self._pf_on_fill = getattr(
                    prefetcher, "on_prefetch_fill", None
                )
            self._pf_fills_l2 = getattr(prefetcher, "fills_l2", True)
            #: Adaptive engines build their AdaptiveController during
            #: attach; the CPU replay loops pick it up from here and
            #: drive its per-reference epoch check.  None for static
            #: engines.
            self.adapt = getattr(prefetcher, "adapt", None)
        else:
            self._has_candidates = None
            self._pf_on_fill = None
            self._pf_fills_l2 = True
            self.adapt = None
        self.tlb = (
            TLB(config.tlb_entries, config.tlb_assoc,
                config.tlb_page_size, config.tlb_miss_latency)
            if getattr(config, "tlb_entries", 0)
            else None
        )
        self.stats = HierarchyStats()
        # ``_prefetch_ready`` (set above, possibly shared): {block ->
        # data-ready cycle} for in-flight prefetch fills.  ``_ready_heap``
        # is a min-heap of (ready, block) mirroring it with lazy deletion:
        # entries popped from the dict (demand touches) or superseded by a
        # re-prefetch go stale in the heap and are skipped when popped.
        # Pruning is therefore O(log n) amortized per fill instead of a
        # full-dict scan at every threshold hit.
        # Observability layer: always collects the summary metrics; the
        # per-event trace hooks are installed only when a sink is given.
        self.metrics = MetricsCollector(sink=trace_sink)
        self.metrics.attach(self)
        #: Fast-path gating (semantics-preserving, hence off for
        #: ``reference`` runs, whose stats the differential tests compare
        #: byte-for-byte against the optimized default):
        #: * prefetch catch-up is skipped while the engine's candidate
        #:   queue is verifiably empty (``Prefetcher.has_candidates``);
        #: * the metrics tick is skipped between sampling boundaries when
        #:   no trace sink needs per-access timestamps.
        self.reference = reference
        self._fast_prefetch = not reference
        self._fast_metrics = not reference and trace_sink is None
        # The controller's blocked-issue cache is an optimization too:
        # reference runs never arm it, so the differential tests exercise
        # the uncached probe sequence against the cached one.
        self.controller._cache_blocked = not reference

    # ------------------------------------------------------------------
    # Prefetch fill path (controller callback)
    # ------------------------------------------------------------------
    def _fill_prefetch(self, request, ready):
        block = request.block
        if self._pf_fills_l2:
            if not self._fast_metrics:
                # Stamp the collector's clock before the fill so any
                # eviction the fill causes is traced at the fill's ready
                # time.  Without a sink (and outside reference runs) the
                # stamp is unread — no observers are installed.
                self.metrics.on_prefetch_fill(request, ready)
            writeback = self.l2.fill_prefetch_block(block)
            if writeback is not None:
                self.controller.writeback(writeback, ready)
            self._prefetch_ready[block] = ready
            heapq.heappush(self._ready_heap, (ready, block))
            if len(self._prefetch_ready) > 4096:
                self._prune_ready(ready)
        if self._pf_on_fill is not None:
            self._pf_on_fill(request, ready)

    def _prune_ready(self, now):
        """Drop ready-time entries for prefetches whose data has landed.

        The dict stays authoritative; the heap orders the drops.  A heap
        entry whose ready time no longer matches the dict's (demand touch
        popped it, or a re-prefetch of the same block superseded it) is
        stale and skipped.
        """
        heap = self._ready_heap
        ready_map = self._prefetch_ready
        while heap and heap[0][0] <= now:
            ready, block = heapq.heappop(heap)
            if ready_map.get(block) == ready:
                del ready_map[block]

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------
    def access(self, addr, now, is_store=False, ref_id=None, hint=None):
        """Simulate one reference; return its data-ready cycle."""
        if is_store:
            self.stats.stores += 1
        else:
            self.stats.loads += 1
        if self._perfect_l1:
            return now + self.l1.latency
        if self.tlb is not None:
            # The page walk serializes before the cache lookup.
            now = now + self.tlb.lookup(addr)
        # Catch up on prefetch issue for the idle time that elapsed before
        # this access: prefetches queued earlier may have completed (or be
        # in flight) by now, turning this lookup into a (late) hit.
        if self._fast_prefetch:
            has_candidates = self._has_candidates
            if has_candidates is not None and has_candidates():
                self.controller.issue_prefetches(now)
        else:
            self.controller.issue_prefetches(now)
        metrics = self.metrics
        if not self._fast_metrics or now >= metrics.series._next:
            # Between sampling boundaries the tick is a no-op unless a
            # trace sink needs per-access timestamps; the boundary test
            # mirrors IntervalSeries.due exactly.
            metrics.tick(now)
        block = addr & self._block_mask
        if self.l1.access_block(block, is_store=is_store):
            return now + self.l1.latency
        return self.access_after_l1_miss(block, addr, now, is_store,
                                         ref_id, hint)

    def access_after_l1_miss(self, block, addr, now, is_store, ref_id, hint):
        """The L2-and-below half of :meth:`access`.

        Split out so :meth:`Core.execute_compiled`'s fused loop, which
        inlines the L1 probe, can fall into the identical miss handling.
        """
        # L1 miss: the L2 lookup starts after the L1 probe.
        t = now + self.l1.latency
        completion = self._l2_access(block, addr, t, is_store, ref_id, hint)
        # Fill L1; a dirty victim merges into the L2 copy when present.
        l1_victim = self.l1.fill(addr, is_store=is_store)
        if l1_victim is not None:
            self.l2.fill(l1_victim)
            controller = self.controller
            if l1_victim == controller._held_block:
                # The held prefetch candidate just became L2-resident:
                # the next probe must run (and drop it), not be skipped.
                controller._blocked_until = -1.0
        return completion

    def _l2_access(self, block, addr, t, is_store, ref_id, hint):
        if self._perfect_l2:
            return t + self.l2.latency
        useful_before = self.l2.stats.useful_prefetches
        hit = self.l2.access_block(block, is_store=is_store)
        if self.prefetcher is not None:
            self.prefetcher.on_l2_access(block, addr, ref_id, hint, t, hit)
        if hit:
            completion = t + self.l2.latency
            ready = self._prefetch_ready.pop(block, None)
            late = ready is not None and ready > completion
            if late:
                self.stats.late_prefetch_hits += 1
                completion = ready
            if self.l2.stats.useful_prefetches != useful_before:
                # First demand touch of a prefetched line: classify its
                # timeliness (did the prefetch hide the full miss latency?).
                self.metrics.on_prefetch_first_use(block, late, t)
            return completion
        return self._l2_miss(block, addr, t, is_store, ref_id, hint)

    def _l2_miss(self, block, addr, t, is_store, ref_id, hint):
        if self.prefetcher is not None:
            self.prefetcher.on_l2_miss(block, addr, ref_id, hint, t)
            # Stream-buffer schemes may hold the block privately.
            probe_ready = self.prefetcher.probe(block, t)
            if probe_ready is not None:
                completion = max(t + self.l2.latency, probe_ready)
                writeback = self.l2.fill(addr, is_store=is_store)
                if writeback is not None:
                    self.controller.writeback(writeback, completion)
                if block == self.controller._held_block:
                    self.controller._blocked_until = -1.0
                return completion
        mshrs = self.l2_mshrs
        mshr_core = None
        if mshrs.core_stats is not None:
            mshr_core = mshrs.core_stats[self.core_id]
        # MSHRFile.lookup / earliest_free, with their lazy-reclaim guard
        # hoisted so the common no-completed-fill case pays no calls.
        if t >= mshrs._min_ready:
            mshrs._reclaim(t)
        merged = mshrs._inflight.get(block)
        if merged is not None:
            mshrs.merges += 1
            if mshr_core is not None:
                mshr_core.merges += 1
            self.stats.mshr_merge_waits += 1
            return max(merged, t + self.l2.latency)
        if len(mshrs._inflight) < mshrs.num_entries:
            start = t
        else:
            mshrs.stalls += 1
            if mshr_core is not None:
                mshr_core.stalls += 1
            start = max(t, min(mshrs._inflight.values()))
        ready = self.controller.demand_fetch(block, start)
        mshrs.allocate(block, ready, start)
        if mshr_core is not None:
            mshr_core.allocations += 1
        writeback = self.l2.fill(addr, is_store=is_store)
        if writeback is not None:
            self.controller.writeback(writeback, ready)
        if block == self.controller._held_block:
            # A demand fetch beat the held prefetch candidate to its own
            # block; un-skip the probe so the drop happens on schedule.
            self.controller._blocked_until = -1.0
        self._prefetch_ready.pop(block, None)
        if self.prefetcher is not None:
            self.prefetcher.on_demand_fill(block, ref_id, hint, ready)
        return ready

    # ------------------------------------------------------------------
    def directive(self, event, now):
        """Forward a software directive (loop bound / indirect prefetch)."""
        if self.prefetcher is not None:
            self.prefetcher.on_directive(event, now)

    def finish(self, now):
        """Flush prefetch issue at end of simulation (for traffic totals)."""
        self.controller.drain(now)
        self.metrics.finalize(self, now)

    # ------------------------------------------------------------------
    # Stats views: this core's slice of the (possibly shared) levels.
    # ------------------------------------------------------------------
    def l2_stats_view(self):
        """This core's L2 counters: the shared stats when private, the
        per-core attribution slice when the L2 is shared."""
        if self._shared is None:
            return self.l2.stats
        return self.l2.core_stats[self.core_id]

    def dram_stats_view(self):
        """This core's DRAM traffic counters (see :meth:`l2_stats_view`)."""
        if self._shared is None:
            return self.dram.stats
        return self.dram.core_stats[self.core_id]

    def mshr_stats_view(self):
        """This core's MSHR counters (``stalls``/``merges``/``allocations``
        attributes, satisfied by the file itself or its per-core slice)."""
        if self._shared is None:
            return self.l2_mshrs
        return self.l2_mshrs.core_stats[self.core_id]

    def resident_unreferenced_view(self):
        """Resident never-referenced prefetch count owned by this core."""
        if self._shared is None:
            return self.l2.resident_unreferenced_prefetches()
        return self.l2.resident_unreferenced_prefetches(owner=self.core_id)

    def traffic_bytes(self):
        """This core's DRAM traffic (demand + prefetch + writeback), bytes."""
        return self.dram_stats_view().bytes_transferred(self.block_size)

    def prefetch_accuracy(self):
        """Fraction of prefetched blocks referenced before leaving the L2.

        Counts prefetches still resident-but-unreferenced as useless, plus
        any prefetcher-private fills (stream buffers) via the engine stats.
        """
        l2stats = self.l2_stats_view()
        fills = l2stats.prefetch_fills
        useful = l2stats.useful_prefetches
        if self.prefetcher is not None:
            fills += self.prefetcher.private_fills
            useful += self.prefetcher.private_useful
        if fills == 0:
            return 0.0
        return useful / fills
