"""The full memory hierarchy: L1D, unified L2, MSHRs, controller, DRAM.

This is the component the CPU timing model talks to.  Each call to
:meth:`Hierarchy.access` simulates one memory reference arriving at cycle
``now`` and returns the cycle at which its data is available.

Modes
-----
``real``
    The full hierarchy (default).
``perfect_l1``
    Every reference completes in the L1 hit latency — the paper's
    "perfect L1" bar in Figure 1.
``perfect_l2``
    The L1 is real, but every L1 miss hits in the L2 — the "perfect L2"
    bar, which defines the performance gap all prefetchers chase.

Prefetch timing
---------------
Prefetched blocks are installed in the L2 when the controller issues them,
but their *data-ready* cycle is remembered.  A demand access that finds a
still-in-flight prefetched block waits for the remaining latency — a late
prefetch hides only part of the miss (these show up in
``stats.late_prefetch_hits``).
"""

from repro.mem.cache import Cache
from repro.mem.controller import MemoryController
from repro.mem.dram import DRAMSystem
from repro.mem.layout import block_base
from repro.mem.mshr import MSHRFile
from repro.mem.tlb import TLB
from repro.metrics import MetricsCollector


class HierarchyStats:
    """Aggregate counters across the hierarchy for one simulation."""

    def __init__(self):
        self.loads = 0
        self.stores = 0
        self.late_prefetch_hits = 0
        self.mshr_merge_waits = 0

    def snapshot(self):
        return {
            "loads": self.loads,
            "stores": self.stores,
            "late_prefetch_hits": self.late_prefetch_hits,
            "mshr_merge_waits": self.mshr_merge_waits,
        }


class Hierarchy:
    """L1 + L2 + MSHRs + memory controller + DRAM, with prefetcher hooks."""

    def __init__(self, config, space, prefetcher=None, mode="real",
                 trace_sink=None):
        if mode not in ("real", "perfect_l1", "perfect_l2"):
            raise ValueError("unknown hierarchy mode %r" % mode)
        self.config = config
        self.space = space
        self.mode = mode
        self.block_size = config.block_size
        self.l1 = Cache(
            "L1D", config.l1_size, config.l1_assoc, config.block_size,
            config.l1_latency,
        )
        self.l2 = Cache(
            "L2", config.l2_size, config.l2_assoc, config.block_size,
            config.l2_latency, prefetch_insert=config.prefetch_insert,
        )
        self.l2_mshrs = MSHRFile(config.mshr_entries)
        self.dram = DRAMSystem(config.dram)
        self.controller = MemoryController(self.dram, prefetcher)
        self.controller.fill_prefetch = self._fill_prefetch
        self.controller.is_resident = self.l2.contains
        self.controller.mshrs = self.l2_mshrs
        self.prefetcher = prefetcher
        if prefetcher is not None:
            prefetcher.attach(self, space, config)
        self.tlb = (
            TLB(config.tlb_entries, config.tlb_assoc,
                config.tlb_page_size, config.tlb_miss_latency)
            if getattr(config, "tlb_entries", 0)
            else None
        )
        self.stats = HierarchyStats()
        self._prefetch_ready = {}
        # Observability layer: always collects the summary metrics; the
        # per-event trace hooks are installed only when a sink is given.
        self.metrics = MetricsCollector(sink=trace_sink)
        self.metrics.attach(self)

    # ------------------------------------------------------------------
    # Prefetch fill path (controller callback)
    # ------------------------------------------------------------------
    def _fill_prefetch(self, request, ready):
        block = request.block
        if self.prefetcher is None or self.prefetcher.fills_l2:
            # Stamp the collector's clock before the fill so any eviction
            # the fill causes is traced at the fill's ready time.
            self.metrics.on_prefetch_fill(request, ready)
            writeback = self.l2.fill(block, prefetched=True)
            if writeback is not None:
                self.controller.writeback(writeback, ready)
            self._prefetch_ready[block] = ready
            if len(self._prefetch_ready) > 4096:
                self._prune_ready(ready)
        if self.prefetcher is not None:
            self.prefetcher.on_prefetch_fill(request, ready)

    def _prune_ready(self, now):
        stale = [b for b, r in self._prefetch_ready.items() if r <= now]
        for b in stale:
            del self._prefetch_ready[b]

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------
    def access(self, addr, now, is_store=False, ref_id=None, hint=None):
        """Simulate one reference; return its data-ready cycle."""
        if is_store:
            self.stats.stores += 1
        else:
            self.stats.loads += 1
        if self.mode == "perfect_l1":
            return now + self.l1.latency
        if self.tlb is not None:
            # The page walk serializes before the cache lookup.
            now = now + self.tlb.lookup(addr)
        # Catch up on prefetch issue for the idle time that elapsed before
        # this access: prefetches queued earlier may have completed (or be
        # in flight) by now, turning this lookup into a (late) hit.
        self.controller.issue_prefetches(now)
        self.metrics.tick(now)
        block = block_base(addr, self.block_size)
        if self.l1.access(addr, is_store=is_store):
            return now + self.l1.latency
        # L1 miss: the L2 lookup starts after the L1 probe.
        t = now + self.l1.latency
        completion = self._l2_access(block, addr, t, is_store, ref_id, hint)
        # Fill L1; a dirty victim merges into the L2 copy when present.
        l1_victim = self.l1.fill(addr, is_store=is_store)
        if l1_victim is not None:
            self.l2.fill(l1_victim)
        return completion

    def _l2_access(self, block, addr, t, is_store, ref_id, hint):
        if self.mode == "perfect_l2":
            return t + self.l2.latency
        useful_before = self.l2.stats.useful_prefetches
        hit = self.l2.access(addr, is_store=is_store)
        if self.prefetcher is not None:
            self.prefetcher.on_l2_access(block, addr, ref_id, hint, t, hit)
        if hit:
            completion = t + self.l2.latency
            ready = self._prefetch_ready.pop(block, None)
            late = ready is not None and ready > completion
            if late:
                self.stats.late_prefetch_hits += 1
                completion = ready
            if self.l2.stats.useful_prefetches != useful_before:
                # First demand touch of a prefetched line: classify its
                # timeliness (did the prefetch hide the full miss latency?).
                self.metrics.on_prefetch_first_use(block, late, t)
            return completion
        return self._l2_miss(block, addr, t, is_store, ref_id, hint)

    def _l2_miss(self, block, addr, t, is_store, ref_id, hint):
        if self.prefetcher is not None:
            self.prefetcher.on_l2_miss(block, addr, ref_id, hint, t)
            # Stream-buffer schemes may hold the block privately.
            probe_ready = self.prefetcher.probe(block, t)
            if probe_ready is not None:
                completion = max(t + self.l2.latency, probe_ready)
                writeback = self.l2.fill(addr, is_store=is_store)
                if writeback is not None:
                    self.controller.writeback(writeback, completion)
                return completion
        merged = self.l2_mshrs.lookup(block, t)
        if merged is not None:
            self.stats.mshr_merge_waits += 1
            return max(merged, t + self.l2.latency)
        start = max(t, self.l2_mshrs.earliest_free(t, record_stall=True))
        ready = self.controller.demand_fetch(block, start)
        self.l2_mshrs.allocate(block, ready, start)
        writeback = self.l2.fill(addr, is_store=is_store)
        if writeback is not None:
            self.controller.writeback(writeback, ready)
        self._prefetch_ready.pop(block, None)
        if self.prefetcher is not None:
            self.prefetcher.on_demand_fill(block, ref_id, hint, ready)
        return ready

    # ------------------------------------------------------------------
    def directive(self, event, now):
        """Forward a software directive (loop bound / indirect prefetch)."""
        if self.prefetcher is not None:
            self.prefetcher.on_directive(event, now)

    def finish(self, now):
        """Flush prefetch issue at end of simulation (for traffic totals)."""
        self.controller.drain(now)
        self.metrics.finalize(self, now)

    # ------------------------------------------------------------------
    def traffic_bytes(self):
        """Total DRAM traffic (demand + prefetch + writeback), in bytes."""
        return self.dram.stats.bytes_transferred(self.block_size)

    def prefetch_accuracy(self):
        """Fraction of prefetched blocks referenced before leaving the L2.

        Counts prefetches still resident-but-unreferenced as useless, plus
        any prefetcher-private fills (stream buffers) via the engine stats.
        """
        fills = self.l2.stats.prefetch_fills
        useful = self.l2.stats.useful_prefetches
        if self.prefetcher is not None:
            fills += self.prefetcher.private_fills
            useful += self.prefetcher.private_useful
        if fills == 0:
            return 0.0
        return useful / fills
