"""Memory controller with SRP's access prioritizer.

The prioritizer (Figure 2 of the paper) is the piece that lets SRP/GRP
prefetch aggressively without hurting demand traffic:

* Demand misses go to DRAM immediately; they contend only with transfers the
  controller already started, never with queued prefetch candidates.
* Prefetch candidates are forwarded **only when their memory channel is
  otherwise idle**.  In this event-driven model the controller "catches up"
  prefetch issue lazily: before each demand event at cycle ``now`` it issues
  queued candidates into the idle channel time that elapsed since they were
  queued, stopping at the first candidate whose channel is still busy
  (head-of-line, like the real queue) or whose issue time would be in the
  future.

The controller knows nothing about hint semantics; it just asks the attached
prefetcher for its next candidate.  Prefetch fills are delivered through a
callback installed by the hierarchy, which also records the data-ready cycle
so that a demand access arriving before the prefetch completes waits for it
(a *late* prefetch hides only part of the latency).
"""


class PrefetchRequest:
    """One prefetch candidate handed from a prefetcher to the controller."""

    __slots__ = ("block", "queued_at", "depth", "meta")

    def __init__(self, block, queued_at, depth=0, meta=None):
        self.block = block
        self.queued_at = queued_at
        self.depth = depth
        self.meta = meta

    def __repr__(self):
        return "PrefetchRequest(0x%x @%d depth=%d)" % (
            self.block,
            self.queued_at,
            self.depth,
        )


class MemoryController:
    """Glue between the L2, the prefetch engine, and the DRAM channels."""

    def __init__(self, dram, prefetcher=None):
        self.dram = dram
        self.prefetcher = prefetcher
        #: Installed by the hierarchy: fill_prefetch(request, ready_cycle).
        self.fill_prefetch = None
        #: Installed by the hierarchy: is_resident(block) -> bool.
        self.is_resident = None
        #: Installed by the hierarchy: the shared L2 MSHR file.  The paper
        #: is explicit that "the MSHRs track all outstanding accesses,
        #: regardless of type" -- prefetches occupy MSHRs too, which is
        #: what bounds the prefetch engine's memory-level parallelism.
        self.mshrs = None
        #: End of the most recent interval with a demand miss in flight.
        #: The prioritizer "forwards prefetch requests only when there are
        #: no outstanding demand misses from the L2" -- during bursts of
        #: overlapping misses the prefetcher is locked out entirely, which
        #: is what keeps SRP's traffic bounded on miss-dense phases.
        self.demand_busy_until = 0
        self.prefetches_issued = 0
        self.prefetches_dropped_resident = 0
        self.prefetches_blocked_mshr = 0
        #: Installed by the hierarchy when structured tracing is on: the
        #: metrics collector, notified per issued/dropped candidate.
        self.metrics = None
        #: The candidate most recently counted as MSHR-blocked.  The issue
        #: loop probes a held candidate again on every later call, so the
        #: blocked counter only advances when a *different* request blocks.
        self._last_blocked_mshr = None

    # ------------------------------------------------------------------
    def demand_fetch(self, block, now):
        """Fetch ``block`` for a demand miss; return the data-ready cycle.

        Prefetch catch-up happens at the top of ``Hierarchy.access`` (and
        must not happen here: the caller has already reserved an MSHR slot
        based on the occupancy at ``now``).
        """
        ready = self.dram.access(block, now, kind="demand")
        if ready > self.demand_busy_until:
            self.demand_busy_until = ready
        return ready

    def writeback(self, block, now):
        """Queue a dirty-block writeback.  Fire-and-forget for timing."""
        self.dram.access(block, now, kind="writeback")

    # ------------------------------------------------------------------
    def issue_prefetches(self, now, budget=256):
        """Issue queued prefetch candidates into idle channel time <= now.

        ``budget`` bounds work per call so a pathological queue cannot stall
        the simulator; any remainder issues on the next call.
        """
        if self.prefetcher is None:
            return
        issued = 0
        while issued < budget:
            request = self.prefetcher.pop_candidate(now, self.dram)
            if request is None:
                break
            block = request.block
            if self.is_resident is not None and self.is_resident(block):
                self.prefetches_dropped_resident += 1
                if self.metrics is not None:
                    self.metrics.on_prefetch_dropped(request, now)
                self.prefetcher.on_candidate_dropped(request)
                continue
            earliest = max(request.queued_at, self.dram.channel_free_at(block))
            # No prefetch while a demand miss is outstanding.
            if self.demand_busy_until > earliest:
                earliest = self.demand_busy_until
            if self.mshrs is not None:
                free_at = self.mshrs.earliest_free(earliest)
                if free_at > earliest:
                    if request is not self._last_blocked_mshr:
                        self.prefetches_blocked_mshr += 1
                        self._last_blocked_mshr = request
                    earliest = free_at
            if earliest >= now:
                # No idle issue slot (channel or MSHR) before `now`; hold
                # the candidate (and everything behind it) for later.
                self.prefetcher.push_back(request)
                break
            ready = self.dram.access(block, earliest, kind="prefetch")
            if self.mshrs is not None:
                self.mshrs.allocate(block, ready, earliest)
            self.prefetches_issued += 1
            issued += 1
            if self.metrics is not None:
                self.metrics.on_prefetch_issue(request, earliest, ready)
            if self.fill_prefetch is not None:
                self.fill_prefetch(request, ready)

    def drain(self, now):
        """Issue everything issuable by ``now`` (used at simulation end)."""
        self.issue_prefetches(now, budget=1 << 20)
