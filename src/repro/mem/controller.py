"""Memory controller with SRP's access prioritizer.

The prioritizer (Figure 2 of the paper) is the piece that lets SRP/GRP
prefetch aggressively without hurting demand traffic:

* Demand misses go to DRAM immediately; they contend only with transfers the
  controller already started, never with queued prefetch candidates.
* Prefetch candidates are forwarded **only when their memory channel is
  otherwise idle**.  In this event-driven model the controller "catches up"
  prefetch issue lazily: before each demand event at cycle ``now`` it issues
  queued candidates into the idle channel time that elapsed since they were
  queued, stopping at the first candidate whose channel is still busy
  (head-of-line, like the real queue) or whose issue time would be in the
  future.

The controller knows nothing about hint semantics; it just asks the attached
prefetcher for its next candidate.  Prefetch fills are delivered through a
callback installed by the hierarchy, which also records the data-ready cycle
so that a demand access arriving before the prefetch completes waits for it
(a *late* prefetch hides only part of the latency).
"""


class PrefetchRequest:
    """One prefetch candidate handed from a prefetcher to the controller."""

    __slots__ = ("block", "queued_at", "depth", "meta")

    def __init__(self, block, queued_at, depth=0, meta=None):
        self.block = block
        self.queued_at = queued_at
        self.depth = depth
        self.meta = meta

    def __repr__(self):
        return "PrefetchRequest(0x%x @%d depth=%d)" % (
            self.block,
            self.queued_at,
            self.depth,
        )


class MemoryController:
    """Glue between the L2, the prefetch engine, and the DRAM channels."""

    def __init__(self, dram, prefetcher=None):
        self.dram = dram
        self.prefetcher = prefetcher
        #: Installed by the hierarchy: fill_prefetch(request, ready_cycle).
        self.fill_prefetch = None
        #: Installed by the hierarchy: is_resident(block) -> bool.
        self.is_resident = None
        #: Optional live container of resident blocks (the L2's
        #: resident_map); when installed it replaces the is_resident call
        #: per candidate with an ``in`` test.
        self.resident_map = None
        #: Installed by the hierarchy: the shared L2 MSHR file.  The paper
        #: is explicit that "the MSHRs track all outstanding accesses,
        #: regardless of type" -- prefetches occupy MSHRs too, which is
        #: what bounds the prefetch engine's memory-level parallelism.
        self.mshrs = None
        #: End of the most recent interval with a demand miss in flight.
        #: The prioritizer "forwards prefetch requests only when there are
        #: no outstanding demand misses from the L2" -- during bursts of
        #: overlapping misses the prefetcher is locked out entirely, which
        #: is what keeps SRP's traffic bounded on miss-dense phases.
        self.demand_busy_until = 0
        #: Per-call issue budget for :meth:`issue_prefetches` when the
        #: caller passes none.  The adaptive throttle policy lowers this
        #: to rate-limit prefetch issue between epochs.
        self.prefetch_budget = 256
        self.prefetches_issued = 0
        self.prefetches_dropped_resident = 0
        self.prefetches_blocked_mshr = 0
        #: Installed by the hierarchy when structured tracing is on: the
        #: metrics collector, notified per issued/dropped candidate.
        self.metrics = None
        #: The candidate most recently counted as MSHR-blocked.  The issue
        #: loop probes a held candidate again on every later call, so the
        #: blocked counter only advances when a *different* request blocks.
        self._last_blocked_mshr = None
        #: Blocked-issue cache.  While a region queue's head candidate is
        #: push-back-held, its channel/demand earliest-issue bound is
        #: remembered so the per-access catch-up call skips the pop /
        #: residency / channel-probe / push-back cycle.  Every component
        #: of the cached bound (the request's queue time, its channel's
        #: free time, the demand-busy watermark) only moves later as the
        #: simulation advances, so no probe at ``now <= _blocked_until``
        #: can issue; the MSHR free-at bound is deliberately *excluded*
        #: because MSHR occupancy is not monotone (a lazy reclaim can
        #: free entries early).  -1.0 means inactive.  The hierarchy
        #: clears the cache when a demand fill makes ``_held_block``
        #: resident, since the next probe must then drop the candidate
        #: and look at the one behind it.  A skipped probe is not quite
        #: side-effect free: it would reclaim completed MSHR entries at
        #: the held candidate's (possibly future) earliest-issue time, so
        #: the gate replicates that reclaim from the held request's
        #: remembered queue time and channel.  Disabled (never armed) for
        #: reference runs.
        self._blocked_until = -1.0
        self._held_block = -1
        self._held_queued_at = 0.0
        self._held_ch = 0
        self._cache_blocked = True
        #: Which core this controller front-ends (multi-core co-runs give
        #: each core a private controller over the shared DRAM/MSHRs).
        #: Selects the per-core slice mirrored by the inlined DRAM/MSHR
        #: operations in :meth:`issue_prefetches` when attribution is on.
        self.core_id = 0

    # ------------------------------------------------------------------
    def demand_fetch(self, block, now):
        """Fetch ``block`` for a demand miss; return the data-ready cycle.

        Prefetch catch-up happens at the top of ``Hierarchy.access`` (and
        must not happen here: the caller has already reserved an MSHR slot
        based on the occupancy at ``now``).
        """
        ready = self.dram.access(block, now, kind="demand")
        if ready > self.demand_busy_until:
            self.demand_busy_until = ready
        return ready

    def writeback(self, block, now):
        """Queue a dirty-block writeback.  Fire-and-forget for timing."""
        self.dram.access(block, now, kind="writeback")

    # ------------------------------------------------------------------
    def issue_prefetches(self, now, budget=None):
        """Issue queued prefetch candidates into idle channel time <= now.

        ``budget`` bounds work per call so a pathological queue cannot stall
        the simulator; any remainder issues on the next call.  It defaults
        to :attr:`prefetch_budget`, the adaptive throttle knob.
        """
        prefetcher = self.prefetcher
        if prefetcher is None:
            return
        if budget is None:
            budget = self.prefetch_budget
        if now <= self._blocked_until:
            # The held head candidate cannot issue before the cached
            # bound (see __init__): the probe below would pop it, find
            # an earliest-issue time >= now, and push it straight back.
            # Replicate the probe's one side effect -- the lazy MSHR
            # reclaim at the candidate's earliest-issue time, which can
            # run ahead of ``now`` and free entries a later demand miss
            # would otherwise stall on.
            mshrs = self.mshrs
            if mshrs is not None:
                earliest = self._held_queued_at
                free = self.dram._channel_free[self._held_ch]
                if free > earliest:
                    earliest = free
                if self.demand_busy_until > earliest:
                    earliest = self.demand_busy_until
                if earliest >= mshrs._min_ready:
                    mshrs._reclaim(earliest)
            return
        # Called before every demand access, but the queue is empty for
        # long stretches on most schemes: bail before any of the
        # candidate / channel-idle / MSHR bookkeeping below.  Sources
        # without the probe (duck-typed test doubles) are assumed ready.
        probe = getattr(prefetcher, "has_candidates", None)
        if probe is not None and not probe():
            return
        self._blocked_until = -1.0
        dram = self.dram
        mshrs = self.mshrs
        is_resident = self.is_resident
        resident_map = self.resident_map
        metrics = self.metrics
        fill_prefetch = self.fill_prefetch
        # Engines exposing a region ``queue`` delegate pop/push to it
        # verbatim; binding the queue's methods collapses the delegation
        # on the hottest call of the loop.
        queue = getattr(prefetcher, "queue", None)
        if queue is not None:
            pop_candidate = queue.pop_candidate
            push_back = queue.push_back
        else:
            pop_candidate = prefetcher.pop_candidate
            push_back = prefetcher.push_back
        # DRAM geometry and channel state, denormalized through the loop.
        # The transfer below replicates DRAMSystem.access(kind="prefetch")
        # operation-for-operation (including max() tie direction).
        dram_cfg = dram.config
        channel_free = dram._channel_free
        open_rows = dram._open_rows
        busy_cycles = dram.channel_busy_cycles
        blk_shift = dram._block_shift
        n_channels = dram._channels
        n_banks = dram._banks
        blocks_per_row = dram._blocks_per_row
        row_hit_latency = dram_cfg.row_hit_latency
        row_miss_latency = dram_cfg.row_miss_latency
        transfer_cycles = dram_cfg.transfer_cycles
        dstats = dram.stats
        # Per-core mirrors (shared multi-core DRAM/MSHRs only; both stay
        # None in a single-core hierarchy).  The inlined transfer below
        # bypasses DRAMSystem.access, so it must mirror its attribution.
        core_id = self.core_id
        dstats_core = None
        core_busy = None
        if dram.core_stats is not None:
            dstats_core = dram.core_stats[core_id]
            core_busy = dram.core_busy_cycles
        mshr_core = None
        if mshrs is not None:
            mshr_inflight = mshrs._inflight
            mshr_capacity = mshrs.num_entries
            if mshrs.core_stats is not None:
                mshr_core = mshrs.core_stats[core_id]
        # Loop-invariant reads and counters, hoisted to locals: nothing in
        # the issue loop writes ``demand_busy_until`` (only demand fetches
        # move it, and none can occur mid-loop), and the two hot counters
        # are written back once on every exit path.
        demand_busy = self.demand_busy_until
        n_issued = self.prefetches_issued
        n_dropped = self.prefetches_dropped_resident
        issued = 0
        try:
            while issued < budget:
                request = pop_candidate(now, dram)
                if request is None:
                    break
                block = request.block
                if (block in resident_map) if resident_map is not None \
                        else (is_resident is not None and is_resident(block)):
                    n_dropped += 1
                    if metrics is not None:
                        metrics.on_prefetch_dropped(request, now)
                    prefetcher.on_candidate_dropped(request)
                    continue
                nblk = block >> blk_shift
                ch = nblk % n_channels
                # max(queued_at, channel_free_at): first argument wins ties.
                earliest = request.queued_at
                free = channel_free[ch]
                if free > earliest:
                    earliest = free
                # No prefetch while a demand miss is outstanding.
                if demand_busy > earliest:
                    earliest = demand_busy
            # The bound so far is monotone in simulation state; the MSHR
            # adjustment below is not (see the blocked-issue cache notes).
                monotone_earliest = earliest
                if mshrs is not None:
                    # MSHRFile.earliest_free(earliest), inlined (no stall
                    # recording on the speculative prefetch probe).
                    if earliest >= mshrs._min_ready:
                        mshrs._reclaim(earliest)
                    if len(mshr_inflight) >= mshr_capacity:
                        free_at = min(mshr_inflight.values())
                        if free_at > earliest:
                            if request is not self._last_blocked_mshr:
                                self.prefetches_blocked_mshr += 1
                                self._last_blocked_mshr = request
                            earliest = free_at
                if earliest >= now:
                    # No idle issue slot (channel or MSHR) before `now`;
                    # hold the candidate (and everything behind it).
                    push_back(request)
                    if queue is not None and self._cache_blocked:
                        # Region queues return the held candidate verbatim
                        # on the next pop (head-stable), so the probe can
                        # be skipped outright until the monotone bound
                        # expires.  Engines without a region queue (stream
                        # buffers) may retire pending candidates behind
                        # the held one, so they are probed every time.
                        self._blocked_until = monotone_earliest
                        self._held_block = block
                        self._held_queued_at = request.queued_at
                        self._held_ch = ch
                    break
                # DRAMSystem.access(block, earliest, kind="prefetch"),
                # inlined.
                per = nblk // n_channels // blocks_per_row
                bank = per % n_banks
                row = per // n_banks
                start = channel_free[ch]
                if earliest >= start:
                    start = earliest
                bank_rows = open_rows[ch]
                if bank_rows[bank] == row:
                    latency = row_hit_latency
                    dstats.row_hits += 1
                    if dstats_core is not None:
                        dstats_core.row_hits += 1
                else:
                    latency = row_miss_latency
                    dstats.row_misses += 1
                    if dstats_core is not None:
                        dstats_core.row_misses += 1
                    bank_rows[bank] = row
                channel_free[ch] = start + transfer_cycles
                busy_cycles[ch] += transfer_cycles
                dstats.prefetch_blocks += 1
                if dstats_core is not None:
                    dstats_core.prefetch_blocks += 1
                    core_busy[core_id] += transfer_cycles
                ready = start + latency
                if mshrs is not None:
                    # MSHRFile.allocate(block, ready, earliest), inlined.
                    if earliest >= mshrs._min_ready:
                        mshrs._reclaim(earliest)
                    if len(mshr_inflight) >= mshr_capacity:
                        raise RuntimeError(
                            "MSHR overflow: allocate without a free entry")
                    mshr_inflight[block] = ready
                    if ready < mshrs._min_ready:
                        mshrs._min_ready = ready
                    mshrs.allocations += 1
                    if mshr_core is not None:
                        mshr_core.allocations += 1
                n_issued += 1
                issued += 1
                if metrics is not None:
                    metrics.on_prefetch_issue(request, earliest, ready)
                if fill_prefetch is not None:
                    fill_prefetch(request, ready)
        finally:
            self.prefetches_issued = n_issued
            self.prefetches_dropped_resident = n_dropped

    def drain(self, now):
        """Issue everything issuable by ``now`` (used at simulation end)."""
        self.issue_prefetches(now, budget=1 << 20)
