"""Miss status holding registers.

MSHRs bound how many misses a cache can have in flight (8 per cache in the
paper's configuration).  They serve two roles here:

* **Merging** — a second miss to a block already being fetched piggybacks on
  the outstanding fill instead of issuing a new memory access.
* **Back-pressure** — when all registers are busy, a new miss must wait for
  the earliest outstanding fill to complete, which is how limited MSHRs cap
  memory-level parallelism in the timing model.

The file is a mapping from block address to the cycle at which its fill
completes; entries whose completion time has passed are reclaimed lazily.
"""


class MSHRCoreStats:
    """Per-core slice of a shared MSHR file's counters.

    Field-compatible with the attributes :class:`MSHRFile` exposes
    directly (``stalls``, ``merges``, ``allocations``) so the metrics
    layer can read either interchangeably.
    """

    def __init__(self):
        self.merges = 0
        self.allocations = 0
        self.stalls = 0


class MSHRFile:
    """A fixed-size file of miss status holding registers."""

    def __init__(self, num_entries):
        if num_entries <= 0:
            raise ValueError("MSHR file needs at least one entry")
        self.num_entries = num_entries
        self._inflight = {}
        #: Lower bound on the earliest outstanding completion; lets
        #: :meth:`_reclaim` (called on every lookup/allocate/probe) skip
        #: the scan entirely while no fill can have completed yet.
        self._min_ready = float("inf")
        self.merges = 0
        self.allocations = 0
        self.stalls = 0
        #: Per-core attribution for a *shared* MSHR file, or None (the
        #: default).  The file itself does not know which core is asking,
        #: so the hierarchy/controller layers mirror their own increments
        #: into ``core_stats[core_id]`` — see
        #: ``Hierarchy._l2_miss`` and ``MemoryController.issue_prefetches``.
        self.core_stats = None

    def enable_core_stats(self, n_cores):
        """Allocate per-core counter slices (shared multi-core file)."""
        self.core_stats = [MSHRCoreStats() for _ in range(n_cores)]
        return self.core_stats

    def _reclaim(self, now):
        """Free every register whose fill has completed by ``now``."""
        if now < self._min_ready:
            return
        inflight = self._inflight
        done = [blk for blk, ready in inflight.items() if ready <= now]
        for blk in done:
            del inflight[blk]
        self._min_ready = min(inflight.values()) if inflight else float("inf")

    def outstanding(self, now):
        """Number of fills still in flight at cycle ``now``."""
        self._reclaim(now)
        return len(self._inflight)

    def lookup(self, block, now):
        """Return the completion cycle of an in-flight fill of ``block``.

        Returns None when the block is not being fetched.  A hit here is a
        miss *merge*: the requester waits on the existing fill.
        """
        self._reclaim(now)
        ready = self._inflight.get(block)
        if ready is not None:
            self.merges += 1
        return ready

    def earliest_free(self, now, record_stall=False):
        """Cycle at which a register becomes available.

        ``now`` when one is already free; otherwise the earliest outstanding
        completion time.  The caller stalls the new miss until then.

        ``record_stall`` counts a full file against ``stalls``; only the
        demand-miss path sets it.  The prefetch controller *probes* this
        method speculatively (and pushes the candidate back when blocked),
        so counting every probe would inflate the stall counter many times
        for one blocked request.
        """
        self._reclaim(now)
        if len(self._inflight) < self.num_entries:
            return now
        if record_stall:
            self.stalls += 1
        return min(self._inflight.values())

    def allocate(self, block, ready, now):
        """Claim a register for ``block`` completing at cycle ``ready``.

        The caller must have ensured availability via :meth:`earliest_free`.
        """
        self._reclaim(now)
        if len(self._inflight) >= self.num_entries:
            raise RuntimeError("MSHR overflow: allocate without a free entry")
        self._inflight[block] = ready
        if ready < self._min_ready:
            self._min_ready = ready
        self.allocations += 1
