"""Multi-channel banked DRAM with open-page row buffers.

Models the paper's 4-channel Direct Rambus memory system at the fidelity the
prefetching results depend on:

* **Channel occupancy** — each 64-byte transfer occupies its channel for a
  fixed number of CPU cycles, so aggressive prefetching can saturate
  channels and the access prioritizer has real idle time to schedule into.
* **Open-page row buffers** — per-bank last-open row; accesses that hit the
  open row are substantially faster.  The SRP queue prefers candidates whose
  DRAM page is already open.
* **Bank conflicts** are folded into the row-miss penalty; finer-grained
  bank timing does not change who wins between the prefetch schemes.

All times are in CPU cycles (the paper's core is 1.6 GHz against an
effective 800 MHz memory system, hence latencies of a couple hundred
cycles for a row miss seen from the core).
"""


class DRAMConfig:
    """Timing and geometry parameters for the DRAM system."""

    def __init__(
        self,
        channels=4,
        banks_per_channel=8,
        row_size=2048,
        row_hit_latency=80,
        row_miss_latency=200,
        transfer_cycles=16,
        block_size=64,
    ):
        self.channels = channels
        self.banks_per_channel = banks_per_channel
        self.row_size = row_size
        self.row_hit_latency = row_hit_latency
        self.row_miss_latency = row_miss_latency
        self.transfer_cycles = transfer_cycles
        self.block_size = block_size

    def scaled(self, **overrides):
        """Return a copy with selected fields overridden."""
        params = dict(
            channels=self.channels,
            banks_per_channel=self.banks_per_channel,
            row_size=self.row_size,
            row_hit_latency=self.row_hit_latency,
            row_miss_latency=self.row_miss_latency,
            transfer_cycles=self.transfer_cycles,
            block_size=self.block_size,
        )
        params.update(overrides)
        return DRAMConfig(**params)


class DRAMStats:
    """Traffic and row-buffer counters for the DRAM system."""

    def __init__(self):
        self.demand_blocks = 0
        self.prefetch_blocks = 0
        self.writeback_blocks = 0
        self.row_hits = 0
        self.row_misses = 0

    def bytes_transferred(self, block_size):
        """Total DRAM traffic in bytes (demand + prefetch + writeback)."""
        blocks = self.demand_blocks + self.prefetch_blocks + self.writeback_blocks
        return blocks * block_size

    @property
    def row_hit_rate(self):
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class DRAMSystem:
    """The banked, channel-interleaved DRAM array."""

    def __init__(self, config=None):
        self.config = config or DRAMConfig()
        cfg = self.config
        self._channel_free = [0] * cfg.channels
        # open_rows[channel][bank] -> row id (or None)
        self._open_rows = [
            [None] * cfg.banks_per_channel for _ in range(cfg.channels)
        ]
        self._block_shift = cfg.block_size.bit_length() - 1
        # Geometry constants, denormalized out of the config: the address
        # decomposition runs per transfer and per row-open probe.
        self._channels = cfg.channels
        self._banks = cfg.banks_per_channel
        self._blocks_per_row = cfg.row_size // cfg.block_size
        #: Cumulative cycles each channel spent transferring data — the
        #: numerator of per-channel utilization (busy / elapsed cycles).
        self.channel_busy_cycles = [0] * cfg.channels
        self.stats = DRAMStats()
        #: Per-core attribution (shared multi-core DRAM only): parallel
        #: :class:`DRAMStats` plus per-core busy-cycle totals, or None
        #: (the default).  The issuing layer sets ``active_core`` before
        #: each access; see :meth:`enable_core_stats`.
        self.core_stats = None
        self.active_core = 0
        self.core_busy_cycles = None

    def enable_core_stats(self, n_cores):
        """Switch on per-core traffic attribution for a shared DRAM.

        Every counter bump in :meth:`access` is mirrored into the active
        core's :class:`DRAMStats` (and its busy-cycle total), so the
        per-core columns sum to the shared ones by construction.
        """
        self.core_stats = [DRAMStats() for _ in range(n_cores)]
        self.core_busy_cycles = [0] * n_cores
        return self.core_stats

    # ------------------------------------------------------------------
    # Address mapping: blocks interleave across channels, then banks.
    # ------------------------------------------------------------------
    def channel_of(self, block_addr):
        """Channel serving ``block_addr`` (block-interleaved)."""
        return (block_addr >> self._block_shift) % self._channels

    def bank_of(self, block_addr):
        """Bank within the channel serving ``block_addr``."""
        return (
            (block_addr >> self._block_shift) // self._channels
            // self._blocks_per_row
        ) % self._banks

    def row_of(self, block_addr):
        """Row id of ``block_addr`` within its bank."""
        return (
            (block_addr >> self._block_shift) // self._channels
            // self._blocks_per_row // self._banks
        )

    def row_is_open(self, block_addr):
        """True when ``block_addr`` would hit its bank's open row buffer."""
        nblk = block_addr >> self._block_shift
        per = nblk // self._channels // self._blocks_per_row
        return (
            self._open_rows[nblk % self._channels][per % self._banks]
            == per // self._banks
        )

    def channel_free_at(self, block_addr):
        """Cycle at which the channel serving ``block_addr`` next frees up."""
        return self._channel_free[
            (block_addr >> self._block_shift) % self._channels]

    def channel_idle(self, block_addr, now):
        """True when ``block_addr``'s channel is idle at cycle ``now``."""
        return self.channel_free_at(block_addr) <= now

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def access(self, block_addr, now, kind="demand"):
        """Perform a block transfer; return the data-ready cycle.

        ``kind`` is one of ``demand``, ``prefetch``, ``writeback`` and only
        affects accounting.  The transfer starts when the channel is free,
        occupies it for ``transfer_cycles``, and completes after the row-hit
        or row-miss access latency.
        """
        cfg = self.config
        stats = self.stats
        nblk = block_addr >> self._block_shift
        ch = nblk % self._channels
        per = nblk // self._channels // self._blocks_per_row
        bank = per % self._banks
        row = per // self._banks
        # Ties replicate max(now, free) exactly (first argument wins), so
        # the int-vs-float type of the returned cycle never changes.
        start = self._channel_free[ch]
        if now >= start:
            start = now
        core_stats = self.core_stats
        cstats = None
        if core_stats is not None:
            cstats = core_stats[self.active_core]
            self.core_busy_cycles[self.active_core] += cfg.transfer_cycles
        bank_rows = self._open_rows[ch]
        if bank_rows[bank] == row:
            latency = cfg.row_hit_latency
            stats.row_hits += 1
            if cstats is not None:
                cstats.row_hits += 1
        else:
            latency = cfg.row_miss_latency
            stats.row_misses += 1
            if cstats is not None:
                cstats.row_misses += 1
            bank_rows[bank] = row
        self._channel_free[ch] = start + cfg.transfer_cycles
        self.channel_busy_cycles[ch] += cfg.transfer_cycles
        if kind == "demand":
            stats.demand_blocks += 1
            if core_stats is not None:
                cstats.demand_blocks += 1
        elif kind == "prefetch":
            stats.prefetch_blocks += 1
            if core_stats is not None:
                cstats.prefetch_blocks += 1
        elif kind == "writeback":
            stats.writeback_blocks += 1
            if core_stats is not None:
                cstats.writeback_blocks += 1
        else:
            raise ValueError("unknown access kind %r" % kind)
        return start + latency
