"""A data TLB.

The paper's pointer prefetcher "translates the virtual address to a
physical address and forwards the address to the SRP prefetch queue";
our simulated address space is flat (translation is the identity), so
the TLB's architectural role here is its *timing* effect: accesses
whose page mapping is not cached pay a page-walk latency before the
cache lookup.

Disabled by default (``MachineConfig.tlb_entries == 0``) because the
paper's SimpleScalar configuration does not report TLB parameters and
the experiment calibration excludes it; enable it to study how page
locality interacts with region prefetching (regions never span pages:
a 4 KB region is exactly one page).
"""

from repro.mem.layout import is_power_of_two


class TLB:
    """A set-associative translation lookaside buffer."""

    def __init__(self, entries=64, assoc=4, page_size=8192,
                 miss_latency=30):
        if entries % assoc != 0:
            raise ValueError("entries must be divisible by associativity")
        if not is_power_of_two(page_size):
            raise ValueError("page size must be a power of two")
        self.entries = entries
        self.assoc = assoc
        self.page_size = page_size
        self.miss_latency = miss_latency
        self.num_sets = entries // assoc
        self._sets = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _page(self, addr):
        return addr // self.page_size

    def lookup(self, addr):
        """Look up ``addr``'s page; returns the added latency (0 on hit).

        Misses install the page with LRU replacement and cost
        ``miss_latency`` cycles (the page-table walk).
        """
        page = self._page(addr)
        ways = self._sets[page % self.num_sets]
        for pos, entry in enumerate(ways):
            if entry == page:
                ways.append(ways.pop(pos))
                self.hits += 1
                return 0
        self.misses += 1
        if len(ways) >= self.assoc:
            ways.pop(0)
        ways.append(page)
        return self.miss_latency

    @property
    def miss_rate(self):
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
