"""Address arithmetic helpers shared by caches and prefetch engines.

All addresses are plain Python ints (byte addresses).  Block and region sizes
are powers of two throughout the system, so alignment is mask arithmetic.
"""


def is_power_of_two(value):
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def block_base(addr, block_size):
    """Return the base (aligned) address of the block containing ``addr``."""
    return addr & ~(block_size - 1)


def region_base(addr, region_size):
    """Return the base address of the aligned region containing ``addr``."""
    return addr & ~(region_size - 1)


def blocks_in_region(region_size, block_size):
    """Return how many cache blocks an aligned region spans."""
    return region_size // block_size


def block_index_in_region(addr, region_size, block_size):
    """Return the index of ``addr``'s block within its aligned region.

    The SRP/GRP prefetch queue stores a candidate bitvector per region; this
    index selects the bit corresponding to a given address.
    """
    return (addr & (region_size - 1)) // block_size


def block_range(addr, size, block_size):
    """Yield the base addresses of all blocks touched by ``[addr, addr+size)``.

    Multi-byte accesses that straddle a block boundary touch two blocks; the
    hierarchy treats each touched block as a separate cache access.
    """
    first = block_base(addr, block_size)
    last = block_base(addr + size - 1, block_size)
    base = first
    while base <= last:
        yield base
        base += block_size
