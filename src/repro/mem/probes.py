"""Batch probe/commit helpers over the memory-system structures.

The vectorized replay backend (:mod:`repro.sim.vectorized`) retires whole
stretches of L1-hitting references at once.  The cache and controller
semantics those stretches touch — LRU promotion order, dirty bits, the
blocked-issue gate's lazy MSHR reclaim — live here, next to the
structures they replicate, so the replication can be audited against
:meth:`repro.mem.cache.Cache.access_block` and
:meth:`repro.mem.controller.MemoryController.issue_prefetches` line by
line.

Each helper performs exactly the state transitions the scalar loop would
have performed for the same references, in the same order; only the
bookkeeping that commutes (counter increments) is batched.
"""


def commit_hit_batch(l1, hstats, items):
    """Retire ``items`` — a run of L1 demand hits — against ``l1``.

    ``items`` is a sequence of ``(block, line, kind)`` triples in program
    order, where ``line`` is the resident :class:`~repro.mem.cache.CacheLine`
    for ``block`` and ``kind`` is the compiled-trace kind (``K_STORE`` == 1
    marks stores).  Replicates the hit half of ``Cache.access_block`` per
    item (MRU promotion is order-sensitive, so it stays a loop) and batches
    the commuting counters.  The caller guarantees every item was resident
    and would have hit when the scalar loop reached it — true for any
    stretch with no intervening miss, fill, or invalidate, because hits
    never change membership.
    """
    sets = l1._sets
    shift = l1._block_shift
    mask = l1._set_mask
    stats = l1.stats
    loads = 0
    useful = 0
    for block, line, kind in items:
        lines = sets[(block >> shift) & mask]
        if lines[-1] is not line:
            lines.remove(line)
            lines.append(line)
        if not line.referenced:
            line.referenced = True
            useful += 1
        if kind:
            line.dirty = True
        else:
            loads += 1
    n = len(items)
    stats.demand_accesses += n
    stats.demand_hits += n
    if useful:
        stats.useful_prefetches += useful
    hstats.loads += loads
    hstats.stores += n - loads
    return n


def gated_reclaim(controller):
    """The blocked-issue gate's one side effect, applied once for a batch.

    While the controller's blocked-issue cache is armed, every
    ``issue_prefetches(now)`` call with ``now <= _blocked_until`` performs
    only a lazy MSHR reclaim at the held candidate's earliest-issue bound
    (see the gate notes in ``MemoryController``).  The bound is built from
    monotone state that a hit stretch never advances, so N gated calls
    during the stretch equal one: the first reclaim removes every entry
    completed by the bound and the rest are no-ops.  This helper is that
    one call, replicated operation for operation.
    """
    mshrs = controller.mshrs
    if mshrs is None:
        return
    earliest = controller._held_queued_at
    free = controller.dram._channel_free[controller._held_ch]
    if free > earliest:
        earliest = free
    if controller.demand_busy_until > earliest:
        earliest = controller.demand_busy_until
    if earliest >= mshrs._min_ready:
        mshrs._reclaim(earliest)
