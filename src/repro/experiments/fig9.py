"""Figure 9: performance gains from pointer prefetching.

Pure hardware pointer prefetching (and its recursive variant) applied to
the C benchmarks, compared against SRP.  Paper headlines: a 48.3% boost
on equake, 15.9% on mcf, 14.4% on sphinx — gains that come from
prefetching heap arrays of pointers, not from chasing real linked
structures — while SRP beats pointer prefetching everywhere except
twolf and sphinx (by ~2%).
"""

from repro.experiments.common import C_BENCHMARKS, ExperimentResult, rnd


def run(ctx, benchmarks=None):
    names = benchmarks or C_BENCHMARKS
    rows = []
    for bench in names:
        rows.append([
            bench,
            rnd(ctx.speedup(bench, "pointer")),
            rnd(ctx.speedup(bench, "pointer-recursive")),
            rnd(ctx.speedup(bench, "srp")),
        ])
    return ExperimentResult(
        "Figure 9: performance gains from pointer prefetching "
        "(speedup over no prefetching)",
        ["benchmark", "pointer", "recursive", "SRP"],
        rows,
        notes=ctx.annotate(""),
    )
