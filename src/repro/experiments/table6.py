"""Table 6: level-2 miss characteristics of the stubborn benchmarks.

The paper lists the seven benchmarks still more than 15% from a perfect
L2 under SRP, with the dominant cause of the remaining misses.  The
causes are structural properties of the workloads (they are how the
synthetic benchmarks were constructed — see each workload module's
docstring); this experiment reports the measured GRP gap next to them.
"""

from repro.experiments.common import ExperimentResult, rnd

#: benchmark -> (paper GRP gap %, dominant miss cause)
PAPER_ROWS = {
    "swim": (38.32, "transpose array access"),
    "art": (56.07, "bandwidth + transpose heap array access"),
    "mcf": (63.94, "tree traversal"),
    "ammp": (15.18, "linked list traversal"),
    "bzip2": (15.89, "indirect array reference"),
    "twolf": (22.40, "linked list and random pointers"),
    "sphinx": (31.28, "hash table lookup"),
}


def run(ctx, benchmarks=None):
    names = benchmarks or list(PAPER_ROWS)
    rows = []
    for bench in names:
        gap = ctx.perfect_l2_gap(bench, scheme="grp")
        paper_gap, cause = PAPER_ROWS[bench]
        rows.append([bench, rnd(gap, 2), paper_gap, cause])
    return ExperimentResult(
        "Table 6: level 2 miss characteristics",
        ["benchmark", "GRP gap%", "paper gap%", "dominant miss cause"],
        rows,
        notes=ctx.annotate(
            "Gap = IPC shortfall of GRP versus a perfect L2."),
    )
