"""Section 5.4: compiler policy sensitivity.

The paper compares the default spatial-marking policy against a more
aggressive one (mark even when the reuse distance exceeds the L2) and a
more conservative one (mark only innermost-loop reuse):

* aggressive: ~2% performance loss overall, ~5% extra traffic;
* conservative: traffic unchanged, ~5% mean performance loss
  concentrated in applu, art, equake, and apsi.
"""

from repro.experiments.common import (
    ExperimentResult,
    PERF_BENCHMARKS,
    POLICIES,
    rnd,
)


def run(ctx, benchmarks=None):
    names = benchmarks or PERF_BENCHMARKS
    rows = []
    for policy in POLICIES:
        speedup = ctx.geomean_speedup("grp", names, policy=policy)
        traffic = ctx.geomean_traffic("grp", names, policy=policy)
        rows.append([policy, round(speedup, 3), round(traffic, 2)])
    return ExperimentResult(
        "Section 5.4: compiler spatial-policy sensitivity (GRP)",
        ["policy", "geomean speedup", "geomean traffic"],
        rows,
        notes=ctx.annotate(""),
    )


def run_per_benchmark(ctx, benchmarks=None):
    """Per-benchmark view: where the conservative policy loses."""
    names = benchmarks or PERF_BENCHMARKS
    rows = []
    for bench in names:
        row = [bench]
        for policy in POLICIES:
            row.append(rnd(ctx.speedup(bench, "grp", policy=policy)))
        rows.append(row)
    return ExperimentResult(
        "Section 5.4 detail: GRP speedup per compiler policy",
        ["benchmark"] + POLICIES,
        rows,
        notes=ctx.annotate(""),
    )
