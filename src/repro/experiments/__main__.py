"""Regenerate every table and figure from the command line.

Usage::

    python -m repro.experiments                  # everything, default size
    python -m repro.experiments --jobs 8         # fan runs across 8 cores
    python -m repro.experiments --jobs 0         # all cores
    python -m repro.experiments --refs 60000     # longer traces
    python -m repro.experiments table1 fig12     # a subset
    python -m repro.experiments --no-cache       # ignore the result cache
    python -m repro.experiments --metrics        # observability tables too
    python -m repro.experiments metrics --trace traces/   # + JSONL traces
    python -m repro.experiments --timeout 300 --retries 3   # resilient
    python -m repro.experiments --resume         # continue a killed sweep

Results persist in a content-keyed cache (``.repro-cache`` by default;
``--cache-dir`` or ``$REPRO_CACHE_DIR`` override it), so a second
invocation reproduces the same tables without re-simulating.

Any resilience flag (``--resume``, ``--timeout``, ``--max-failures``,
``--checkpoint``) — or a ``$REPRO_FAULT_PLAN`` — routes the sweep
through the checkpointed supervisor: per-cell state is journaled (to
``--checkpoint``, default ``.repro-cache/sweep.ckpt``) so an
interrupted invocation resumes with ``--resume``; crashed or hung
workers are retried with backoff; cells that fail permanently render as
``n/a`` with a footnote instead of killing the sweep.
"""

import argparse
import os
import sys
import time

from repro.experiments import (
    adaptive,
    arena,
    corun,
    fig1,
    fig9,
    fig10_11,
    fig12,
    metrics_summary,
    sensitivity,
    table1,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.common import ExperimentContext
from repro.sim.cache import ResultCache
from repro.sim.faults import FAULT_PLAN_ENV
from repro.sim.runner import SCHEMES
from repro.sim.supervisor import SweepAborted
from repro.trace.store import TRACE_CACHE_ENV, reset_default_store

#: Default checkpoint journal for resilient sweeps.
DEFAULT_CHECKPOINT = os.path.join(".repro-cache", "sweep.ckpt")

RUNNERS = {
    "fig1": lambda ctx: [fig1.run(ctx)],
    "table1": lambda ctx: [table1.run(ctx)],
    "table3": lambda ctx: [table3.run(ctx)],
    "table4": lambda ctx: [table4.run(ctx)],
    "table5": lambda ctx: [table5.run(ctx)],
    "table6": lambda ctx: [table6.run(ctx)],
    "fig9": lambda ctx: [fig9.run(ctx)],
    "fig10_11": lambda ctx: [fig10_11.run(ctx), fig10_11.run_fp(ctx)],
    "fig12": lambda ctx: [fig12.run(ctx)],
    "sensitivity": lambda ctx: [sensitivity.run(ctx),
                                sensitivity.run_per_benchmark(ctx)],
    "metrics": lambda ctx: [metrics_summary.run(ctx),
                            metrics_summary.run_deltas(ctx)],
    "adaptive": lambda ctx: [adaptive.run(ctx), adaptive.run_recovery(ctx)],
    "corun": lambda ctx: [corun.run(ctx), corun.run_rush_hour(ctx),
                          corun.run_recovery(ctx)],
    "arena": lambda ctx: [arena.run(ctx), arena.run_frontiers(ctx)],
}

#: Experiments that consume the standard single-core simulation matrix
#: (table3 only runs the compiler; corun builds its own CoRunSpec cells;
#: the arena declares its own all-schemes matrix via ctx.prefetch);
#: selecting any of these warms the full matrix up-front.
SIM_RUNNERS = frozenset(RUNNERS) - {"table3", "corun", "arena"}


def _done_cells(checkpoint):
    """How many cells a checkpoint journal records as done."""
    from repro.sim.supervisor import Checkpoint
    if checkpoint is None:
        return 0
    cells = Checkpoint.load(checkpoint)
    return sum(1 for record in cells.values()
               if record.get("state") == "done")


def _progress(done, total, spec, cached):
    sys.stderr.write(
        "[%3d/%3d] %s%s\n"
        % (done, total, spec.label(), " (cached)" if cached else "")
    )


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the GRP paper's tables and figures.",
        # Derived from the scheme registry (sorted) so newly registered
        # schemes appear here without touching this module.
        epilog="simulated schemes: %s" % ", ".join(sorted(SCHEMES)),
    )
    parser.add_argument("experiments", nargs="*", metavar="experiment",
                        help="subset to run (default: all; choose from %s)"
                             % ", ".join(RUNNERS))
    parser.add_argument("--refs", type=int, default=40_000,
                        help="memory references per run (default 40000)")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="parallel simulation processes "
                             "(1 = serial, 0 = all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the persistent "
                             "result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default "
                             ".repro-cache or $REPRO_CACHE_DIR)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-run progress lines")
    parser.add_argument("--metrics", action="store_true",
                        help="also print the observability tables "
                             "(prefetch timeliness, pollution, DRAM "
                             "channel utilization)")
    parser.add_argument("--trace", metavar="DIR", default=None,
                        help="write per-run JSONL event traces into DIR "
                             "(bypasses cache reads so traces appear)")
    resilience = parser.add_argument_group(
        "resilience (any of these routes runs through the checkpointed "
        "sweep supervisor)")
    resilience.add_argument("--resume", action="store_true",
                            help="skip cells the checkpoint journal "
                                 "already records as done")
    resilience.add_argument("--retries", type=int, default=None,
                            help="extra attempts per cell after a crash, "
                                 "hang, or error (supervised default: 2)")
    resilience.add_argument("--timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="kill and retry a worker after SECONDS")
    resilience.add_argument("--max-failures", type=int, default=None,
                            metavar="N",
                            help="abort the sweep after more than N cells "
                                 "fail permanently (default: unlimited)")
    resilience.add_argument("--checkpoint", metavar="FILE", default=None,
                            help="checkpoint journal path (default %s "
                                 "when supervised)" % DEFAULT_CHECKPOINT)
    args = parser.parse_args(argv)

    unknown = [n for n in args.experiments if n not in RUNNERS]
    if unknown:
        parser.error("unknown experiment(s): %s (choose from %s)"
                     % (", ".join(unknown), ", ".join(RUNNERS)))
    names = args.experiments or list(RUNNERS)
    if args.metrics and "metrics" not in names:
        names.append("metrics")
    if args.no_cache:
        # Disable the on-disk compiled-trace cache too, and via the
        # environment so batch worker processes inherit the setting; the
        # bounded in-process store still shares traces between schemes
        # within one process, which is deliberate (it is not persistent
        # state, so the run is still "cold" in the cache sense).
        os.environ[TRACE_CACHE_ENV] = "off"
        reset_default_store()
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    supervised = (args.resume or args.retries is not None
                  or args.timeout is not None
                  or args.max_failures is not None
                  or args.checkpoint is not None
                  or bool(os.environ.get(FAULT_PLAN_ENV)))
    checkpoint = args.checkpoint
    if supervised and checkpoint is None:
        checkpoint = DEFAULT_CHECKPOINT
    ctx = ExperimentContext(
        limit_refs=args.refs, jobs=args.jobs, cache=cache,
        trace_dir=args.trace,
        checkpoint=checkpoint if supervised else None,
        resume=args.resume,
        retries=2 if args.retries is None else args.retries,
        timeout=args.timeout, max_failures=args.max_failures)
    start = time.time()
    sims_selected = any(name in SIM_RUNNERS for name in names)
    try:
        if sims_selected and (args.jobs != 1 or SIM_RUNNERS <= set(names)):
            # Declare the whole matrix up-front so the batch runner can
            # fan it across cores; the tables below then only read
            # memoized runs.  A serial subset invocation skips this and
            # simulates lazily, running only the cells that subset
            # actually consumes.
            ctx.prefetch_all(progress=None if args.quiet else _progress)
        for name in names:
            for result in RUNNERS[name](ctx):
                print(result.render())
                print()
    except SweepAborted as exc:
        print("error: %s" % exc, file=sys.stderr)
        print("fix the cause and rerun with --resume to keep the %d "
              "completed cell(s)." % _done_cells(checkpoint),
              file=sys.stderr)
        return 1
    if ctx.failures:
        print("warning: %d run(s) failed permanently; affected tables "
              "carry a partial-results footnote" % len(ctx.failures),
              file=sys.stderr)
    print("done in %.1fs" % (time.time() - start), file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
