"""Regenerate every table and figure from the command line.

Usage::

    python -m repro.experiments                  # everything, default size
    python -m repro.experiments --refs 60000     # longer traces
    python -m repro.experiments table1 fig12     # a subset
"""

import argparse
import sys
import time

from repro.experiments import (
    fig1,
    fig9,
    fig10_11,
    fig12,
    sensitivity,
    table1,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.common import ExperimentContext

RUNNERS = {
    "fig1": lambda ctx: [fig1.run(ctx)],
    "table1": lambda ctx: [table1.run(ctx)],
    "table3": lambda ctx: [table3.run(ctx)],
    "table4": lambda ctx: [table4.run(ctx)],
    "table5": lambda ctx: [table5.run(ctx)],
    "table6": lambda ctx: [table6.run(ctx)],
    "fig9": lambda ctx: [fig9.run(ctx)],
    "fig10_11": lambda ctx: [fig10_11.run(ctx), fig10_11.run_fp(ctx)],
    "fig12": lambda ctx: [fig12.run(ctx)],
    "sensitivity": lambda ctx: [sensitivity.run(ctx),
                                sensitivity.run_per_benchmark(ctx)],
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the GRP paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        choices=[[], *RUNNERS][1:] or None,
                        help="subset to run (default: all)")
    parser.add_argument("--refs", type=int, default=40_000,
                        help="memory references per run (default 40000)")
    args = parser.parse_args(argv)

    names = args.experiments or list(RUNNERS)
    ctx = ExperimentContext(limit_refs=args.refs)
    start = time.time()
    for name in names:
        for result in RUNNERS[name](ctx):
            print(result.render())
            print()
    print("done in %.1fs" % (time.time() - start), file=sys.stderr)


if __name__ == "__main__":
    main()
