"""Figures 10 and 11: region vs stride prefetching speedups.

Figure 10 plots integer benchmarks, Figure 11 floating point; both show
speedup over no prefetching for stride, SRP, and GRP, with a perfect-L2
reference.  Suite-level shape: SRP and GRP beat stride in most cases and
track each other closely; GRP wins visibly on swim/art/bzip2 (traffic
or indirect effects) and trails slightly on gzip/mcf/parser/gap (misses
whose locality the compiler cannot see).
"""

from repro.experiments.common import (
    ExperimentResult,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    rnd,
)


def _rows(ctx, names):
    rows = []
    for bench in names:
        # perfect-L2 "speedup" == perfect.ipc / base.ipc, and the helper
        # is None-safe when either endpoint failed in a partial sweep.
        rows.append([
            bench,
            rnd(ctx.speedup(bench, "stride")),
            rnd(ctx.speedup(bench, "srp")),
            rnd(ctx.speedup(bench, "grp")),
            rnd(ctx.speedup(bench, "none", mode="perfect_l2")),
        ])
    return rows


def run(ctx, benchmarks=None):
    int_rows = _rows(ctx, benchmarks or INT_BENCHMARKS)
    return ExperimentResult(
        "Figure 10: region and stride prefetching, integer benchmarks "
        "(speedup over no prefetching)",
        ["benchmark", "stride", "SRP", "GRP", "perfect-L2"],
        int_rows,
        notes=ctx.annotate(""),
    )


def run_fp(ctx, benchmarks=None):
    fp_rows = _rows(ctx, benchmarks or FP_BENCHMARKS)
    return ExperimentResult(
        "Figure 11: region and stride prefetching, floating-point "
        "benchmarks (speedup over no prefetching)",
        ["benchmark", "stride", "SRP", "GRP", "perfect-L2"],
        fp_rows,
        notes=ctx.annotate(""),
    )
