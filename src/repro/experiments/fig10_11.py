"""Figures 10 and 11: region vs stride prefetching speedups.

Figure 10 plots integer benchmarks, Figure 11 floating point; both show
speedup over no prefetching for stride, SRP, and GRP, with a perfect-L2
reference.  Suite-level shape: SRP and GRP beat stride in most cases and
track each other closely; GRP wins visibly on swim/art/bzip2 (traffic
or indirect effects) and trails slightly on gzip/mcf/parser/gap (misses
whose locality the compiler cannot see).
"""

from repro.experiments.common import (
    ExperimentResult,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
)


def _rows(ctx, names):
    rows = []
    for bench in names:
        perfect = ctx.run(bench, "none", mode="perfect_l2")
        base = ctx.run(bench, "none")
        rows.append([
            bench,
            round(ctx.speedup(bench, "stride"), 3),
            round(ctx.speedup(bench, "srp"), 3),
            round(ctx.speedup(bench, "grp"), 3),
            round(perfect.ipc / base.ipc if base.ipc else 0.0, 3),
        ])
    return rows


def run(ctx, benchmarks=None):
    int_rows = _rows(ctx, benchmarks or INT_BENCHMARKS)
    return ExperimentResult(
        "Figure 10: region and stride prefetching, integer benchmarks "
        "(speedup over no prefetching)",
        ["benchmark", "stride", "SRP", "GRP", "perfect-L2"],
        int_rows,
    )


def run_fp(ctx, benchmarks=None):
    fp_rows = _rows(ctx, benchmarks or FP_BENCHMARKS)
    return ExperimentResult(
        "Figure 11: region and stride prefetching, floating-point "
        "benchmarks (speedup over no prefetching)",
        ["benchmark", "stride", "SRP", "GRP", "perfect-L2"],
        fp_rows,
    )
