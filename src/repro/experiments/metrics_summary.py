"""Observability summary: timeliness, pollution and channel utilization.

Two tables built from the metrics layer (:mod:`repro.metrics`):

* :func:`run` — per (benchmark, scheme): how every prefetched block was
  classified (timely / late / useless-evicted / never-referenced),
  pollution misses charged to prefetch evictions, mean DRAM channel
  utilization, and absolute traffic.
* :func:`run_deltas` — GRP head-to-head against SRP: the paper's central
  claim is that software guidance keeps SRP's coverage while slashing its
  traffic and pollution, and this table shows the per-benchmark traffic
  ratios and pollution deltas directly.
"""

from repro.experiments.common import ExperimentResult, PERF_BENCHMARKS
from repro.sim.stats import geometric_mean

SCHEMES = ["stride", "srp", "grp", "grp-fix"]


def run(ctx, benchmarks=None):
    """Per-run metrics overview across the standard schemes."""
    names = benchmarks or PERF_BENCHMARKS
    rows = []
    for bench in names:
        for scheme in SCHEMES:
            stats = ctx.run(bench, scheme)
            if not stats.ok:
                continue  # partial sweep: footnote names the missing run
            fills = max(1, stats.timely_prefetches + stats.late_prefetches
                        + stats.useless_evicted_prefetches
                        + stats.never_referenced_prefetches)
            rows.append([
                bench,
                scheme,
                stats.timely_prefetches,
                stats.late_prefetches,
                stats.useless_evicted_prefetches,
                stats.never_referenced_prefetches,
                round(100.0 * stats.timely_prefetches / fills, 1),
                stats.pollution_misses,
                round(100.0 * stats.mean_channel_utilization, 1),
                stats.traffic_bytes // 1024,
            ])
    return ExperimentResult(
        "Prefetch timeliness, pollution and DRAM utilization",
        ["benchmark", "scheme", "timely", "late", "useless", "neverref",
         "timely%", "pollmiss", "util%", "trafficKB"],
        rows,
        notes=ctx.annotate(
            "timely+late+useless+neverref == prefetch fills; "
            "pollmiss = demand misses to blocks a prefetch evicted."),
    )


def run_deltas(ctx, benchmarks=None):
    """GRP vs SRP: traffic ratios and pollution deltas per benchmark."""
    names = benchmarks or PERF_BENCHMARKS
    rows = []
    ratios = []
    for bench in names:
        base = ctx.run(bench, "none")
        srp = ctx.run(bench, "srp")
        grp = ctx.run(bench, "grp")
        if not (base.ok and srp.ok and grp.ok):
            continue  # partial sweep: footnote names the missing runs
        srp_traffic = srp.traffic_ratio_over(base)
        grp_traffic = grp.traffic_ratio_over(base)
        ratio = grp.traffic_bytes / srp.traffic_bytes \
            if srp.traffic_bytes else 0.0
        ratios.append(ratio)
        rows.append([
            bench,
            round(srp_traffic, 2),
            round(grp_traffic, 2),
            round(ratio, 2),
            srp.pollution_misses,
            grp.pollution_misses,
            grp.pollution_misses - srp.pollution_misses,
            round(100.0 * srp.mean_channel_utilization, 1),
            round(100.0 * grp.mean_channel_utilization, 1),
        ])
    rows.append([
        "geomean",
        round(ctx.geomean_traffic("srp", names), 2),
        round(ctx.geomean_traffic("grp", names), 2),
        round(geometric_mean(ratios), 2),
        "", "", "", "", "",
    ])
    return ExperimentResult(
        "GRP vs SRP: traffic and pollution deltas",
        ["benchmark", "srp.traf", "grp.traf", "grp/srp",
         "srp.poll", "grp.poll", "d.poll", "srp.util%", "grp.util%"],
        rows,
        notes=ctx.annotate(
            "traf = DRAM traffic normalized to no prefetching; "
            "grp/srp < 1 means guidance cut SRP's bandwidth cost."),
    )
