"""Figure 1: processor performance with a realistic hierarchy vs perfect
caches, plus GRP.

The paper plots, per benchmark, the IPC of the realistic system as a
stacked bar against a perfect-L2 and perfect-L1 system, sorted by the
size of the realistic-to-perfect-L2 gap (geomean gap 33.7%), with GRP's
IPC as the rightmost bar.  We report the same four series.
"""

from repro.experiments.common import ExperimentResult, PERF_BENCHMARKS


def run(ctx, benchmarks=None):
    names = benchmarks or PERF_BENCHMARKS
    rows = []
    for bench in names:
        base = ctx.run(bench, "none")
        perfect_l2 = ctx.run(bench, "none", mode="perfect_l2")
        perfect_l1 = ctx.run(bench, "none", mode="perfect_l1")
        grp = ctx.run(bench, "grp")
        if not (base.ok and perfect_l2.ok and perfect_l1.ok and grp.ok):
            continue  # partial sweep: the footnote names the missing runs
        gap = ctx.perfect_l2_gap(bench)
        rows.append([
            bench,
            round(base.ipc, 3),
            round(perfect_l2.ipc, 3),
            round(perfect_l1.ipc, 3),
            round(grp.ipc, 3),
            round(gap, 1),
        ])
    rows.sort(key=lambda r: r[5])  # the paper sorts by base gap
    return ExperimentResult(
        "Figure 1: processor performance (IPC)",
        ["benchmark", "base", "perfect-L2", "perfect-L1", "GRP",
         "base gap%"],
        rows,
        notes=ctx.annotate(
            "Sorted by the gap between the realistic system and a "
            "perfect L2, as in the paper."),
    )
