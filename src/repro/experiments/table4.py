"""Table 4: GRP/Var versus GRP/Fix.

For the three benchmarks where variable-size regions matter (mesa,
bzip2, sphinx), the paper reports the traffic increase over no
prefetching under each strategy plus the distribution of variable
region sizes (in blocks):

=======  =======  =======  =====================================
bench    Var      Fix      region size distribution (2/4/8/64)
=======  =======  =======  =====================================
mesa     1.11     6.55     90.3 / 9.5 / 0.1 / 0.1
bzip2    1.47     4.97     76.8 / 22.4 / 0.0 / 0.8
sphinx   2.09     11.66    82.9 / 1.0 / 16.1 / 0.0
=======  =======  =======  =====================================
"""

from repro.experiments.common import ExperimentResult

VAR_BENCHMARKS = ["mesa", "bzip2", "sphinx"]
SIZE_BUCKETS = [2, 4, 8, 64]


def region_distribution(stats):
    """Percent of spatial region allocations per size bucket."""
    histogram = stats.prefetcher.get("region_size_histogram", {})
    total = sum(histogram.values())
    if total == 0:
        return [0.0] * len(SIZE_BUCKETS)
    out = []
    for bucket in SIZE_BUCKETS:
        count = sum(v for k, v in histogram.items() if k == bucket)
        out.append(100.0 * count / total)
    return out


def run(ctx, benchmarks=None):
    names = benchmarks or VAR_BENCHMARKS
    rows = []
    for bench in names:
        var = ctx.run(bench, "grp")
        fix = ctx.run(bench, "grp-fix")
        if not (var.ok and fix.ok and ctx.ok(bench, "none")):
            continue  # partial sweep: the footnote names the missing runs
        var_traffic = ctx.traffic_ratio(bench, "grp")
        fix_traffic = ctx.traffic_ratio(bench, "grp-fix")
        dist = region_distribution(var)
        rows.append([
            bench,
            round(var_traffic, 2),
            round(fix_traffic, 2),
            round(dist[0], 1),
            round(dist[1], 1),
            round(dist[2], 1),
            round(dist[3], 1),
            round(var.ipc / fix.ipc, 3) if fix.ipc else 0.0,
        ])
    return ExperimentResult(
        "Table 4: GRP/Var versus GRP/Fix",
        ["benchmark", "Var traffic", "Fix traffic",
         "%2blk", "%4blk", "%8blk", "%64blk", "Var/Fix perf"],
        rows,
        notes=ctx.annotate(
            "Traffic normalized to no prefetching; distribution is the "
            "share of GRP/Var spatial region allocations by size."),
    )
