"""Table 3: static compiler-hint counts per benchmark.

Columns: total static memory reference sites, spatial / pointer /
recursive hint counts, the fraction of references hinted, and the number
of indirect prefetch instructions.  Absolute counts are far smaller than
the paper's (our programs are synthetic kernels, not full SPEC sources);
the *shape* to check is: Fortran codes have zero pointer/recursive
hints, parser/twolf/mcf have recursive hints, vpr/bzip2 have indirect
instructions, and hint ratios sit in a plausible 20-80% band.
"""

from repro.compiler.driver import compile_hints
from repro.experiments.common import ALL_BENCHMARKS, ExperimentResult
from repro.mem.space import AddressSpace
from repro.workloads import get_workload


def run(ctx, benchmarks=None):
    names = benchmarks or ALL_BENCHMARKS
    rows = []
    for bench in names:
        workload = get_workload(bench)
        space = AddressSpace()
        built = workload.build(space)
        result = compile_hints(
            built.program,
            l2_size=ctx.config.l2_size,
            block_size=ctx.config.block_size,
        )
        counts = result.counts()
        rows.append([
            bench,
            counts["mem_insts"],
            counts["spatial"],
            counts["pointer"],
            counts["recursive"],
            round(counts["ratio"], 1),
            counts["indirect"],
        ])
    return ExperimentResult(
        "Table 3: number of compiler hints for each benchmark",
        ["benchmark", "mem insts", "spatial", "pointer", "recursive",
         "ratio(%)", "indirect"],
        rows,
    )
