"""Table 1: summary of prefetching performance and traffic.

Paper values (geometric means over the suite):

===================  =======  ========  ===============
scheme               speedup  traffic   gap vs perfect L2
===================  =======  ========  ===============
No prefetching       1        1         33.72
Stride prefetching   1.147    1.09      23.99
SRP                  1.226    2.80      18.75
GRP/Fix              1.216    1.62      19.42
GRP/Var              1.212    1.23      19.69
===================  =======  ========  ===============
"""

from repro.experiments.common import (
    PERF_BENCHMARKS,
    ExperimentResult,
)

SCHEME_LABELS = [
    ("none", "No prefetching"),
    ("stride", "Stride prefetching"),
    ("srp", "SRP"),
    ("grp-fix", "GRP/Fix"),
    ("grp", "GRP/Var"),
]

PAPER = {
    "No prefetching": (1.0, 1.0, 33.72),
    "Stride prefetching": (1.147, 1.09, 23.99),
    "SRP": (1.226, 2.80, 18.75),
    "GRP/Fix": (1.216, 1.62, 19.42),
    "GRP/Var": (1.212, 1.23, 19.69),
}


def run(ctx, benchmarks=None):
    names = benchmarks or PERF_BENCHMARKS
    rows = []
    for scheme, label in SCHEME_LABELS:
        speedup = ctx.geomean_speedup(scheme, names)
        traffic = ctx.geomean_traffic(scheme, names)
        gap = ctx.mean_gap(scheme, names)
        paper = PAPER[label]
        rows.append([
            label, round(speedup, 3), round(traffic, 2), round(gap, 2),
            paper[0], paper[1], paper[2],
        ])
    return ExperimentResult(
        "Table 1: summary of prefetching performance and traffic",
        ["scheme", "speedup", "traffic", "gap%",
         "paper.speedup", "paper.traffic", "paper.gap%"],
        rows,
        notes=ctx.annotate(
            "Geometric means over %d benchmarks (crafty excluded, as "
            "in the paper)." % len(names)),
    )
