"""Adaptive throttling head-to-head: {srp, srp-adaptive, grp, grp-adaptive}.

Beyond the paper (which fixes the engines' aggressiveness statically):
the :mod:`repro.adapt` feedback loop throttles the SRP/GRP hardware at
runtime from the same counters the observability layer exports.  Two
tables:

* :func:`run` — the full comparison on traffic / pollution / CPI per
  benchmark, with each adaptive run's epoch count and final knob state.
* :func:`run_recovery` — the headline claim, srp-adaptive vs srp: where
  static SRP overshoots (traffic, pollution), the throttle pulls both
  down at equal or better CPI — recovering, without any compiler hints,
  a large share of the traffic reduction GRP needs hints to get.  The
  ``win`` column marks benchmarks where the reduction is strict on both
  axes at CPI <= srp's.
"""

from repro.experiments.common import ExperimentResult, PERF_BENCHMARKS
from repro.sim.stats import geometric_mean

SCHEMES = ["srp", "srp-adaptive", "grp", "grp-adaptive"]


def _cpi(stats):
    if stats.instructions == 0:
        return 0.0
    return stats.cycles / stats.instructions


def _prefetch_specs(ctx, names):
    """Declare every cell both tables read, in one batch."""
    specs = [ctx.spec(bench, "none") for bench in names]
    for bench in names:
        for scheme in SCHEMES:
            specs.append(ctx.spec(bench, scheme))
    ctx.prefetch(specs)


def run(ctx, benchmarks=None):
    """Traffic / pollution / CPI across the static and adaptive engines."""
    names = benchmarks or PERF_BENCHMARKS
    _prefetch_specs(ctx, names)
    rows = []
    for bench in names:
        base = ctx.run(bench, "none")
        for scheme in SCHEMES:
            stats = ctx.run(bench, scheme)
            if not (base.ok and stats.ok):
                continue  # partial sweep: footnote names the missing runs
            adapt = stats.adapt
            final = adapt.get("final", {})
            if adapt:
                state = "%s/L%d" % (
                    "on" if final.get("enabled") else "off",
                    final.get("level", 0))
            else:
                state = "-"
            rows.append([
                bench,
                scheme,
                round(stats.traffic_ratio_over(base), 2),
                stats.pollution_misses,
                round(_cpi(stats), 3),
                round(100.0 * stats.prefetch_accuracy, 1),
                adapt.get("knob_changes", "-") if adapt else "-",
                state,
            ])
    return ExperimentResult(
        "Adaptive throttling: traffic, pollution and CPI",
        ["benchmark", "scheme", "traffic", "pollmiss", "CPI", "acc%",
         "changes", "knobs"],
        rows,
        notes=ctx.annotate(
            "traffic = DRAM bytes normalized to no prefetching; "
            "knobs = final enable state / ladder level of the "
            "feedback policy (static schemes show '-')."),
    )


def run_recovery(ctx, benchmarks=None):
    """srp-adaptive vs srp, with grp as the hint-guided yardstick."""
    names = benchmarks or PERF_BENCHMARKS
    _prefetch_specs(ctx, names)
    rows = []
    wins = 0
    adaptive_ratios = []
    recovered = []
    for bench in names:
        base = ctx.run(bench, "none")
        srp = ctx.run(bench, "srp")
        adaptive = ctx.run(bench, "srp-adaptive")
        grp = ctx.run(bench, "grp")
        if not (base.ok and srp.ok and adaptive.ok and grp.ok):
            continue  # partial sweep: footnote names the missing runs
        srp_traffic = srp.traffic_ratio_over(base)
        ada_traffic = adaptive.traffic_ratio_over(base)
        grp_traffic = grp.traffic_ratio_over(base)
        srp_cpi = _cpi(srp)
        ada_cpi = _cpi(adaptive)
        # Share of SRP's traffic overshoot (over GRP's) the throttle
        # removed without hints; blank when the overshoot is too small
        # for the ratio to mean anything.
        overshoot = srp_traffic - grp_traffic
        if overshoot > 0.05:
            share = (srp_traffic - ada_traffic) / overshoot
            recovered.append(share)
            share_cell = round(100.0 * share, 1)
        else:
            share_cell = ""
        win = (adaptive.traffic_bytes < srp.traffic_bytes
               and adaptive.pollution_misses < srp.pollution_misses
               and ada_cpi <= srp_cpi + 1e-12)
        wins += win
        adaptive_ratios.append(ada_traffic)
        rows.append([
            bench,
            round(srp_traffic, 2),
            round(ada_traffic, 2),
            round(grp_traffic, 2),
            share_cell,
            srp.pollution_misses,
            adaptive.pollution_misses,
            round(srp_cpi, 3),
            round(ada_cpi, 3),
            "yes" if win else "",
        ])
    rows.append([
        "geomean",
        round(ctx.geomean_traffic("srp", names), 2),
        round(geometric_mean(adaptive_ratios), 2),
        round(ctx.geomean_traffic("grp", names), 2),
        round(100.0 * geometric_mean(recovered), 1) if recovered else "",
        "", "", "", "",
        "%d/%d" % (wins, len(names)),
    ])
    return ExperimentResult(
        "srp-adaptive recovery: hint-free throttling vs static SRP",
        ["benchmark", "srp.traf", "ada.traf", "grp.traf", "recov%",
         "srp.poll", "ada.poll", "srp.CPI", "ada.CPI", "win"],
        rows,
        notes=ctx.annotate(
            "recov% = share of SRP's traffic overshoot over GRP that "
            "the throttle removed without hints; win = strictly less "
            "traffic AND pollution than srp at CPI <= srp."),
    )
