"""Table 5: prefetching accuracy, coverage and memory traffic.

Per benchmark: the baseline L2 miss rate and traffic, then coverage
(percent reduction in demand DRAM fetches), accuracy (useful prefetched
blocks / prefetched blocks) and absolute traffic for stride, SRP, and
GRP.  The paper's suite-level shape: stride has the highest accuracy and
lowest coverage; SRP the best coverage and worst accuracy (with
enormous traffic); GRP combines stride-like accuracy with SRP-like
coverage at a fraction of SRP's traffic.
"""

from repro.experiments.common import ExperimentResult, PERF_BENCHMARKS

SCHEMES = ["stride", "srp", "grp"]


def run(ctx, benchmarks=None):
    names = benchmarks or PERF_BENCHMARKS
    rows = []
    for bench in names:
        base = ctx.run(bench, "none")
        if not base.ok or not all(ctx.ok(bench, s) for s in SCHEMES):
            continue  # partial sweep: the footnote names the missing runs
        row = [
            bench,
            round(100.0 * base.l2_miss_rate, 1),
            base.traffic_bytes // 1024,
        ]
        for scheme in SCHEMES:
            stats = ctx.run(bench, scheme)
            row.extend([
                round(100.0 * stats.coverage_over(base), 1),
                round(100.0 * stats.prefetch_accuracy, 1),
                stats.traffic_bytes // 1024,
            ])
        rows.append(row)

    # Arithmetic-mean summary row, as in the paper.
    def mean(idx):
        return round(sum(r[idx] for r in rows) / len(rows), 1)

    if rows:
        rows.append(
            ["average"] + [mean(i) for i in range(1, len(rows[0]))]
        )
    return ExperimentResult(
        "Table 5: prefetching accuracy, coverage and memory traffic",
        ["benchmark", "miss%", "baseKB",
         "str.cov", "str.acc", "strKB",
         "srp.cov", "srp.acc", "srpKB",
         "grp.cov", "grp.acc", "grpKB"],
        rows,
        notes=ctx.annotate(""),
    )
