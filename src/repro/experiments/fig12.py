"""Figure 12: normalized memory traffic.

Per-benchmark DRAM traffic for stride, SRP, and GRP normalized to no
prefetching.  Paper shape: SRP ranges from +2% to 25.5x (geomean 2.80);
GRP averages +23%; stride +9%.  GRP cuts >20% of SRP's traffic on ten
of seventeen benchmarks and >50% on six.
"""

from repro.experiments.common import ExperimentResult, PERF_BENCHMARKS, rnd
from repro.sim.stats import geometric_mean


def run(ctx, benchmarks=None):
    names = benchmarks or PERF_BENCHMARKS
    rows = []
    for bench in names:
        rows.append([
            bench,
            rnd(ctx.traffic_ratio(bench, "stride"), 2),
            rnd(ctx.traffic_ratio(bench, "srp"), 2),
            rnd(ctx.traffic_ratio(bench, "grp"), 2),
        ])

    def col_geomean(idx):
        values = [r[idx] for r in rows if r[idx] is not None]
        return round(geometric_mean(values), 2)

    rows.append([
        "geomean", col_geomean(1), col_geomean(2), col_geomean(3),
    ])
    return ExperimentResult(
        "Figure 12: normalized memory traffic (vs no prefetching)",
        ["benchmark", "stride", "SRP", "GRP"],
        rows,
        notes=ctx.annotate(""),
    )
