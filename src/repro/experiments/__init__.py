"""Experiment harness: regenerate every table and figure in the paper.

Each module exposes ``run(ctx)`` returning an experiment result whose
``render()`` produces the table/figure data as text.  Use
:class:`repro.experiments.common.ExperimentContext` to share cached
simulation runs across experiments.
"""

from repro.experiments.common import (
    ALL_BENCHMARKS,
    C_BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    PERF_BENCHMARKS,
    ExperimentContext,
)

__all__ = [
    "ALL_BENCHMARKS",
    "C_BENCHMARKS",
    "ExperimentContext",
    "FP_BENCHMARKS",
    "INT_BENCHMARKS",
    "PERF_BENCHMARKS",
]
