"""Shared infrastructure for the experiment modules.

:class:`ExperimentContext` memoizes simulation runs, because the paper's
tables slice the same (benchmark x scheme) matrix many ways: Table 1's
geomeans, Figures 10-12's per-benchmark bars, and Table 5's
coverage/accuracy columns all come from one set of runs.

The context is built on the RunSpec → engine → RunResult pipeline: every
cell of the matrix is a frozen :class:`~repro.sim.spec.RunSpec`,
:meth:`ExperimentContext.matrix` declares the full standard matrix
up-front, and :meth:`ExperimentContext.prefetch_all` resolves it through
the parallel batch runner and the persistent result cache.

When any resilience knob is set (``checkpoint``, ``resume``, ``timeout``,
``max_failures``, a fault plan), runs resolve through the
:class:`~repro.sim.supervisor.SweepSupervisor` instead, and the context
degrades gracefully: failed cells hold
:class:`~repro.sim.stats.RunFailure` records, the ratio helpers return
``None`` for them, geomeans skip them, :func:`format_table` renders them
as ``n/a``, and :meth:`ExperimentContext.partial_note` summarizes what is
missing so a table built from a partial sweep says so in its footnote.
"""

from repro.sim.batch import run_batch
from repro.sim.config import MachineConfig
from repro.sim.spec import RunSpec
from repro.sim.stats import geometric_mean
from repro.sim.supervisor import SweepSupervisor
from repro.workloads import get_workload, workload_names

#: Table 3 order (SPEC number order, sphinx last).
ALL_BENCHMARKS = [
    "gzip", "wupwise", "swim", "mgrid", "applu", "vpr", "mesa", "art",
    "mcf", "equake", "crafty", "ammp", "parser", "gap", "bzip2", "twolf",
    "apsi", "sphinx",
]

#: crafty's L2 miss rate is negligible; the paper drops it from the
#: performance figures but keeps it in Table 3.
PERF_BENCHMARKS = [b for b in ALL_BENCHMARKS if b != "crafty"]

INT_BENCHMARKS = [
    b for b in PERF_BENCHMARKS
    if get_workload(b).category == "int"
]
FP_BENCHMARKS = [
    b for b in PERF_BENCHMARKS
    if get_workload(b).category == "fp"
]

C_BENCHMARKS = [
    b for b in PERF_BENCHMARKS
    if get_workload(b).language == "c"
]


#: Compiler policies the sensitivity study sweeps (Section 5.4).
POLICIES = ["conservative", "default", "aggressive"]


class ExperimentContext:
    """Configuration + memoized (benchmark, scheme, mode, policy) runs.

    ``jobs`` sets the batch runner's parallelism for
    :meth:`prefetch`/:meth:`prefetch_all` (1 = serial, 0 = all cores).
    ``cache`` is an optional :class:`~repro.sim.cache.ResultCache`; when
    given, every run is looked up there first and written back after.
    ``trace_dir``, when given, makes every simulated run write its JSONL
    event trace there; traced runs bypass cache reads so the trace files
    actually appear (results are unchanged either way).

    Resilience knobs (all optional; setting any routes runs through the
    sweep supervisor): ``checkpoint`` (journal path), ``resume`` (reuse
    an existing journal's completed cells), ``retries`` (extra attempts
    per cell, used only in supervised mode), ``timeout`` (seconds per
    worker attempt), ``max_failures`` (permanent-failure budget before
    the sweep aborts), ``fault_plan`` (a
    :class:`~repro.sim.faults.FaultPlan` for deterministic fault
    injection; in supervised mode the ``REPRO_FAULT_PLAN`` env plan
    applies even when this is None).
    """

    def __init__(self, config=None, limit_refs=None, scale=1.0, seed=12345,
                 jobs=1, cache=None, trace_dir=None, checkpoint=None,
                 resume=False, retries=2, timeout=None, max_failures=None,
                 fault_plan=None):
        self.config = config or MachineConfig.scaled()
        self.limit_refs = limit_refs
        self.scale = scale
        self.seed = seed
        self.jobs = jobs
        self.cache = cache
        self.trace_dir = trace_dir
        self.checkpoint = checkpoint
        self.resume = resume
        self.retries = retries
        self.timeout = timeout
        self.max_failures = max_failures
        self.fault_plan = fault_plan
        #: Permanent RunFailure records accumulated across prefetches.
        self.failures = []
        self._resume_next = resume  # later supervisor runs share the journal
        self._results = {}  # RunSpec -> SimStats | RunFailure

    @property
    def resilient(self):
        """Whether runs route through the sweep supervisor."""
        return (self.checkpoint is not None or self.resume
                or self.timeout is not None or self.max_failures is not None
                or self.fault_plan is not None)

    # ------------------------------------------------------------------
    def spec(self, benchmark, scheme, mode="real", policy="default"):
        """The RunSpec for one cell of this context's matrix."""
        return RunSpec.create(
            benchmark, scheme, config=self.config, mode=mode,
            policy=policy, limit_refs=self.limit_refs, scale=self.scale,
            seed=self.seed,
        )

    def matrix(self, benchmarks=None):
        """Every RunSpec the standard tables and figures consume.

        Covers: the no-prefetching baseline plus its perfect-L1/L2
        variants (Figure 1, Table 1's gap column, Table 6), the four
        suite-wide schemes (Tables 1, 4, 5; Figures 10-12), pointer
        prefetching on the C codes (Figure 9), and the GRP policy sweep
        (Section 5.4 sensitivity).
        """
        perf = benchmarks or PERF_BENCHMARKS
        c_only = [b for b in perf if get_workload(b).language == "c"]
        specs = []
        for bench in perf:
            specs.append(self.spec(bench, "none"))
            specs.append(self.spec(bench, "none", mode="perfect_l2"))
            specs.append(self.spec(bench, "none", mode="perfect_l1"))
            for scheme in ("stride", "srp", "grp", "grp-fix"):
                specs.append(self.spec(bench, scheme))
            for scheme in ("pointer", "pointer-recursive"):
                if bench in c_only:
                    specs.append(self.spec(bench, scheme))
            for policy in POLICIES:
                specs.append(self.spec(bench, "grp", policy=policy))
        return list(dict.fromkeys(specs))

    def prefetch(self, specs, progress=None):
        """Resolve RunSpecs through the batch runner + persistent cache.

        In resilient mode the supervisor runs them instead; its permanent
        failures accumulate on :attr:`failures` and occupy their result
        slots as RunFailure records.  Supervisor runs after the first
        reuse the same checkpoint journal (``resume``), so one context
        resolving its matrix across several calls keeps one journal.
        """
        todo = [s for s in specs if s not in self._results]
        if self.resilient:
            supervisor = SweepSupervisor(
                todo, jobs=self.jobs, cache=self.cache, progress=progress,
                trace_dir=self.trace_dir, checkpoint=self.checkpoint,
                resume=self._resume_next, retries=self.retries,
                timeout=self.timeout, max_failures=self.max_failures,
                fault_plan=self.fault_plan)
            results = supervisor.run()
            self.failures.extend(supervisor.failures)
            if self.checkpoint is not None:
                self._resume_next = True
        else:
            results = run_batch(todo, jobs=self.jobs, cache=self.cache,
                                progress=progress, trace_dir=self.trace_dir)
        self._results.update(zip(todo, results))
        return [self._results[s] for s in specs]

    def prefetch_all(self, benchmarks=None, progress=None):
        """Declare and resolve the full standard matrix up-front."""
        return self.prefetch(self.matrix(benchmarks), progress=progress)

    def run(self, benchmark, scheme, mode="real", policy="default"):
        """Run (or fetch from cache) one simulation.

        Returns a SimStats — or, in resilient mode, possibly a
        RunFailure for a cell that failed permanently (check ``.ok``).
        """
        spec = self.spec(benchmark, scheme, mode, policy)
        if spec not in self._results:
            self.prefetch([spec])
        return self._results[spec]

    def ok(self, benchmark, scheme, mode="real", policy="default"):
        """Whether this cell resolved to a usable result (no new run)."""
        return self.run(benchmark, scheme, mode, policy).ok

    def partial_note(self):
        """Footnote text describing failed cells, or "" when none failed."""
        if not self.failures:
            return ""
        labels = sorted({f.label for f in self.failures})
        return ("Partial results: %d run(s) failed permanently and are "
                "shown as n/a or omitted: %s."
                % (len(labels), ", ".join(labels)))

    def annotate(self, notes):
        """Append the partial-results footnote to a table's notes."""
        partial = self.partial_note()
        if not partial:
            return notes
        return (notes + "\n" + partial) if notes else partial

    # ------------------------------------------------------------------
    # Ratio helpers return None when either endpoint failed permanently
    # (resilient mode); geomeans skip those cells.
    def speedup(self, benchmark, scheme, mode="real", policy="default"):
        # The caller's policy is threaded through to the baseline run;
        # RunSpec.create canonicalizes it away for the unhinted "none"
        # scheme (hints never influence an unhinted simulation), so every
        # policy shares one baseline run and numerator/denominator stay
        # symmetric by construction.
        base = self.run(benchmark, "none", policy=policy)
        stats = self.run(benchmark, scheme, mode, policy)
        if not (base.ok and stats.ok):
            return None
        return stats.speedup_over(base)

    def traffic_ratio(self, benchmark, scheme, mode="real",
                      policy="default"):
        base = self.run(benchmark, "none", policy=policy)
        stats = self.run(benchmark, scheme, mode, policy)
        if not (base.ok and stats.ok):
            return None
        return stats.traffic_ratio_over(base)

    def coverage(self, benchmark, scheme, policy="default"):
        base = self.run(benchmark, "none", policy=policy)
        stats = self.run(benchmark, scheme, policy=policy)
        if not (base.ok and stats.ok):
            return None
        return stats.coverage_over(base)

    def perfect_l2_gap(self, benchmark, scheme="none", policy="default"):
        """Percent IPC shortfall of ``scheme`` vs a perfect L2 (>= 0)."""
        perfect = self.run(benchmark, "none", mode="perfect_l2")
        real = self.run(benchmark, scheme, policy=policy)
        if not (perfect.ok and real.ok):
            return None
        if perfect.ipc == 0:
            return 0.0
        return 100.0 * (1.0 - real.ipc / perfect.ipc)

    def geomean_speedup(self, scheme, benchmarks=None, policy="default"):
        names = benchmarks or PERF_BENCHMARKS
        values = [self.speedup(b, scheme, policy=policy) for b in names]
        return geometric_mean([v for v in values if v is not None])

    def geomean_traffic(self, scheme, benchmarks=None, policy="default"):
        names = benchmarks or PERF_BENCHMARKS
        values = [self.traffic_ratio(b, scheme, policy=policy)
                  for b in names]
        return geometric_mean([v for v in values if v is not None])

    def mean_gap(self, scheme, benchmarks=None, policy="default"):
        names = benchmarks or PERF_BENCHMARKS
        pairs = [(self.run(b, "none", mode="perfect_l2"),
                  self.run(b, scheme, policy=policy)) for b in names]
        pairs = [(p, r) for p, r in pairs if p.ok and r.ok]
        perfect = geometric_mean([p.ipc for p, _ in pairs])
        real = geometric_mean([r.ipc for _, r in pairs])
        if perfect == 0:
            return 0.0
        return 100.0 * (1.0 - real / perfect)


def rnd(value, digits=3):
    """``round`` that passes None through (a failed cell stays n/a)."""
    return None if value is None else round(value, digits)


def format_table(headers, rows, title=None):
    """Render an aligned plain-text table (None cells render as n/a)."""
    def fmt(cell):
        if cell is None:
            return "n/a"
        if isinstance(cell, float):
            return "%.3f" % cell
        return str(cell)

    grid = [list(map(fmt, headers))] + [list(map(fmt, r)) for r in rows]
    widths = [max(len(row[c]) for row in grid) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for r, row in enumerate(grid):
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


class ExperimentResult:
    """A rendered experiment: headers + rows + free-form notes."""

    def __init__(self, title, headers, rows, notes=""):
        self.title = title
        self.headers = headers
        self.rows = rows
        self.notes = notes

    def render(self):
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n\n" + self.notes
        return text

    def row_by_key(self, key):
        """Look up a row by its first column."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(key)
