"""Shared infrastructure for the experiment modules.

:class:`ExperimentContext` memoizes simulation runs, because the paper's
tables slice the same (benchmark x scheme) matrix many ways: Table 1's
geomeans, Figures 10-12's per-benchmark bars, and Table 5's
coverage/accuracy columns all come from one set of runs.
"""

from repro.sim.config import MachineConfig
from repro.sim.runner import run_workload
from repro.sim.stats import geometric_mean
from repro.workloads import get_workload, workload_names

#: Table 3 order (SPEC number order, sphinx last).
ALL_BENCHMARKS = [
    "gzip", "wupwise", "swim", "mgrid", "applu", "vpr", "mesa", "art",
    "mcf", "equake", "crafty", "ammp", "parser", "gap", "bzip2", "twolf",
    "apsi", "sphinx",
]

#: crafty's L2 miss rate is negligible; the paper drops it from the
#: performance figures but keeps it in Table 3.
PERF_BENCHMARKS = [b for b in ALL_BENCHMARKS if b != "crafty"]

INT_BENCHMARKS = [
    b for b in PERF_BENCHMARKS
    if get_workload(b).category == "int"
]
FP_BENCHMARKS = [
    b for b in PERF_BENCHMARKS
    if get_workload(b).category == "fp"
]

C_BENCHMARKS = [
    b for b in PERF_BENCHMARKS
    if get_workload(b).language == "c"
]


class ExperimentContext:
    """Configuration + memoized (benchmark, scheme, mode, policy) runs."""

    def __init__(self, config=None, limit_refs=None, scale=1.0, seed=12345):
        self.config = config or MachineConfig.scaled()
        self.limit_refs = limit_refs
        self.scale = scale
        self.seed = seed
        self._cache = {}

    def run(self, benchmark, scheme, mode="real", policy="default"):
        """Run (or fetch from cache) one simulation; returns SimStats."""
        key = (benchmark, scheme, mode, policy)
        if key not in self._cache:
            self._cache[key] = run_workload(
                benchmark, scheme,
                config=self.config, mode=mode, policy=policy,
                limit_refs=self.limit_refs, scale=self.scale,
                seed=self.seed,
            )
        return self._cache[key]

    def speedup(self, benchmark, scheme, mode="real", policy="default"):
        base = self.run(benchmark, "none")
        return self.run(benchmark, scheme, mode, policy).speedup_over(base)

    def traffic_ratio(self, benchmark, scheme, mode="real",
                      policy="default"):
        base = self.run(benchmark, "none")
        stats = self.run(benchmark, scheme, mode, policy)
        return stats.traffic_ratio_over(base)

    def coverage(self, benchmark, scheme, policy="default"):
        base = self.run(benchmark, "none")
        return self.run(benchmark, scheme, policy=policy).coverage_over(base)

    def perfect_l2_gap(self, benchmark, scheme="none", policy="default"):
        """Percent IPC shortfall of ``scheme`` vs a perfect L2 (>= 0)."""
        perfect = self.run(benchmark, "none", mode="perfect_l2")
        real = self.run(benchmark, scheme, policy=policy)
        if perfect.ipc == 0:
            return 0.0
        return 100.0 * (1.0 - real.ipc / perfect.ipc)

    def geomean_speedup(self, scheme, benchmarks=None, policy="default"):
        names = benchmarks or PERF_BENCHMARKS
        return geometric_mean(
            [self.speedup(b, scheme, policy=policy) for b in names]
        )

    def geomean_traffic(self, scheme, benchmarks=None, policy="default"):
        names = benchmarks or PERF_BENCHMARKS
        return geometric_mean(
            [self.traffic_ratio(b, scheme, policy=policy) for b in names]
        )

    def mean_gap(self, scheme, benchmarks=None, policy="default"):
        names = benchmarks or PERF_BENCHMARKS
        perfect = geometric_mean([
            self.run(b, "none", mode="perfect_l2").ipc for b in names
        ])
        real = geometric_mean([
            self.run(b, scheme, policy=policy).ipc for b in names
        ])
        if perfect == 0:
            return 0.0
        return 100.0 * (1.0 - real / perfect)


def format_table(headers, rows, title=None):
    """Render an aligned plain-text table."""
    def fmt(cell):
        if isinstance(cell, float):
            return "%.3f" % cell
        return str(cell)

    grid = [list(map(fmt, headers))] + [list(map(fmt, r)) for r in rows]
    widths = [max(len(row[c]) for row in grid) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for r, row in enumerate(grid):
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


class ExperimentResult:
    """A rendered experiment: headers + rows + free-form notes."""

    def __init__(self, title, headers, rows, notes=""):
        self.title = title
        self.headers = headers
        self.rows = rows
        self.notes = notes

    def render(self):
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n\n" + self.notes
        return text

    def row_by_key(self, key):
        """Look up a row by its first column."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(key)
