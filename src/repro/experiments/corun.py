"""Multi-core co-run study: contention, fairness, and adaptive recovery.

Beyond the paper (which evaluates GRP on a uniprocessor): the
:mod:`repro.sim.multicore` substrate replays several benchmarks at once
against a shared L2/MSHR/DRAM, so prefetch schemes can be compared under
the bandwidth and capacity contention they would face on a CMP.  Three
tables:

* :func:`run` — every pair from a representative six-benchmark mix,
  under {none, srp, grp, srp-adaptive}: per-core slowdown vs solo, the
  Jain fairness index, and cross-core prefetch pollution.
* :func:`run_rush_hour` — all 18 benchmarks on 18 cores at once, one row
  per scheme: the worst-case bandwidth crunch.
* :func:`run_recovery` — srp-adaptive vs static srp per pair: the
  feedback throttle senses shared-channel pressure and backs off, so it
  should contain co-run slowdown better than statically-aggressive SRP.

Co-runs replay on the fused skip-ahead backend by default (byte-
identical to the stepped reference loop; see
:mod:`repro.sim.multicore_fused`), but N cores still cost roughly N
solo runs of simulation work, so this module caps trace length at
:data:`CORUN_REFS` references per core regardless of ``--refs``.
"""

import itertools

from repro.experiments.common import ALL_BENCHMARKS, ExperimentResult
from repro.sim.spec import CoRunSpec
from repro.sim.stats import geometric_mean

#: Representative co-run mix: two pointer-chasing C codes (mcf, vpr), two
#: streaming FP codes (swim, art), one cache-friendly integer code
#: (gzip), and one irregular FP code (equake).
CORUN_BENCHMARKS = ["gzip", "swim", "vpr", "art", "mcf", "equake"]

#: Schemes the co-run tables compare.
CORUN_SCHEMES = ["none", "srp", "grp", "srp-adaptive"]

#: Per-core reference cap — co-runs step one reference at a time through
#: the shared-memory arbiter, so they pay the slow loop on every core.
CORUN_REFS = 5000


def _refs(ctx):
    """The co-run trace length: the context's, capped at CORUN_REFS."""
    if ctx.limit_refs is None:
        return CORUN_REFS
    return min(ctx.limit_refs, CORUN_REFS)


def _spec(ctx, workloads, scheme):
    """The CoRunSpec for one co-run cell of this context's study."""
    return CoRunSpec.create(
        list(workloads), scheme, config=ctx.config, limit_refs=_refs(ctx),
        scale=ctx.scale, seed=ctx.seed,
    )


def _pairs():
    """The 15 unordered pairs of distinct representative benchmarks."""
    return list(itertools.combinations(CORUN_BENCHMARKS, 2))


def _prefetch(ctx, specs):
    """Resolve co-run cells through the batch runner; memoized per ctx."""
    results = ctx.prefetch(specs)
    return dict(zip(specs, results))


def run(ctx):
    """Pairwise co-runs: slowdown, fairness, and cross-core pollution."""
    pairs = _pairs()
    specs = [_spec(ctx, pair, scheme)
             for pair in pairs for scheme in CORUN_SCHEMES]
    results = _prefetch(ctx, specs)
    rows = []
    for pair in pairs:
        for scheme in CORUN_SCHEMES:
            result = results[_spec(ctx, pair, scheme)]
            if not result.ok:
                continue  # partial sweep: footnote names the missing runs
            shared = result.shared
            slow = shared["slowdowns"]
            rows.append([
                "+".join(pair),
                scheme,
                round(slow[0], 3),
                round(slow[1], 3),
                round(shared["geomean_slowdown"], 3),
                round(shared["fairness"], 3),
                shared["cross_core_pollution"],
                round(100.0 * shared["l2"]["miss_rate"], 1),
            ])
    return ExperimentResult(
        "Pairwise co-runs on a shared L2: slowdown and fairness",
        ["pair", "scheme", "slow0", "slow1", "geomean", "fairness",
         "xpoll", "L2miss%"],
        rows,
        notes=ctx.annotate(
            "slowN = core N's cycles relative to running alone on the "
            "same machine; fairness = Jain index over relative speeds; "
            "xpoll = demand misses caused by another core's prefetch "
            "evicting the victim's lines (%d refs/core)." % _refs(ctx)),
    )


def run_rush_hour(ctx):
    """All 18 benchmarks co-running at once — the bandwidth crunch."""
    specs = [_spec(ctx, ALL_BENCHMARKS, scheme) for scheme in CORUN_SCHEMES]
    results = _prefetch(ctx, specs)
    rows = []
    for scheme, spec in zip(CORUN_SCHEMES, specs):
        result = results[spec]
        if not result.ok:
            continue  # partial sweep: footnote names the missing runs
        shared = result.shared
        slow = shared["slowdowns"]
        mshr = shared["mshr"]
        rows.append([
            scheme,
            round(shared["geomean_slowdown"], 3),
            round(max(slow), 3),
            round(shared["fairness"], 3),
            shared["cross_core_pollution"],
            round(100.0 * shared["l2"]["miss_rate"], 1),
            round(100.0 * shared["dram_row_hit_rate"], 1),
            mshr["stalls"],
        ])
    return ExperimentResult(
        "Rush hour: all %d benchmarks on %d cores"
        % (len(ALL_BENCHMARKS), len(ALL_BENCHMARKS)),
        ["scheme", "geomean", "worst", "fairness", "xpoll", "L2miss%",
         "rowhit%", "mshr_stalls"],
        rows,
        notes=ctx.annotate(
            "geomean/worst = geometric-mean and maximum per-core slowdown "
            "vs solo; mshr_stalls = demand misses stalled on a full "
            "shared MSHR file (%d refs/core)." % _refs(ctx)),
    )


def run_recovery(ctx):
    """srp-adaptive vs static srp under pairwise contention."""
    pairs = _pairs()
    specs = [_spec(ctx, pair, scheme)
             for pair in pairs for scheme in ("srp", "srp-adaptive")]
    results = _prefetch(ctx, specs)
    rows = []
    wins = 0
    srp_means = []
    ada_means = []
    for pair in pairs:
        srp = results[_spec(ctx, pair, "srp")]
        ada = results[_spec(ctx, pair, "srp-adaptive")]
        if not (srp.ok and ada.ok):
            continue  # partial sweep: footnote names the missing runs
        srp_slow = srp.shared["geomean_slowdown"]
        ada_slow = ada.shared["geomean_slowdown"]
        win = ada_slow < srp_slow - 1e-12
        wins += win
        srp_means.append(srp_slow)
        ada_means.append(ada_slow)
        rows.append([
            "+".join(pair),
            round(srp_slow, 3),
            round(ada_slow, 3),
            round(srp_slow - ada_slow, 3),
            srp.shared["cross_core_pollution"],
            ada.shared["cross_core_pollution"],
            "yes" if win else "",
        ])
    if srp_means:
        rows.append([
            "geomean", round(geometric_mean(srp_means), 3),
            round(geometric_mean(ada_means), 3),
            round(geometric_mean(srp_means) - geometric_mean(ada_means), 3),
            "", "", "%d/%d" % (wins, len(srp_means)),
        ])
    return ExperimentResult(
        "Contention recovery: srp-adaptive vs static srp",
        ["pair", "srp", "srp-adapt", "delta", "srp_xpoll", "ada_xpoll",
         "win"],
        rows,
        notes=ctx.annotate(
            "Columns 2-3 are geometric-mean co-run slowdowns vs solo; the "
            "throttle reads the *shared* DRAM busy fraction, so channel "
            "pressure from the neighbour core drives it down the ladder "
            "where static SRP keeps overshooting."),
    )
