"""The prefetcher arena: every registered scheme, head to head.

The paper's Table 1 compares three contestants; the arena grows it into
a living leaderboard over the *whole* scheme registry
(:data:`repro.sim.runner.SCHEMES`) × all 18 workloads ×
{traffic, pollution, timeliness, CPI}.  Two tables come out:

* **Leaderboard** — per scheme, the suite geomeans (speedup, traffic
  ratio), mean coverage, pollution per kilo-reference, the timely
  fraction of useful prefetches, and how many workloads place the
  scheme on each Pareto frontier.
* **Frontiers** — per workload, which schemes are Pareto-optimal for
  the two canonical trade-offs: **coverage vs. traffic** (how much of
  the miss stream you remove per byte of DRAM traffic you add) and
  **CPI vs. pollution** (how fast you run per demand miss you cause).

A scheme sits on a frontier when no other scheme is at least as good on
both axes and strictly better on one; the ``none`` baseline anchors
both frontiers (zero coverage at 1.0× traffic, zero pollution at
baseline CPI), so every other frontier member earned its seat by
beating a real trade-off, not a vacuum.

Because new schemes register in ``SCHEMES`` and nothing here names them
explicitly, a freshly added engine joins the arena — and the generated
``docs/SCHEMES.md`` reference — with no changes to this module.
"""

import csv

from repro.experiments.common import (
    ALL_BENCHMARKS,
    ExperimentContext,
    ExperimentResult,
    rnd,
)
from repro.sim.runner import SCHEMES
from repro.sim.stats import geometric_mean

#: Arena contestants: every registered scheme, baseline included,
#: stable-sorted so tables and CSVs render deterministically.
ARENA_SCHEMES = sorted(SCHEMES)

#: Column order of the arena CSV (see :func:`arena_rows`).
ARENA_COLUMNS = (
    "workload", "scheme", "ipc", "cpi", "speedup", "traffic_ratio",
    "coverage", "accuracy", "pollution_misses", "pollution_per_kref",
    "timely", "late", "timeliness", "frontier_cov_traffic",
    "frontier_cpi_pollution",
)


def pareto_front(points):
    """Names of the non-dominated points in ``{name: (x, y)}``.

    Both axes are higher-is-better (negate a cost axis before calling).
    ``name`` is dominated when some other point is >= on both axes and
    strictly better on at least one; coincident points survive together.
    None-valued points (failed cells) never make the frontier and never
    dominate.
    """
    alive = []
    for name, point in points.items():
        if point[0] is None or point[1] is None:
            continue
        alive.append((name, point))
    front = []
    for name, (x, y) in alive:
        dominated = False
        for other, (ox, oy) in alive:
            if other == name:
                continue
            if ox >= x and oy >= y and (ox > x or oy > y):
                dominated = True
                break
        if not dominated:
            front.append(name)
    return sorted(front)


class _Cell:
    """Derived metrics for one (workload, scheme) arena cell."""

    __slots__ = ("ok", "ipc", "cpi", "speedup", "traffic_ratio", "coverage",
                 "accuracy", "pollution", "pollution_per_kref", "timely",
                 "late", "timeliness")

    def __init__(self, stats, base):
        self.ok = stats.ok and base.ok
        if not self.ok:
            for name in self.__slots__[1:]:
                setattr(self, name, None)
            return
        self.ipc = stats.ipc
        self.cpi = (stats.cycles / stats.instructions
                    if stats.instructions else 0.0)
        self.speedup = stats.speedup_over(base)
        self.traffic_ratio = stats.traffic_ratio_over(base)
        self.coverage = stats.coverage_over(base)
        self.accuracy = stats.prefetch_accuracy
        self.pollution = stats.pollution_misses
        refs = stats.hier.get("loads", 0) + stats.hier.get("stores", 0)
        self.pollution_per_kref = (
            1000.0 * stats.pollution_misses / refs if refs else 0.0)
        self.timely = stats.timely_prefetches
        self.late = stats.late_prefetches
        used = self.timely + self.late
        self.timeliness = self.timely / used if used else None


def _collect(ctx, benchmarks=None, schemes=None):
    """Resolve the full arena matrix; return {(bench, scheme): _Cell}."""
    benchmarks = benchmarks or ALL_BENCHMARKS
    schemes = schemes or ARENA_SCHEMES
    if "none" not in schemes:
        schemes = ["none"] + list(schemes)
    ctx.prefetch([ctx.spec(b, s) for b in benchmarks for s in schemes])
    cells = {}
    for bench in benchmarks:
        base = ctx.run(bench, "none")
        for scheme in schemes:
            cells[(bench, scheme)] = _Cell(ctx.run(bench, scheme), base)
    return cells


def _frontiers(cells, benchmarks, schemes):
    """Per-workload Pareto frontiers for the two metric pairs.

    Returns ``(cov_traffic, cpi_pollution)``, each a dict
    {workload: sorted frontier scheme names}.
    """
    cov_traffic = {}
    cpi_pollution = {}
    for bench in benchmarks:
        ct_points = {}
        cp_points = {}
        for scheme in schemes:
            cell = cells[(bench, scheme)]
            if not cell.ok:
                continue
            # Higher-is-better on both axes: negate the cost axes.
            ct_points[scheme] = (cell.coverage, -cell.traffic_ratio)
            cp_points[scheme] = (-cell.cpi, -cell.pollution_per_kref)
        cov_traffic[bench] = pareto_front(ct_points)
        cpi_pollution[bench] = pareto_front(cp_points)
    return cov_traffic, cpi_pollution


def arena_rows(ctx, benchmarks=None, schemes=None):
    """The arena matrix as plain dict rows (:data:`ARENA_COLUMNS` order).

    One row per (workload, scheme) cell, frontier membership included —
    this is the CSV/leaderboard substrate, shared by :func:`run`, the
    CSV writer, and the schema gate.
    """
    benchmarks = benchmarks or ALL_BENCHMARKS
    schemes = schemes or ARENA_SCHEMES
    if "none" not in schemes:
        schemes = ["none"] + list(schemes)
    cells = _collect(ctx, benchmarks, schemes)
    cov_traffic, cpi_pollution = _frontiers(cells, benchmarks, schemes)
    rows = []
    for bench in benchmarks:
        for scheme in schemes:
            cell = cells[(bench, scheme)]
            rows.append({
                "workload": bench,
                "scheme": scheme,
                "ipc": rnd(cell.ipc),
                "cpi": rnd(cell.cpi),
                "speedup": rnd(cell.speedup),
                "traffic_ratio": rnd(cell.traffic_ratio),
                "coverage": rnd(cell.coverage),
                "accuracy": rnd(cell.accuracy),
                "pollution_misses": cell.pollution,
                "pollution_per_kref": rnd(cell.pollution_per_kref),
                "timely": cell.timely,
                "late": cell.late,
                "timeliness": rnd(cell.timeliness),
                "frontier_cov_traffic":
                    int(scheme in cov_traffic[bench]),
                "frontier_cpi_pollution":
                    int(scheme in cpi_pollution[bench]),
            })
    return rows


def write_arena_csv(path, rows):
    """Write arena rows as CSV (``ARENA_COLUMNS`` header; None -> "")."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=ARENA_COLUMNS)
        writer.writeheader()
        for row in rows:
            writer.writerow({
                key: "" if row[key] is None else row[key]
                for key in ARENA_COLUMNS
            })


def read_arena_csv(path):
    """Read an arena CSV back into a list of string-valued dict rows."""
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))


def run(ctx, benchmarks=None):
    """The leaderboard: suite-wide aggregates + frontier seat counts."""
    benchmarks = benchmarks or ALL_BENCHMARKS
    schemes = ARENA_SCHEMES
    cells = _collect(ctx, benchmarks, schemes)
    cov_traffic, cpi_pollution = _frontiers(cells, benchmarks, schemes)
    rows = []
    for scheme in schemes:
        mine = [cells[(bench, scheme)] for bench in benchmarks]
        ok = [c for c in mine if c.ok]
        speedups = [c.speedup for c in ok]
        traffics = [c.traffic_ratio for c in ok]
        coverages = [c.coverage for c in ok]
        pollution = [c.pollution_per_kref for c in ok]
        timely = sum(c.timely for c in ok)
        late = sum(c.late for c in ok)
        used = timely + late
        rows.append([
            scheme,
            rnd(geometric_mean(speedups)) if speedups else None,
            rnd(geometric_mean(traffics)) if traffics else None,
            rnd(sum(coverages) / len(coverages)) if coverages else None,
            rnd(sum(pollution) / len(pollution)) if pollution else None,
            rnd(timely / used) if used else None,
            sum(1 for b in benchmarks if scheme in cov_traffic[b]),
            sum(1 for b in benchmarks if scheme in cpi_pollution[b]),
        ])
    # Leaderboard order: best geomean speedup first (None sinks).
    rows.sort(key=lambda row: (row[1] is None, -(row[1] or 0.0), row[0]))
    notes = (
        "All %d workloads x %d schemes at %s refs/run.  cov/traf and "
        "cpi/pol count the workloads whose Pareto frontier "
        "(coverage-vs-traffic, CPI-vs-pollution) includes the scheme; "
        "'none' anchors both frontiers.  pollution is per 1000 memory "
        "references; timeliness is the timely fraction of useful "
        "prefetches." % (len(benchmarks), len(schemes),
                         ctx.limit_refs or "default")
    )
    return ExperimentResult(
        "Arena leaderboard (all schemes x all workloads)",
        ["scheme", "speedup", "traffic", "coverage", "pollution/kref",
         "timeliness", "cov/traf", "cpi/pol"],
        rows,
        notes=ctx.annotate(notes),
    )


def run_frontiers(ctx, benchmarks=None):
    """Per-workload frontier membership for both metric pairs."""
    benchmarks = benchmarks or ALL_BENCHMARKS
    schemes = ARENA_SCHEMES
    cells = _collect(ctx, benchmarks, schemes)
    cov_traffic, cpi_pollution = _frontiers(cells, benchmarks, schemes)
    rows = [
        [bench,
         ", ".join(cov_traffic[bench]) or "n/a",
         ", ".join(cpi_pollution[bench]) or "n/a"]
        for bench in benchmarks
    ]
    notes = (
        "How to read the frontier: within one workload, each listed "
        "scheme is Pareto-optimal for that metric pair — no other "
        "scheme matches or beats it on both axes while strictly beating "
        "it on one.  Moving along a frontier trades one axis for the "
        "other; schemes absent from a row are strictly dominated there "
        "and can be ignored for that trade-off."
    )
    return ExperimentResult(
        "Arena Pareto frontiers (per workload)",
        ["workload", "coverage-vs-traffic", "CPI-vs-pollution"],
        rows,
        notes=ctx.annotate(notes),
    )


def main(csv_path=None, refs=40_000, jobs=1):
    """Convenience entry: run the arena and optionally write the CSV."""
    from repro.sim.cache import ResultCache
    ctx = ExperimentContext(limit_refs=refs, jobs=jobs, cache=ResultCache())
    leaderboard = run(ctx)
    frontiers = run_frontiers(ctx)
    if csv_path:
        write_arena_csv(csv_path, arena_rows(ctx))
    return leaderboard, frontiers
