"""The asyncio HTTP layer of the serve subsystem (stdlib only).

A deliberately small HTTP/1.1 server — request line + headers +
``Content-Length`` body in, one response (or one chunked stream) out,
``Connection: close`` — built directly on :func:`asyncio.start_server`
so the service adds **no dependencies** beyond the standard library.
The interesting work all happens in the layers it fronts:

========================  ============================================
``POST /runs``            validate the body with ``spec_from_dict(...,
                          strict=True)`` (400 on any malformed field),
                          enqueue a :class:`~repro.serve.jobs.Job`
                          (503 when the bounded queue is full), answer
                          202 with the job id and the cells' digests.
``GET /jobs/<id>``        job snapshot; progress is derived by tailing
                          the supervisor's checkpoint journal.  With
                          ``?stream=1`` the response is a chunked
                          JSONL feed of journal records, live until
                          the job finishes.
``GET /jobs``             id + state of every job, oldest first.
``GET /results/<digest>`` the cached result as canonical JSON
                          (:func:`~repro.sim.stats.result_to_json` —
                          byte-identical to a direct ``execute()``).
                          The digest is a **strong ETag**:
                          ``If-None-Match`` hitting it answers 304
                          with no body, so a hot sweep's polling
                          clients cost neither compute nor bandwidth.
                          404 for unknown or malformed digests.
``GET /healthz``          liveness + version salt.
``GET /stats``            queue depth, worker states, cell counters,
                          cache hit rate (the zero-compute fast path
                          is observable here).
========================  ============================================

Results are served straight out of the shared
:class:`~repro.sim.cache.ResultCache` directory, so *any* producer —
this server, another server on the same cache, a plain CLI sweep —
populates the memo table every client reads.
"""

import asyncio
import json
import re
import threading
import urllib.parse

from repro.sim.cache import version_salt
from repro.sim.spec import spec_from_dict
from repro.sim.stats import result_to_json
from repro.serve.jobs import QueueFull

#: Hard cap on request-body size (a spec matrix is a few KB; anything
#: near this is abuse, answered with 413).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Seconds allowed for reading one request (line, headers, and body).
REQUEST_TIMEOUT = 30.0

#: Seconds between checkpoint-journal polls while streaming progress.
STREAM_POLL_INTERVAL = 0.05

#: A result digest: 64 lowercase hex chars (sha256).  Anything else is
#: a 404 before the filesystem is consulted — no path traversal.
_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 204: "No Content", 304: "Not Modified",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    413: "Payload Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _BadRequest(Exception):
    """Internal: malformed HTTP or body; mapped to a 4xx response."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = status


def _json_bytes(payload):
    """Readable JSON for API envelopes (jobs, stats, errors)."""
    return (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode()


class Server:
    """The HTTP front end over a :class:`~repro.serve.jobs.JobManager`.

    Two ways to run it: :meth:`run_forever` serves on the calling
    thread until interrupted (the ``python -m repro.serve`` path), and
    :meth:`start`/:meth:`stop` run the event loop on a daemon thread
    (the tests' and embedding path).  ``port=0`` binds an ephemeral
    port; :attr:`port` holds the real one once the server is up.
    """

    def __init__(self, manager, host="127.0.0.1", port=0):
        self.manager = manager
        self.host = host
        self.port = port
        self._requested_port = port
        self._loop = None
        self._stop_event = None
        self._thread = None
        self._ready = threading.Event()
        self._startup_error = None

    # -- lifecycle -----------------------------------------------------
    async def _main(self, on_ready=None):
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection, self.host, self._requested_port)
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        self.port = server.sockets[0].getsockname()[1]
        self.manager.start()
        self._ready.set()
        if on_ready is not None:
            on_ready(self)
        async with server:
            await self._stop_event.wait()

    def run_forever(self, on_ready=None):
        """Serve on the calling thread until :meth:`stop` or Ctrl-C."""
        try:
            asyncio.run(self._main(on_ready=on_ready))
        except KeyboardInterrupt:
            pass

    def start(self):
        """Serve on a daemon thread; block until bound; return the port."""
        self._thread = threading.Thread(
            target=self.run_forever, name="serve-http", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            self._thread.join(timeout=5)
            raise self._startup_error
        return self.port

    def stop(self):
        """Stop the event loop (threadsafe) and join the serving thread."""
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    # -- HTTP plumbing -------------------------------------------------
    async def _handle_connection(self, reader, writer):
        try:
            try:
                method, path, query = await asyncio.wait_for(
                    self._read_head(reader), REQUEST_TIMEOUT)
                headers, body = await asyncio.wait_for(
                    self._read_rest(reader), REQUEST_TIMEOUT)
            except _BadRequest as exc:
                await self._respond(writer, exc.status,
                                    _json_bytes({"error": str(exc)}))
                return
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ValueError, ConnectionError):
                return  # client went away or never sent a request
            try:
                await self._dispatch(writer, method, path, query,
                                     headers, body)
            except _BadRequest as exc:
                await self._respond(writer, exc.status,
                                    _json_bytes({"error": str(exc)}))
            except ConnectionError:
                pass
            except Exception as exc:  # never take the server down
                await self._respond(writer, 500, _json_bytes(
                    {"error": "%s: %s" % (type(exc).__name__, exc)}))
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_head(self, reader):
        line = await reader.readline()
        if not line.strip():
            raise ValueError("empty request")
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            raise _BadRequest(400, "malformed request line")
        parts = urllib.parse.urlsplit(target)
        query = dict(urllib.parse.parse_qsl(parts.query))
        return method.upper(), parts.path, query

    async def _read_rest(self, reader):
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _BadRequest(400, "bad Content-Length")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(413, "request body over %d bytes"
                              % MAX_BODY_BYTES)
        body = await reader.readexactly(length) if length else b""
        return headers, body

    async def _respond(self, writer, status, body=b"", extra=()):
        head = ["HTTP/1.1 %d %s" % (status,
                                    _STATUS_TEXT.get(status, "Unknown")),
                "Content-Type: application/json; charset=utf-8",
                "Content-Length: %d" % len(body),
                "Connection: close"]
        head.extend("%s: %s" % pair for pair in extra)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        if body:
            writer.write(body)
        await writer.drain()

    # -- routing -------------------------------------------------------
    async def _dispatch(self, writer, method, path, query, headers, body):
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, _json_bytes(
                {"status": "ok", "version": version_salt()}))
        elif path == "/stats" and method == "GET":
            await self._respond(writer, 200,
                                _json_bytes(self.manager.stats()))
        elif path == "/runs" and method == "POST":
            await self._post_runs(writer, headers, body)
        elif path == "/jobs" and method == "GET":
            jobs = [{"id": job.id, "state": job.state}
                    for job in self.manager.jobs()]
            await self._respond(writer, 200, _json_bytes({"jobs": jobs}))
        elif path.startswith("/jobs/") and method == "GET":
            await self._get_job(writer, path[len("/jobs/"):], query)
        elif path.startswith("/results/") and method == "GET":
            await self._get_result(writer, path[len("/results/"):],
                                   headers)
        elif path in ("/healthz", "/stats", "/runs", "/jobs") \
                or path.startswith(("/jobs/", "/results/")):
            raise _BadRequest(405, "method %s not allowed on %s"
                              % (method, path))
        else:
            raise _BadRequest(404, "no such endpoint: %s" % path)

    # -- POST /runs ----------------------------------------------------
    def _parse_specs(self, body):
        """Decode and strictly validate a submission body.

        Accepted shapes: a bare spec object, ``{"spec": {...}}``, or a
        sweep matrix ``{"specs": [{...}, ...]}``.  Any malformed field
        raises :class:`_BadRequest` (→ 400) with the validator's reason.
        """
        try:
            data = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _BadRequest(400, "request body is not JSON: %s" % exc)
        if isinstance(data, dict) and "specs" in data:
            extra = set(data) - {"specs"}
            if extra:
                raise _BadRequest(400, "unknown field(s) beside 'specs': %s"
                                  % ", ".join(sorted(extra)))
            raw_specs = data["specs"]
            if not isinstance(raw_specs, list) or not raw_specs:
                raise _BadRequest(400, "'specs' must be a non-empty list")
        elif isinstance(data, dict) and "spec" in data:
            extra = set(data) - {"spec"}
            if extra:
                raise _BadRequest(400, "unknown field(s) beside 'spec': %s"
                                  % ", ".join(sorted(extra)))
            raw_specs = [data["spec"]]
        else:
            raw_specs = [data]
        specs = []
        for i, raw in enumerate(raw_specs):
            try:
                specs.append(spec_from_dict(raw, strict=True))
            except ValueError as exc:
                raise _BadRequest(400, "spec %d: %s" % (i, exc))
        return specs

    async def _post_runs(self, writer, headers, body):
        specs = self._parse_specs(body)
        try:
            job = self.manager.submit(specs)
        except QueueFull as exc:
            await self._respond(writer, 503, _json_bytes(
                {"error": str(exc)}), extra=[("Retry-After", "1")])
            return
        await self._respond(writer, 202, _json_bytes({
            "job": job.id,
            "href": "/jobs/%s" % job.id,
            "digests": list(job.digests),
            "results": ["/results/%s" % digest
                        for digest in job.digests],
        }))

    # -- GET /jobs/<id> ------------------------------------------------
    def _job_snapshot(self, job):
        """The job's JSON view, with progress read from its journal."""
        from repro.sim.supervisor import JournalTailer

        data = job.to_dict()
        tailer = JournalTailer(job.journal_path)
        tailer.poll()
        data["journal"] = tailer.progress()
        if job.cells is not None:
            for cell in data["cells"]:
                cell["result"] = ("/results/%s" % cell["digest"]
                                  if cell["status"] == "ok" else None)
        return data

    async def _get_job(self, writer, job_id, query):
        job = self.manager.get(job_id)
        if job is None:
            raise _BadRequest(404, "no such job: %s" % job_id)
        if query.get("stream") not in (None, "", "0"):
            await self._stream_job(writer, job)
            return
        await self._respond(writer, 200,
                            _json_bytes(self._job_snapshot(job)))

    async def _stream_job(self, writer, job):
        """Chunked JSONL feed of the job's journal, live to completion.

        Each chunk is one checkpoint-journal record (the supervisor's
        cell-state transitions) as a JSON line, followed by one final
        ``job`` record carrying the terminal snapshot.  The feed
        re-polls the journal file as the supervisor appends to it —
        progress streams while the sweep runs.
        """
        from repro.sim.supervisor import JournalTailer

        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson; charset=utf-8\r\n"
                "Transfer-Encoding: chunked\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1"))
        tailer = JournalTailer(job.journal_path)
        while True:
            records = tailer.poll()
            for record in records:
                line = (json.dumps(record, sort_keys=True) + "\n").encode()
                writer.write(b"%x\r\n" % len(line) + line + b"\r\n")
            await writer.drain()
            if job.finished_state and not records:
                break
            await asyncio.sleep(STREAM_POLL_INTERVAL)
        final = (json.dumps({"kind": "job", "job": self._job_snapshot(job)},
                            sort_keys=True) + "\n").encode()
        writer.write(b"%x\r\n" % len(final) + final + b"\r\n")
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- GET /results/<digest> -----------------------------------------
    async def _get_result(self, writer, digest, headers):
        if not _DIGEST_RE.match(digest):
            raise _BadRequest(404, "not a result digest: %r" % digest)
        etag = '"%s"' % digest
        candidates = headers.get("if-none-match", "")
        if candidates:
            tags = [tag.strip() for tag in candidates.split(",")]
            if etag in tags or "*" in tags:
                await self._respond(writer, 304, b"",
                                    extra=[("ETag", etag)])
                return
        result = self.manager.cache.get_digest(digest)
        if result is None:
            raise _BadRequest(404, "no cached result for digest %s"
                              % digest)
        body = result_to_json(result).encode("utf-8")
        await self._respond(writer, 200, body, extra=[("ETag", etag)])
