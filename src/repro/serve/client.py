"""A thin stdlib client for the serve API.

Built on :mod:`urllib.request` only, so anything that can import repro
can talk to a running server — the tests, the ``tools/check_serve.py``
CI gate, and ad-hoc scripts.  The client is deliberately dumb: it
submits serialized specs, polls jobs, and fetches result bytes; all
interpretation (rehydrating results, comparing payloads) stays with the
caller.  Methods raise :class:`ServeError` for any non-2xx answer the
method does not model (404 on an unknown digest, 400 on a rejected
body, 503 on a full queue), carrying the server's JSON error reason.
"""

import json
import time
import urllib.error
import urllib.request

from repro.sim.stats import result_from_dict


class ServeError(RuntimeError):
    """A non-2xx API answer: carries ``status`` and the server's reason."""

    def __init__(self, status, message):
        super().__init__("HTTP %d: %s" % (status, message))
        self.status = status
        self.reason = message


class ServeClient:
    """Talk to one serve endpoint (``base_url``, e.g.
    ``http://127.0.0.1:8642``)."""

    def __init__(self, base_url, timeout=60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------
    def _request(self, method, path, body=None, headers=()):
        """One HTTP exchange; returns ``(status, header_map, bytes)``."""
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method)
        request.add_header("Content-Type", "application/json")
        for name, value in headers:
            request.add_header(name, value)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as resp:
                return (resp.status,
                        {k.lower(): v for k, v in resp.headers.items()},
                        resp.read())
        except urllib.error.HTTPError as exc:
            payload = exc.read()
            if exc.code == 304:  # not an error: the ETag matched
                return (304,
                        {k.lower(): v for k, v in exc.headers.items()},
                        payload)
            try:
                reason = json.loads(payload.decode("utf-8"))["error"]
            except (ValueError, KeyError, UnicodeDecodeError):
                reason = payload.decode("utf-8", "replace") or exc.reason
            raise ServeError(exc.code, reason)

    def _get_json(self, path):
        status, _headers, body = self._request("GET", path)
        return json.loads(body.decode("utf-8"))

    # -- endpoints -----------------------------------------------------
    def healthz(self):
        """The liveness payload (raises if the server is unreachable)."""
        return self._get_json("/healthz")

    def stats(self):
        """The server's ``GET /stats`` payload."""
        return self._get_json("/stats")

    def submit(self, spec):
        """POST one spec (or a list of specs) serialized via ``to_dict``.

        ``spec`` may be a RunSpec/CoRunSpec (or a list of them) or the
        equivalent already-serialized dict(s).  Returns the 202 payload:
        ``{"job", "href", "digests", "results"}``.
        """
        if isinstance(spec, (list, tuple)):
            payload = {"specs": [self._serialize(item) for item in spec]}
        else:
            payload = {"spec": self._serialize(spec)}
        body = json.dumps(payload).encode("utf-8")
        status, _headers, raw = self._request("POST", "/runs", body=body)
        return json.loads(raw.decode("utf-8"))

    @staticmethod
    def _serialize(spec):
        return spec if isinstance(spec, dict) else spec.to_dict()

    def job(self, job_id):
        """The job's snapshot (``GET /jobs/<id>``)."""
        return self._get_json("/jobs/%s" % job_id)

    def jobs(self):
        """Every job's id + state."""
        return self._get_json("/jobs")["jobs"]

    def wait(self, job_id, timeout=300.0, poll=0.05):
        """Poll a job until it reaches a terminal state; return it.

        Raises ``TimeoutError`` if the job is still queued or running
        after ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            data = self.job(job_id)
            if data["state"] in ("done", "failed"):
                return data
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    "job %s still %s after %.1fs"
                    % (job_id, data["state"], timeout))
            time.sleep(poll)

    def stream_job(self, job_id):
        """Yield the job's journal records live (``?stream=1``).

        Generator of parsed JSON records; ends with the ``{"kind":
        "job", ...}`` terminal snapshot.  urllib de-chunks the response
        transparently.
        """
        request = urllib.request.Request(
            self.base_url + "/jobs/%s?stream=1" % job_id)
        with urllib.request.urlopen(request,
                                    timeout=self.timeout) as resp:
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def result_bytes(self, digest, etag=None):
        """Fetch a result's raw bytes; returns ``(status, body, etag)``.

        With ``etag`` set, sends ``If-None-Match`` — a 304 comes back
        with an empty body.  Raises :class:`ServeError` (404) for
        unknown digests.
        """
        headers = [("If-None-Match", etag)] if etag else []
        status, header_map, body = self._request(
            "GET", "/results/%s" % digest, headers=headers)
        return status, body, header_map.get("etag")

    def result(self, digest):
        """Fetch and rehydrate a result (SimStats/CoRunResult/…)."""
        _status, body, _etag = self.result_bytes(digest)
        return result_from_dict(json.loads(body.decode("utf-8")))
