"""Job queue + worker pool: the execution half of the serve subsystem.

A *job* is one ``POST /runs`` submission — a single spec or a sweep
matrix — tracked from ``queued`` through ``running`` to ``done`` (or
``failed``, for infrastructure-level errors like an exhausted failure
budget).  Jobs wait in a **bounded** queue (a full queue rejects the
submission with :class:`QueueFull`, which the HTTP layer maps to 503 —
backpressure, not unbounded memory) and are drained by a small pool of
worker threads.

Each worker executes its job with a
:class:`~repro.sim.supervisor.SweepSupervisor`, so every resilience
property of the CLI pipeline carries over to the service verbatim:
process-per-cell isolation (a segfaulting spec kills a child process,
never the server), per-attempt timeouts, bounded retries, and graceful
degradation — a cell that fails permanently surfaces as a
``failed:<kind>`` status on the job, while the rest of the matrix
completes.  The supervisor journals to a per-job checkpoint file, which
is what ``GET /jobs/<id>`` tails for progress.

Single-flight
-------------
Before running, a worker acquires a per-digest mutex for every unique
spec in its job (in sorted digest order, so overlapping jobs cannot
deadlock).  N concurrent submissions of the same spec therefore
serialize: the first computes and writes the result cache, the rest
wake up inside the supervisor's cache-hit fast path and complete with
zero simulation compute — the memo-table behaviour the service exists
to provide.  Distinct specs never share a mutex and run fully parallel.
"""

import itertools
import queue
import threading
import time

from repro.sim.cache import ResultCache, version_salt
from repro.sim.supervisor import SweepAborted, SweepSupervisor


class QueueFull(RuntimeError):
    """Raised by :meth:`JobManager.submit` when the backlog is full."""


#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")


class Job:
    """One submitted unit of work: a list of specs and their outcome."""

    def __init__(self, job_id, specs, digests, journal_path):
        self.id = job_id
        self.specs = list(specs)
        self.digests = list(digests)
        self.journal_path = journal_path
        self.state = "queued"
        self.error = None
        self.worker = None
        self.created = time.time()
        self.started = None
        self.finished = None
        #: {"done": n, "total": n, "cached": n, "computed": n}, updated
        #: live by the supervisor's progress callback.
        self.progress = {"done": 0, "total": len(set(digests)),
                         "cached": 0, "computed": 0}
        #: One {"digest", "label", "status"} per submitted spec (input
        #: order), filled in when the job completes.  ``status`` is
        #: ``"ok"`` or ``"failed:<kind>"``.
        self.cells = None

    @property
    def finished_state(self):
        """True once the job reached a terminal state."""
        return self.state in ("done", "failed")

    def to_dict(self):
        """JSON view of the job (the ``GET /jobs/<id>`` body core)."""
        data = {
            "id": self.id,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "progress": dict(self.progress),
            "digests": list(self.digests),
        }
        if self.cells is not None:
            data["cells"] = [dict(cell) for cell in self.cells]
        return data


class JobManager:
    """Bounded job queue + worker threads over the sweep supervisor.

    Parameters: ``cache`` (a shared :class:`ResultCache`; created from
    ``cache_dir``/the environment when None), ``workers`` (job worker
    threads — jobs running concurrently), ``backlog`` (queue bound),
    ``sim_jobs`` (worker *processes* per job's supervisor — per-cell
    parallelism within a sweep), and the supervisor's resilience knobs
    (``retries``, ``timeout``, ``max_failures``).  Per-job checkpoint
    journals live under ``<cache_dir>/serve/<job id>.ckpt``.
    """

    def __init__(self, cache=None, cache_dir=None, workers=2, backlog=64,
                 sim_jobs=1, retries=2, timeout=None, max_failures=None):
        self.cache = cache if cache is not None else ResultCache(cache_dir)
        self.workers = max(1, workers)
        self.sim_jobs = sim_jobs
        self.retries = retries
        self.timeout = timeout
        self.max_failures = max_failures
        self.journal_dir = self.cache.cache_dir / "serve"
        self._queue = queue.Queue(maxsize=max(1, backlog))
        self._lock = threading.Lock()
        self._jobs = {}          # id -> Job
        self._flight = {}        # digest -> per-digest single-flight lock
        self._ids = itertools.count(1)
        self._threads = []
        self._worker_state = {}  # thread name -> job id or None
        self._started = False
        self.started_at = time.time()

    # ------------------------------------------------------------------
    def start(self):
        """Spawn the worker threads (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
            for i in range(self.workers):
                name = "serve-worker-%d" % i
                self._worker_state[name] = None
                thread = threading.Thread(target=self._worker_loop,
                                          name=name, daemon=True)
                self._threads.append(thread)
                thread.start()

    def shutdown(self):
        """Stop the workers after the queue drains; join them."""
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join()
        self._threads = []

    # ------------------------------------------------------------------
    def submit(self, specs):
        """Enqueue one job over ``specs``; return its :class:`Job`.

        Raises :class:`QueueFull` when the backlog is at capacity — the
        HTTP layer turns that into a 503 with a retry hint.
        """
        specs = list(specs)
        if not specs:
            raise ValueError("a job needs at least one spec")
        salt = version_salt()
        digests = [spec.digest(salt) for spec in specs]
        with self._lock:
            job_id = "j%06d" % next(self._ids)
            journal = str(self.journal_dir / ("%s.ckpt" % job_id))
            job = Job(job_id, specs, digests, journal)
            self._jobs[job_id] = job
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._lock:
                del self._jobs[job_id]
            raise QueueFull(
                "job queue is full (%d queued)" % self._queue.qsize())
        return job

    def get(self, job_id):
        """Look up a job by id (None when unknown)."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self):
        """All jobs, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.id)

    # ------------------------------------------------------------------
    def _flight_locks(self, digests):
        """The single-flight mutexes for ``digests``, sorted for
        deadlock-free multi-acquisition."""
        with self._lock:
            return [self._flight.setdefault(digest, threading.Lock())
                    for digest in sorted(set(digests))]

    def _worker_loop(self):
        name = threading.current_thread().name
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._worker_state[name] = job.id
            try:
                self._run_job(job)
            finally:
                self._worker_state[name] = None

    def _run_job(self, job):
        """Execute one job under its single-flight locks."""
        job.state = "running"
        job.started = time.time()
        job.worker = threading.current_thread().name

        def progressed(done, total, spec, cached):
            with self._lock:
                job.progress["done"] = done
                job.progress["total"] = total
                job.progress["cached" if cached else "computed"] += 1

        locks = self._flight_locks(job.digests)
        for lock in locks:
            lock.acquire()
        try:
            supervisor = SweepSupervisor(
                job.specs, jobs=self.sim_jobs, cache=self.cache,
                checkpoint=job.journal_path, retries=self.retries,
                timeout=self.timeout, max_failures=self.max_failures,
                progress=progressed)
            results = supervisor.run()
        except SweepAborted as exc:
            job.error = str(exc)
            job.state = "failed"
            job.finished = time.time()
            return
        except Exception as exc:  # infrastructure bug: fail the job,
            job.error = "%s: %s" % (type(exc).__name__, exc)  # not the server
            job.state = "failed"
            job.finished = time.time()
            return
        finally:
            for lock in reversed(locks):
                lock.release()
        cells = []
        for spec, digest, result in zip(job.specs, job.digests, results):
            status = ("ok" if result.ok
                      else "failed:%s" % result.kind)
            cells.append({"digest": digest, "label": spec.label(),
                          "status": status})
        job.cells = cells
        job.state = "done"
        job.finished = time.time()

    # ------------------------------------------------------------------
    def stats(self):
        """The ``GET /stats`` payload: queue, workers, cells, cache."""
        with self._lock:
            jobs = list(self._jobs.values())
            workers = [{"name": name, "job": job_id,
                        "state": "running" if job_id else "idle"}
                       for name, job_id in sorted(
                           self._worker_state.items())]
        by_state = {state: 0 for state in JOB_STATES}
        cells = {"done": 0, "cached": 0, "computed": 0, "failed": 0}
        for job in jobs:
            by_state[job.state] += 1
            cells["done"] += job.progress["done"]
            cells["cached"] += job.progress["cached"]
            cells["computed"] += job.progress["computed"]
            for cell in job.cells or ():
                if cell["status"] != "ok":
                    cells["failed"] += 1
        hits, misses = self.cache.hits, self.cache.misses
        lookups = hits + misses
        return {
            "uptime": time.time() - self.started_at,
            "queue_depth": self._queue.qsize(),
            "backlog": self._queue.maxsize,
            "workers": workers,
            "jobs": by_state,
            "cells": cells,
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": (hits / lookups) if lookups else 0.0,
                "quarantined": self.cache.quarantined,
                "entries": len(self.cache),
                "dir": str(self.cache.cache_dir),
            },
        }
