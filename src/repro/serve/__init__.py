"""Simulation-as-a-service: an HTTP front end over the run pipeline.

This package turns the existing batch machinery — frozen/hashable
:class:`~repro.sim.spec.RunSpec`/:class:`~repro.sim.spec.CoRunSpec`,
the content-keyed persistent :class:`~repro.sim.cache.ResultCache`, and
the checkpointed fault-tolerant
:class:`~repro.sim.supervisor.SweepSupervisor` — into a shared service:
the cache becomes a memo table behind ``GET /results/<digest>``, so a
sweep any client has run before costs zero simulation compute for every
client after.

Layers
------
* :mod:`repro.serve.jobs` — :class:`~repro.serve.jobs.JobManager`: a
  bounded job queue drained by a worker-thread pool, each job executed
  by a :class:`~repro.sim.supervisor.SweepSupervisor` (process
  isolation, retries, timeouts), with per-digest single-flight locking
  so concurrent identical submissions compute once.
* :mod:`repro.serve.server` — :class:`~repro.serve.server.Server`: the
  asyncio HTTP layer (stdlib only).  ``POST /runs`` validates and
  enqueues; ``GET /jobs/<id>`` snapshots or streams progress from the
  supervisor's checkpoint journal; ``GET /results/<digest>`` serves
  cached results with the spec digest as a strong ETag;
  ``GET /healthz`` and ``GET /stats`` report liveness, queue depth,
  cache hit rate, and worker status.
* :mod:`repro.serve.client` — :class:`~repro.serve.client.ServeClient`:
  a thin stdlib (urllib) client used by the tests and the
  ``tools/check_serve.py`` CI gate.

Run it with ``python -m repro.serve --port 8642``; see OPERATIONS.md
("Serving") for the endpoint reference and DESIGN.md §3j for the
architecture.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import Job, JobManager, QueueFull
from repro.serve.server import Server

__all__ = [
    "Job", "JobManager", "QueueFull", "ServeClient", "ServeError",
    "Server",
]
