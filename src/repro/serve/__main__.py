"""Run the simulation service from the command line.

Usage::

    python -m repro.serve                         # 127.0.0.1:8642
    python -m repro.serve --port 0                # ephemeral port
    python -m repro.serve --workers 4 --jobs 0    # 4 jobs, all cores each
    python -m repro.serve --cache-dir /shared/repro-cache

The server announces ``serving on http://HOST:PORT`` on stdout once
bound (machine-parseable — the CI gate scrapes it for the ephemeral
port) and runs until Ctrl-C.  All state worth keeping lives in the
cache directory: results, per-job checkpoint journals
(``<cache-dir>/serve/``), and the cross-process lock file — restarting
the server loses only in-memory job records, never results.

Try it::

    curl -s localhost:8642/healthz
    curl -s -X POST localhost:8642/runs \\
        -d '{"spec": {"workload": "swim", "scheme": "grp"}}'
    curl -s localhost:8642/jobs/j000001
    curl -s localhost:8642/results/<digest>
"""

import argparse
import sys

from repro.serve.jobs import JobManager
from repro.serve.server import Server


def main(argv=None):
    parser = argparse.ArgumentParser(prog="python -m repro.serve")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8642,
                        help="TCP port; 0 picks an ephemeral one "
                             "(default 8642)")
    parser.add_argument("--workers", type=int, default=2,
                        help="job worker threads — jobs running "
                             "concurrently (default 2)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="simulation worker processes per job's "
                             "supervisor; 0 = all cores (default 1)")
    parser.add_argument("--backlog", type=int, default=64,
                        help="bounded job-queue capacity; a full queue "
                             "answers 503 (default 64)")
    parser.add_argument("--cache-dir", default=None,
                        help="shared result-cache directory (default: "
                             "$REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--retries", type=int, default=2,
                        help="supervisor retries per cell (default 2)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-attempt worker deadline (default: none)")
    parser.add_argument("--max-failures", type=int, default=None,
                        help="per-job failure budget before the job "
                             "aborts (default: unlimited)")
    args = parser.parse_args(argv)

    manager = JobManager(
        cache_dir=args.cache_dir, workers=args.workers,
        backlog=args.backlog, sim_jobs=args.jobs, retries=args.retries,
        timeout=args.timeout, max_failures=args.max_failures)
    server = Server(manager, host=args.host, port=args.port)

    def announce(srv):
        print("serving on http://%s:%d" % (srv.host, srv.port), flush=True)
        print("cache: %s" % manager.cache.cache_dir, flush=True)

    try:
        server.run_forever(on_ready=announce)
    finally:
        manager.shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
