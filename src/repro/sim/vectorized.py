"""Vectorized batch replay: the third backend under the fast==slow contract.

:func:`execute_vectorized` replays a :class:`~repro.trace.compiled.CompiledTrace`
by splitting it into *boring stretches* — references that provably hit
the L1 plus ALU ``Ops`` batches — punctuated by *interesting events*: L1
misses, software directives, prefetch-issue opportunities, metrics
sampling boundaries, adaptive-epoch boundaries, and the reference limit.
Interesting events run one at a time through a scalar body that
replicates :meth:`repro.cpu.core.Core.execute_compiled` operation for
operation.  Boring stretches are retired in bulk by two cooperating
engines:

* **The uniform-ring walker** (pure Python).  Real traces are
  barrier-dense: a loop-sized ``Ops`` batch (``count >= window``) lands
  every handful of events, and ``Core._issue_ops`` refills the whole
  issue ring with a single value at each one.  The walker exploits that:
  it tracks the ring as ``(fill value, writes since the last barrier)``
  instead of a materialized list, which turns each barrier into an
  O(written-entries) closed form (uniform entries can never beat the
  clock once anything has issued after them) and each in-stretch
  reference into a few float operations.  The ring list is materialized
  only when the walker hands off to the scalar body.
* **The numpy recurrence engine.**  A long barrier-free run (synthetic
  or hit-streak-heavy traces) is batched columnar: the issue recurrence
  ``c_t = max(c_{t-1} + inv, ring[head_t])`` factors into
  ``numpy.maximum.accumulate`` in the shifted coordinate
  ``D_t = c_t - (t+1)*inv``, and past ``window`` issues the ring can
  never block (every in-stretch completion latency fits inside one
  window rotation — enforced by :func:`supports`), so the clock tail is
  a pure arithmetic progression.

Why the closed forms are exact
------------------------------
Under any supported configuration (power-of-two issue width, integer
cache latencies) every timestamp the core manipulates is an exact
multiple of ``1/issue_width`` far below the 2^52 mantissa limit, so each
float add/subtract/max the scalar loop performs is exact — and exact
operations can be reassociated freely, which is precisely what both
engines do.  L1 hit effects (LRU promotion, dirty bits, counters) are
committed through :mod:`repro.mem.probes` against the real cache
structures, in program order.  The result is byte-identical
``RunResult.to_dict()`` output against the reference path for every
workload x scheme; the differential suite enforces it.

The backend falls back to :meth:`Core.execute_compiled` whenever numpy is
missing or the configuration is unsupported (see :func:`supports`).
"""

from repro.mem.probes import commit_hit_batch, gated_reclaim
from repro.trace.compiled import K_OPS, K_STORE

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: The numpy engine's fixed cost (a couple dozen array operations) only
#: beats the walker on long barrier-free runs; shorter ones stay with
#: the walker, whose cost is proportional to the work retired.
_NUMPY_MIN_EVENTS = 192
_NUMPY_MIN_REFS = 96
#: Bounds one numpy batch (elementary issues -> work-array length).
_MAX_SPAN_ELEM = 1 << 17

#: Optional instrumentation: set to a dict and the backend accumulates
#: batching counters into it (used by the bench tooling to report
#: coverage): ``events_total``, ``walk_events``, ``walk_refs``,
#: ``np_spans``, ``np_events``, ``np_refs``.
span_stats = None


def available():
    """True when the numpy the backend needs is importable."""
    return _np is not None


def supports(core):
    """True when ``core``'s configuration preserves batch exactness.

    The batch math reassociates float operations, which is only exact
    when every timestamp is a dyadic rational: the issue width must be a
    power of two and the L1 latency an integer.  The no-blocking tail
    argument additionally needs every in-stretch completion latency
    (``1.0`` for ALU ops, the L1 latency for hits) to fit inside one
    window rotation.  Reference runs, TLB configs, trace-sink runs,
    perfect-cache modes, and shared (multi-core) hierarchies take the
    fused or reference loops instead.
    """
    if _np is None:
        return False
    hierarchy = core.hierarchy
    if hierarchy.reference or hierarchy.tlb is not None \
            or hierarchy.metrics.sink is not None:
        return False
    if hierarchy.mode != "real":
        return False
    if getattr(hierarchy, "_shared", None) is not None:
        return False
    inv = core.inv_width
    width = 1.0 / inv
    if not width.is_integer():
        return False
    width = int(width)
    if width <= 0 or width & (width - 1):
        return False
    latency = hierarchy.l1.latency
    if not float(latency).is_integer():
        return False
    window_span = core.window * inv
    if latency < 0 or latency > window_span or 1.0 > window_span:
        return False
    return True


def execute_vectorized(core, trace, limit_refs=None):
    """Run ``trace`` on ``core`` with batched boring stretches.

    Byte-identical in every statistic to ``core.execute_compiled(trace,
    limit_refs)``; returns the final cycle count.  The caller is
    responsible for checking :func:`supports` first.
    """
    np = _np
    hierarchy = core.hierarchy
    cols = trace.columns()
    hints = trace.resolve_hints(core.hint_table)
    ref_names = trace.ref_names
    kinds = trace.kinds
    f0, f1, f2 = trace.f0, trace.f1, trace.f2
    n = len(kinds)
    W = core.window
    inv = core.inv_width
    ring = core._ring
    clock = core._clock
    head = core._head
    instructions = core.instructions
    load_stall = core.load_stall_cycles
    refs = 0

    l1 = hierarchy.l1
    l1_index = l1._index
    l1_sets = l1._sets
    l1_shift = l1._block_shift
    l1_set_mask = l1._set_mask
    l1_stats = l1.stats
    l1_shadow = l1._shadow
    l1_latency = l1.latency
    l1_lat_f = float(l1_latency)
    block_mask = hierarchy._block_mask
    hstats = hierarchy.stats
    metrics = hierarchy.metrics
    series = metrics.series
    controller = hierarchy.controller
    issue_prefetches = controller.issue_prefetches
    has_candidates = hierarchy._has_candidates
    miss_path = hierarchy.access_after_l1_miss
    adapt = getattr(hierarchy, "adapt", None)
    note_access = adapt.note_access if adapt is not None else None

    counts_np = cols.counts
    ecum = cols.ecum
    # Stretch-structure indices, consumed through monotone cursors.
    hard = cols.hard_breaks(W).tolist()
    hard.append(n)
    hb = 0
    bars = cols.barriers(W).tolist()
    bars.append(n)
    bb = 0
    arange1 = np.arange(1, W + 1) * inv
    # Reusable numpy work arrays (grown on demand, sliced per batch).
    epos_buf = np.empty(1024, dtype=np.int64)
    C_buf = np.empty(4096)
    Cprev_buf = np.empty(4096)
    Rarr_buf = np.empty(4096)
    L_buf = np.empty(4096)
    np_skip_until = 0
    np_fail = 0

    sstats = span_stats
    if sstats is not None:
        sstats["events_total"] = sstats.get("events_total", 0) + n

    from repro.cpu.core import _directive_event

    i = 0
    stop = False
    try:
        while i < n:
            # ----------------------------------------------------------
            # Stretch conditions at event i (shared by both engines).
            # The prefetch-gate regime is constant across a stretch —
            # only misses, directives, and epoch boundaries change it,
            # and all of those end the stretch:
            #   A. no candidates -> issue_prefetches never called;
            #   B. blocked-issue cache armed -> each in-bound ref pays
            #      only the gate's idempotent MSHR reclaim;
            #   C. candidates pending, gate unarmed -> every ref would
            #      run a real issue burst: refs end the stretch.
            # ----------------------------------------------------------
            if has_candidates is None or not has_candidates():
                mode_b = False
                refs_ok = True
                blocked_until = 0.0
            elif controller._blocked_until != -1.0:
                mode_b = True
                refs_ok = True
                blocked_until = controller._blocked_until
            else:
                mode_b = False
                refs_ok = False
                blocked_until = 0.0
            nxt = series._next
            limit_rem = (limit_refs - refs) if limit_refs is not None \
                else n + 1
            if note_access is not None:
                # The ref that lands on the epoch boundary must run
                # scalar (the boundary samples and turns knobs).
                cap = adapt._next_boundary - adapt._accesses - 1
                if limit_rem < cap:
                    cap = limit_rem
            else:
                cap = limit_rem

            # ----------------------------------------------------------
            # Numpy engine: long barrier-free runs.
            # ----------------------------------------------------------
            while hard[hb] < i:
                hb += 1
            while bars[bb] < i:
                bb += 1
            run_end = hard[hb] if hard[hb] < bars[bb] else bars[bb]
            walk_end = n
            if run_end - i >= _NUMPY_MIN_EVENTS and refs_ok and cap > 0 \
                    and i < np_skip_until:
                # The engine is viable here but backing off from a
                # recent abandoned prescan; stop the walker at the
                # backoff horizon so the engine gets another shot there
                # instead of the walker swallowing the whole run.
                walk_end = np_skip_until if np_skip_until < n else n
            if run_end - i >= _NUMPY_MIN_EVENTS and refs_ok and cap > 0 \
                    and i >= np_skip_until:
                # Prescan: collect provable L1 hits, stopping at the
                # first certain per-reference event.  The issue-time
                # lower bound (the clock advances at least inv per
                # instruction) pre-truncates at metrics/blocked-issue
                # bounds so the engine never computes timing it would
                # have to throw away.
                k = i
                acc = 0
                items = []
                roff = []
                nref = 0
                while k < run_end:
                    kd = kinds[k]
                    if kd <= K_STORE:
                        if nref >= cap:
                            break
                        bound = clock + acc * inv
                        if bound >= nxt or \
                                (mode_b and bound > blocked_until):
                            break
                        b = f1[k] & block_mask
                        line = l1_index.get(b)
                        if line is None:
                            break
                        items.append((b, line, kd))
                        roff.append(k - i)
                        nref += 1
                        acc += 1
                        k += 1
                        if nref >= limit_rem:
                            break
                    else:
                        acc += f0[k]
                        if acc > _MAX_SPAN_ELEM:
                            break
                        k += 1
                span_events = k - i
                consumed = 0
                if nref >= _NUMPY_MIN_REFS or \
                        span_events >= _NUMPY_MIN_EVENTS:
                    # Elementary expansion of the run (no barriers, so
                    # every event contributes its full count).
                    counts_s = counts_np[i:k]
                    if span_events >= len(epos_buf):
                        epos_buf = np.empty(
                            max(span_events + 1, 2 * len(epos_buf)),
                            dtype=np.int64)
                    epos = epos_buf[:span_events + 1]
                    epos[0] = 0
                    np.cumsum(counts_s, out=epos[1:])
                    T = int(epos[span_events])
                    if T > len(C_buf):
                        size = max(T, 2 * len(C_buf))
                        C_buf = np.empty(size)
                        Cprev_buf = np.empty(size)
                        Rarr_buf = np.empty(size)
                        L_buf = np.empty(size)
                    C = C_buf[:T]
                    Cprev = Cprev_buf[:T]
                    Rarr = Rarr_buf[:T]
                    L = L_buf[:T]
                    L.fill(1.0)
                    rel = None
                    if nref:
                        rel = epos[np.array(roff, dtype=np.int64)]
                        L[rel] = l1_lat_f
                    ra = np.asarray(ring)
                    if head:
                        ringbuf0 = np.concatenate((ra[head:], ra[:head]))
                    else:
                        ringbuf0 = ra
                    # Issue recurrence over the first window rotation:
                    # c_t = max(c_{t-1} + inv, ring[head_t]) in the
                    # shifted coordinate D_t = c_t - (t+1)*inv, where it
                    # is a plain running maximum.
                    h = T if T < W else W
                    rb = ringbuf0[:h]
                    Rarr[:h] = rb
                    X = rb - arange1[:h]
                    if X[0] < clock:
                        X[0] = clock
                    np.maximum.accumulate(X, out=X)
                    seg = X + arange1[:h]
                    C[:h] = seg
                    Cprev[0] = clock
                    if h > 1:
                        Cprev[1:h] = seg[:h - 1]
                    if T > W:
                        # Beyond one rotation the ring cannot block (see
                        # module docstring): the clock is an arithmetic
                        # progression and the consumed ring values are
                        # the run's own writes, lag W.
                        base = C[W - 1]
                        C[W:T] = base + np.arange(1, T - W + 1) * inv
                        Cprev[W:T] = C[W - 1:T - 1]
                        Rarr[W:T] = C[:T - W] + L[:T - W]
                    # Exact truncation at the first ref the fused loop
                    # would have done per-reference work for.
                    if nref:
                        nows = np.maximum(Cprev[rel], Rarr[rel])
                        viol = nows >= nxt
                        if mode_b:
                            viol |= nows > blocked_until
                        vidx = np.nonzero(viol)[0]
                        cut = int(vidx[0]) if vidx.size else nref
                    else:
                        cut = 0
                    cutev = roff[cut] if cut < nref else span_events
                    if cutev:
                        Tc = int(epos[cutev])
                        if cut:
                            relc = rel[:cut]
                            st = C[relc] - Cprev[relc] - inv
                            pos = float(st[st > 0.0].sum())
                            if pos > 0.0:
                                load_stall += pos
                            commit_hit_batch(l1, hstats, items[:cut])
                            if note_access is not None:
                                adapt._accesses += cut
                            if mode_b:
                                gated_reclaim(controller)
                            refs += cut
                        instructions += int(ecum[i + cutev] - ecum[i])
                        clock = float(C[Tc - 1])
                        head_f = (head + Tc) % W
                        if Tc >= W:
                            ring_f = C[Tc - W:Tc] + L[Tc - W:Tc]
                        else:
                            ring_f = np.concatenate(
                                (ringbuf0[Tc:], C[:Tc] + L[:Tc]))
                        # ring[p] consumes ring_f[(p - head_f) % W].
                        split = W - head_f
                        ring[head_f:] = ring_f[:split].tolist()
                        ring[:head_f] = ring_f[split:].tolist()
                        head = head_f
                        if limit_refs is not None and refs >= limit_refs:
                            stop = True
                        consumed = cutev
                        if sstats is not None:
                            sstats["np_spans"] = \
                                sstats.get("np_spans", 0) + 1
                            sstats["np_events"] = \
                                sstats.get("np_events", 0) + cutev
                            sstats["np_refs"] = \
                                sstats.get("np_refs", 0) + cut
                if consumed:
                    np_fail = 0
                    i += consumed
                    if stop:
                        break
                    continue
                # Nothing committed: no attempt before the prescan's
                # stop point can do better (a suffix of this one), so
                # don't re-enter the engine until past it — and on a
                # trace whose hit runs keep falling short (prescans
                # ending at misses every few dozen events), back off
                # exponentially so abandoned prescans can't double the
                # per-event cost.
                np_fail += 1
                np_skip_until = k + 1 + (64 << np_fail if np_fail < 10
                                         else 65536)

            # ----------------------------------------------------------
            # Uniform-ring walker: retire boring stretches with the ring
            # held as (fill, writes-since-barrier) instead of a list.
            # q == len(wr) counts issues since the last barrier (or walk
            # start while fill is None); the value the next issue
            # consumes is fill (or the untouched pre-walk ring snapshot)
            # while q < W, and the walk's own write at lag W after that.
            # Every truncation check precedes the ref's effects, so hit
            # effects commit inline — exactly the fused loop's order —
            # with the counter bumps pooled into locals.
            #
            # Certainly-scalar events (directives, refs the current gate
            # regime or caps exclude, misses) skip the walk setup — a
            # walk that would break on its first event isn't worth
            # starting.
            # ----------------------------------------------------------
            kd0 = kinds[i]
            if kd0 == K_OPS:
                # In an issue-burst regime (refs end the walk at once) a
                # small-ops event would be a one-event walk — the scalar
                # inline loop is cheaper.  Closed-form-sized batches are
                # worth a walk in any regime.
                walkable = refs_ok or f0[i] > 32
            elif kd0 > K_OPS:
                walkable = False  # directive
            elif not refs_ok or cap <= 0:
                walkable = False  # issue burst or epoch boundary due
            elif mode_b:
                # Blocked-gate stretches keep misses scalar (the miss
                # path's MSHR traffic interleaves with the gate), so a
                # miss-first walk would break immediately.
                walkable = \
                    l1_index.get(f1[i] & block_mask) is not None
            else:
                walkable = True
            j = i
            if walkable:
                q = 0
                wr = []
                fill = None
                clock_s = clock
                stall_acc = 0.0
                instr_acc = 0
                wref_n = 0
                hit_n = 0
                miss_n = 0
                poll_n = 0
                useful_n = 0
                loads_n = 0
                stores_n = 0
                limit_hit = False
            while walkable and j < walk_end:
                kd = kinds[j]
                if kd <= K_STORE:
                    if not refs_ok or wref_n >= cap:
                        break
                    block = f1[j] & block_mask
                    line = l1_index.get(block)
                    if line is None and mode_b:
                        break
                    if q < W:
                        if fill is not None:
                            e = fill
                        else:
                            p = head + q
                            e = ring[p - W] if p >= W else ring[p]
                    else:
                        e = wr[q - W]
                    now = clock_s if clock_s >= e else e
                    if now >= nxt:
                        break
                    if mode_b and now > blocked_until:
                        break
                    if kd == K_STORE:
                        stores_n += 1
                    else:
                        loads_n += 1
                    seeded = False
                    if line is not None:
                        lines = l1_sets[
                            (block >> l1_shift) & l1_set_mask]
                        if lines[-1] is not line:
                            lines.remove(line)
                            lines.append(line)
                        if not line.referenced:
                            line.referenced = True
                            useful_n += 1
                        if kd == K_STORE:
                            line.dirty = True
                        hit_n += 1
                        lat = l1_lat_f
                    else:
                        # Candidate-free stretches take the full miss
                        # machinery inline: it reads/mutates only the
                        # hierarchy (never the issue ring), and `now`
                        # is already exact.  A miss may *seed* prefetch
                        # candidates, changing the gate regime for the
                        # refs after it — checked below.
                        miss_n += 1
                        if l1_shadow and \
                                l1_shadow.pop(block, None) is not None:
                            poll_n += 1
                        ridx = f0[j]
                        ready = miss_path(
                            block, f1[j], now, kd == K_STORE,
                            ref_names[ridx], hints[ridx],
                        )
                        lat = ready - now
                        seeded = has_candidates is not None \
                            and has_candidates()
                    c = clock_s + inv
                    if e > c:
                        c = e
                        s = c - clock_s - inv
                        if s > 0.0:
                            stall_acc += s
                    clock_s = c
                    wr.append(c + lat)
                    q += 1
                    wref_n += 1
                    instr_acc += 1
                    j += 1
                    if wref_n >= limit_rem:
                        limit_hit = True
                        break
                    if seeded:
                        break
                elif kd == K_OPS:
                    cnt = f0[j]
                    if cnt <= 32:
                        for _ in range(cnt):
                            if q < W:
                                if fill is not None:
                                    e = fill
                                else:
                                    p = head + q
                                    e = ring[p - W] if p >= W \
                                        else ring[p]
                            else:
                                e = wr[q - W]
                            c = clock_s + inv
                            if e > c:
                                c = e
                            clock_s = c
                            wr.append(c + 1.0)
                            q += 1
                        instr_acc += cnt
                        j += 1
                    else:
                        # Core._issue_ops' closed form, over the
                        # consume-order sources: depth d of this batch
                        # consumes index q + d, which is a uniform-fill
                        # entry, an untouched pre-walk ring slot, or one
                        # of the walk's own writes.  Uniform entries all
                        # share one candidate (maximal at depth 0), so
                        # only the min(cnt, W) tracked writes in range
                        # need walking.
                        base = clock_s
                        newclock = base + cnt * inv
                        hi = q + (cnt if cnt < W else W)
                        if q < W:
                            pend = W if hi > W else hi
                            if fill is not None:
                                if fill > base:
                                    cand = fill + cnt * inv
                                    if cand > newclock:
                                        newclock = cand
                            else:
                                p = head + q
                                if p >= W:
                                    p -= W
                                for idx in range(q, pend):
                                    v = ring[p]
                                    if v > base:
                                        cand = v + (cnt - (idx - q)) * inv
                                        if cand > newclock:
                                            newclock = cand
                                    p += 1
                                    if p == W:
                                        p = 0
                            lo = W
                        else:
                            lo = q
                        for idx in range(lo, hi):
                            v = wr[idx - W]
                            if v > base:
                                cand = v + (cnt - (idx - q)) * inv
                                if cand > newclock:
                                    newclock = cand
                        clock_s = newclock
                        if cnt >= W:
                            # Full refill: the whole ring becomes one
                            # uniform value and tracking restarts.
                            fill = newclock + 1.0
                            wr = []
                            q = 0
                        else:
                            # Partial refill: cnt uniform writes at the
                            # next cnt consume positions.
                            wr.extend([newclock + 1.0] * cnt)
                            q += cnt
                        instr_acc += cnt
                        j += 1
                else:
                    break  # directive: messages the prefetch engine
            consumed = j - i
            if consumed:
                if wref_n:
                    l1_stats.demand_accesses += wref_n
                    if hit_n:
                        l1_stats.demand_hits += hit_n
                    if miss_n:
                        l1_stats.demand_misses += miss_n
                    if poll_n:
                        l1_stats.pollution_misses += poll_n
                    if useful_n:
                        l1_stats.useful_prefetches += useful_n
                    if loads_n:
                        hstats.loads += loads_n
                    if stores_n:
                        hstats.stores += stores_n
                    if stall_acc > 0.0:
                        load_stall += stall_acc
                    if note_access is not None:
                        adapt._accesses += wref_n
                    if mode_b:
                        gated_reclaim(controller)
                    refs += wref_n
                instructions += instr_acc
                clock = clock_s
                if fill is None:
                    # Only the last min(q, W) writes survive; untouched
                    # positions keep their pre-walk values.  wr[t] sits
                    # at ring position (head + t) % W — two slices.
                    t0 = q - W if q > W else 0
                    cnt_w = q - t0
                    a = (head + t0) % W
                    first = W - a
                    if first >= cnt_w:
                        ring[a:a + cnt_w] = wr[t0:q]
                    else:
                        ring[a:] = wr[t0:t0 + first]
                        ring[:cnt_w - first] = wr[t0 + first:q]
                    head = (head + q) % W
                else:
                    # Post-barrier ring: head lands on q % W and wr[t]
                    # sits at position t % W (the head offset and the
                    # write offset cancel mod W); everything else is
                    # the last barrier's uniform fill.
                    head = q % W
                    if q < W:
                        ring[:q] = wr
                        ring[q:] = [fill] * (W - q)
                    else:
                        s0 = q - W
                        ring[head:] = wr[s0:q - head]
                        ring[:head] = wr[q - head:q]
                i = j
                if sstats is not None:
                    sstats["walk_events"] = \
                        sstats.get("walk_events", 0) + consumed
                    sstats["walk_refs"] = \
                        sstats.get("walk_refs", 0) + wref_n
                if limit_hit:
                    break
            if j >= n:
                break

            # ----------------------------------------------------------
            # Scalar catch-up: one interesting event, replicating the
            # fused loop's body operation for operation.
            # ----------------------------------------------------------
            kind = kinds[i]
            if kind <= K_STORE:
                is_store = kind == K_STORE
                e = ring[head]
                now = clock if clock >= e else e
                if is_store:
                    hstats.stores += 1
                else:
                    hstats.loads += 1
                if has_candidates is not None and has_candidates():
                    issue_prefetches(now)
                if now >= series._next:
                    metrics.tick(now)
                block = f1[i] & block_mask
                line = l1_index.get(block)
                if line is not None:
                    l1_stats.demand_accesses += 1
                    lines = l1_sets[(block >> l1_shift) & l1_set_mask]
                    if lines[-1] is not line:
                        lines.remove(line)
                        lines.append(line)
                    if not line.referenced:
                        line.referenced = True
                        l1_stats.useful_prefetches += 1
                    if is_store:
                        line.dirty = True
                    l1_stats.demand_hits += 1
                    ready = now + l1_latency
                else:
                    l1_stats.demand_accesses += 1
                    l1_stats.demand_misses += 1
                    if l1_shadow and \
                            l1_shadow.pop(block, None) is not None:
                        l1_stats.pollution_misses += 1
                    ridx = f0[i]
                    ready = miss_path(
                        block, f1[i], now, is_store,
                        ref_names[ridx], hints[ridx],
                    )
                latency = ready - now
                before = clock
                c = clock + inv
                if e > c:
                    c = e
                clock = c
                ring[head] = c + latency
                head += 1
                if head == W:
                    head = 0
                instructions += 1
                s = clock - before - inv
                if s > 0.0:
                    load_stall += s
                refs += 1
                if note_access is not None:
                    note_access(clock)
                if limit_refs is not None and refs >= limit_refs:
                    break
            elif kind == K_OPS:
                count = f0[i]
                if count <= 32:
                    for _ in range(count):
                        e = ring[head]
                        clock = clock + inv
                        if e > clock:
                            clock = e
                        ring[head] = clock + 1.0
                        head += 1
                        if head == W:
                            head = 0
                    instructions += count
                else:
                    core._clock = clock
                    core._head = head
                    core.instructions = instructions
                    core._issue_ops(count)
                    clock = core._clock
                    head = core._head
                    instructions = core.instructions
            else:
                event = _directive_event(kind, f0[i], f1[i], f2[i])
                e = ring[head]
                c = clock + inv
                if e > c:
                    c = e
                clock = c
                completion = c + 1.0
                ring[head] = completion
                head += 1
                if head == W:
                    head = 0
                instructions += 1
                hierarchy.directive(event, completion)
            i += 1
    finally:
        core._clock = clock
        core._head = head
        core.instructions = instructions
        core.load_stall_cycles = load_stall
    return core.cycles
