"""Parallel batch execution of RunSpecs.

:func:`run_batch` takes a list of :class:`~repro.sim.spec.RunSpec` and
returns their :class:`~repro.sim.stats.SimStats` **in the same order**,
regardless of how many worker processes ran them or which finished first
— parallelism never changes results, only wall-clock.

Duplicate specs in the input are simulated once.  With a
:class:`~repro.sim.cache.ResultCache`, hits skip simulation entirely and
fresh results are written back.  Specs and results cross the process
boundary in their ``to_dict`` forms, the same serialization the
persistent cache uses, so a parallel run exercises exactly the round-trip
the cache depends on.

:func:`run_batch` assumes infallible workers — a crashed or hung worker
takes the whole batch down.  For long sweeps that must survive crashes,
hangs, and interruptions, :class:`repro.sim.supervisor.SweepSupervisor`
wraps this module's cell model (the same payload serialization, executed
by :func:`execute_payload`) with checkpointing, per-worker timeouts, and
bounded retries.
"""

import multiprocessing
import os

from repro.sim.spec import CoRunSpec, RunSpec
from repro.sim.stats import result_from_dict


def resolve_jobs(jobs):
    """Map a ``--jobs`` value to a worker count (0 or None = all cores)."""
    if not jobs:
        return os.cpu_count() or 1
    return max(1, jobs)


def execute_payload(spec_data, trace_path=None):
    """Run one serialized cell: spec dict in, result dict out.

    The worker-side half of the process-boundary round trip, shared by
    the pool worker below and the supervisor's isolated cell workers.
    Dispatches on the ``corun`` marker, so multi-core co-runs ride the
    same pool/supervisor machinery as single-core cells.  Imports the
    engine lazily so forking/spawning a worker stays cheap.
    """
    if spec_data.get("corun"):
        from repro.sim.multicore import execute_corun  # late, as below
        return execute_corun(CoRunSpec.from_dict(spec_data)).to_dict()
    from repro.sim.runner import execute  # late: keep fork/spawn cheap
    return execute(RunSpec.from_dict(spec_data),
                   trace_path=trace_path).to_dict()


def _worker(payload):
    """Pool worker: (spec dict, trace path) in, dict out (separate process)."""
    spec_data, trace_path = payload
    return execute_payload(spec_data, trace_path)


def trace_path_for(trace_dir, spec):
    """The JSONL trace file a spec's run writes under ``trace_dir``."""
    return os.path.join(trace_dir, spec.label().replace("/", "__") + ".jsonl")


def run_batch(specs, jobs=1, cache=None, progress=None, trace_dir=None):
    """Execute every spec; return results aligned with the input order.

    ``jobs``: worker processes (1 = in-process serial; 0/None = all
    cores).  ``cache``: optional ResultCache consulted before and updated
    after simulation.  ``progress``: optional callable invoked after each
    spec resolves as ``progress(done, total, spec, cached)``.
    ``trace_dir``: when given, every run writes its JSONL event trace to
    ``<trace_dir>/<spec label>.jsonl``; traced runs skip cache *reads*
    (a cache hit would leave no trace behind) but still write results
    back, since tracing never changes the stats.
    """
    from repro.sim.runner import execute

    specs = list(specs)
    uniques = list(dict.fromkeys(specs))
    total = len(uniques)
    resolved = {}  # spec -> SimStats
    done = 0

    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)

    def note(spec, cached):
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total, spec, cached)

    def trace_path(spec):
        if trace_dir is None:
            return None
        return trace_path_for(trace_dir, spec)

    # Unique work list (stable order), minus persistent-cache hits.
    pending = []
    for spec in uniques:
        stats = (cache.get(spec)
                 if cache is not None and trace_dir is None else None)
        if stats is not None:
            resolved[spec] = stats
            note(spec, True)
        else:
            pending.append(spec)

    workers = resolve_jobs(jobs)
    if workers <= 1 or len(pending) <= 1:
        for spec in pending:
            if isinstance(spec, CoRunSpec):
                from repro.sim.multicore import execute_corun
                stats = execute_corun(spec)
            else:
                stats = execute(spec, trace_path=trace_path(spec))
            if cache is not None:
                cache.put(spec, stats)
            resolved[spec] = stats
            note(spec, False)
    else:
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes=min(workers, len(pending))) as pool:
            payloads = [(spec.to_dict(), trace_path(spec))
                        for spec in pending]
            # imap preserves input order, so completion timing cannot
            # reorder results.
            for spec, data in zip(pending,
                                  pool.imap(_worker, payloads, chunksize=1)):
                stats = result_from_dict(data)
                if cache is not None:
                    cache.put(spec, stats)
                resolved[spec] = stats
                note(spec, False)

    return [resolved[spec] for spec in specs]
