"""Parallel batch execution of RunSpecs.

:func:`run_batch` takes a list of :class:`~repro.sim.spec.RunSpec` and
returns their :class:`~repro.sim.stats.SimStats` **in the same order**,
regardless of how many worker processes ran them or which finished first
— parallelism never changes results, only wall-clock.

Duplicate specs in the input are simulated once.  With a
:class:`~repro.sim.cache.ResultCache`, hits skip simulation entirely and
fresh results are written back.  Specs and results cross the process
boundary in their ``to_dict`` forms, the same serialization the
persistent cache uses, so a parallel run exercises exactly the round-trip
the cache depends on.
"""

import multiprocessing
import os

from repro.sim.spec import RunSpec
from repro.sim.stats import SimStats


def resolve_jobs(jobs):
    """Map a ``--jobs`` value to a worker count (0 or None = all cores)."""
    if not jobs:
        return os.cpu_count() or 1
    return max(1, jobs)


def _worker(spec_data):
    """Pool worker: dict in, dict out (runs in a separate process)."""
    from repro.sim.runner import execute  # late: keep fork/spawn cheap
    return execute(RunSpec.from_dict(spec_data)).to_dict()


def run_batch(specs, jobs=1, cache=None, progress=None):
    """Execute every spec; return results aligned with the input order.

    ``jobs``: worker processes (1 = in-process serial; 0/None = all
    cores).  ``cache``: optional ResultCache consulted before and updated
    after simulation.  ``progress``: optional callable invoked after each
    spec resolves as ``progress(done, total, spec, cached)``.
    """
    from repro.sim.runner import execute

    specs = list(specs)
    uniques = list(dict.fromkeys(specs))
    total = len(uniques)
    resolved = {}  # spec -> SimStats
    done = 0

    def note(spec, cached):
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total, spec, cached)

    # Unique work list (stable order), minus persistent-cache hits.
    pending = []
    for spec in uniques:
        stats = cache.get(spec) if cache is not None else None
        if stats is not None:
            resolved[spec] = stats
            note(spec, True)
        else:
            pending.append(spec)

    workers = resolve_jobs(jobs)
    if workers <= 1 or len(pending) <= 1:
        for spec in pending:
            stats = execute(spec)
            if cache is not None:
                cache.put(spec, stats)
            resolved[spec] = stats
            note(spec, False)
    else:
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes=min(workers, len(pending))) as pool:
            payloads = [spec.to_dict() for spec in pending]
            # imap preserves input order, so completion timing cannot
            # reorder results.
            for spec, data in zip(pending,
                                  pool.imap(_worker, payloads, chunksize=1)):
                stats = SimStats.from_dict(data)
                if cache is not None:
                    cache.put(spec, stats)
                resolved[spec] = stats
                note(spec, False)

    return [resolved[spec] for spec in specs]
